"""Shim for environments whose pip/setuptools cannot do PEP 660 editable
installs (no `wheel` package available offline). `pip install -e .` falls
back to `setup.py develop` via --no-use-pep517; all real metadata lives in
pyproject.toml."""

from setuptools import setup

setup()
