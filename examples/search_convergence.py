#!/usr/bin/env python3
"""Watch the n-way search converge (the paper's Figure 1, animated).

Figure 1 of the paper sketches how the search narrows from
whole-address-space regions to the hot object. This example runs a real
10-way search over su2cor — seventeen arrays, one of which (U) causes
~57% of the misses — and renders every iteration's measured regions as
a convergence diagram: wide faint spans early, narrowing dark bands as
the counters close in on U, then the steady estimation rows.

Run:  python examples/search_convergence.py
"""

from repro import CacheConfig, NWaySearch, Simulator, workloads
from repro.core.search_trace import render_trace, trace_summary


def main() -> None:
    sim = Simulator(CacheConfig(size="256K", assoc=4), seed=5)
    wl = workloads.Su2cor(seed=5)
    base = sim.run(workloads.Su2cor(seed=5))
    interval = base.stats.app_cycles // 45

    tool = NWaySearch(n=10, interval_cycles=interval)
    result = sim.run(wl, tool=tool)

    print(render_trace(tool.trace))
    print()
    print("iteration log:")
    print(trace_summary(tool.trace))
    print()
    print(result.measured.table(k=5))
    print(
        f"\nconverged in {tool.iterations} search iterations "
        f"({len(result.stats.interrupts)} interrupts total, "
        f"{result.stats.slowdown:.2%} overhead)"
    )


if __name__ == "__main__":
    main()
