#!/usr/bin/env python3
"""Quickstart: find which data structure is thrashing the cache.

Builds a small synthetic application with three arrays of very different
cache behaviour, runs it once uninstrumented (exact ground truth), once
under miss-address sampling, and once under the 10-way counter search,
then prints the three profiles side by side.

Run:  python examples/quickstart.py
"""

from repro import (
    CacheConfig,
    NWaySearch,
    SamplingProfiler,
    Simulator,
    comparison_table,
    workloads,
)


def make_app():
    # Arrays sized/streamed so "hot" causes ~60% of misses, "warm" ~30%,
    # "cool" ~10%. Streams are finely interleaved like a real kernel.
    return workloads.SyntheticStreams(
        spec={
            "hot": (512 * 1024, 60),
            "warm": (512 * 1024, 30),
            "cool": (512 * 1024, 10),
        },
        rounds=40,
        interleaved=True,
        seed=42,
        # ~42 cycles of compute per reference: a paper-like miss rate
        # (one miss every ~50 cycles) rather than a pathological one.
        cycles_per_ref=42.0,
    )


def main() -> None:
    sim = Simulator(CacheConfig(size="256K", assoc=4, line_size=64), seed=42)

    # 1. Ground truth: the simulator's oracle attribution (no overhead).
    baseline = sim.run(make_app())
    print(f"app: {baseline.stats.app_refs:,} refs, "
          f"{baseline.stats.app_misses:,} misses, "
          f"{baseline.stats.app_cycles:,} cycles\n")

    # 2. Miss-address sampling: interrupt every `period` misses, read the
    #    last-miss-address register, attribute to the containing object.
    period = max(16, baseline.stats.app_misses // 800)
    sampled = sim.run(make_app(), tool=SamplingProfiler(period=period, schedule="prime"))

    # 3. N-way search: ten base/bounds-qualified miss counters binary-search
    #    the address space for the hottest objects.
    interval = baseline.stats.app_cycles // 40
    searched = sim.run(make_app(), tool=NWaySearch(n=10, interval_cycles=interval))

    print(
        comparison_table(
            baseline.actual,
            [sampled.measured, searched.measured],
            title="who is causing the cache misses?",
        )
    )
    print(f"\nsampling overhead: {sampled.stats.slowdown:.2%} "
          f"({len(sampled.stats.interrupts)} interrupts)")
    print(f"search overhead:   {searched.stats.slowdown:.2%} "
          f"({len(searched.stats.interrupts)} interrupts, "
          f"{searched.measured.meta['iterations']} iterations)")


if __name__ == "__main__":
    main()
