#!/usr/bin/env python3
"""Phases, and how the search survives them (paper sections 2.2 & 3.5).

applu alternates a long Jacobian phase (arrays a, b, c, d hot) with a
short RHS phase (rsd hot; a, b, c completely silent). This example:

1. plots (in ASCII) the per-array miss-vs-time series — Figure 5;
2. runs the n-way search with the phase heuristic ON and OFF, showing
   that without zero-miss retention the search drops the phase-quiet
   arrays.

Run:  python examples/phase_adaptive_search.py
"""

from repro import CacheConfig, NWaySearch, Simulator, workloads


def sparkline(values, width=60) -> str:
    blocks = " ▁▂▃▄▅▆▇█"
    if len(values) > width:
        stride = len(values) / width
        values = [values[int(i * stride)] for i in range(width)]
    peak = max(max(values), 1)
    return "".join(blocks[int(v / peak * (len(blocks) - 1))] for v in values)


def main() -> None:
    sim = Simulator(CacheConfig(size="256K", assoc=4), seed=21)

    # --- Figure 5: misses over time -----------------------------------
    base = sim.run(workloads.Applu(seed=21))
    bucket = base.stats.app_cycles // 60
    traced = sim.run(workloads.Applu(seed=21), series_bucket_cycles=bucket)
    print(f"== applu misses per {bucket:,}-cycle bucket (Figure 5) ==")
    for name in ("a", "b", "c", "d", "rsd"):
        series = traced.series.series_for(name)
        print(f"{name:>4} |{sparkline(series.tolist())}|")
    print("      a/b/c drop to zero in the RHS phase; rsd spikes there.\n")

    interval = base.stats.app_cycles // 90  # short vs the phase length

    # --- search WITH the phase heuristic --------------------------------
    with_h = sim.run(
        workloads.Applu(seed=21),
        tool=NWaySearch(n=10, interval_cycles=interval),
    )
    print("== search with zero-miss retention (the paper's heuristic) ==")
    print(with_h.measured.table(k=7))
    print(f"final interval grew to {with_h.measured.meta['final_interval_cycles']:,} "
          f"cycles (started at {interval:,})\n")

    # --- search WITHOUT it ----------------------------------------------
    without = sim.run(
        workloads.Applu(seed=21),
        tool=NWaySearch(n=10, interval_cycles=interval, zero_keep_max=0,
                        interval_growth=1.0),
    )
    print("== search without it ==")
    print(without.measured.table(k=7))

    lost = set(with_h.measured.names()) - set(without.measured.names())
    if lost:
        print(f"\nwithout the heuristic the search lost: {sorted(lost)} "
              "(discarded during a phase in which they had zero misses).")


if __name__ == "__main__":
    main()
