#!/usr/bin/env python3
"""A tuning session: use the profiler to find and fix a cache bottleneck.

The scenario the paper's introduction motivates: a stencil code runs
slower than it should, and the programmer needs to know *which array* is
responsible before they can fix anything. We build a 2D relaxation kernel
whose temperature grid is traversed column-major (stride = one row), let
the n-way search point at the guilty array, apply the classic fix
(row-major traversal), and measure the improvement.

Run:  python examples/stencil_tuning.py
"""

import numpy as np

from repro import CacheConfig, NWaySearch, Simulator
from repro.workloads.base import Workload

ROWS, COLS = 512, 512  # doubles: 2 MiB grid
LINE = 64


class Relaxation(Workload):
    """Jacobi-style relaxation over grid/next plus a small coefficient
    table. ``column_major=True`` is the broken version: successive
    references stride by a whole row, so every access touches a new cache
    line and the grid dominates the miss profile."""

    name = "relaxation"
    cycles_per_ref = 8.0

    def __init__(self, column_major: bool, sweeps: int = 6, seed=None):
        super().__init__(seed=seed)
        self.column_major = column_major
        self.sweeps = sweeps

    def _declare(self):
        self.symbols.declare("grid", ROWS * COLS * 8)
        self.symbols.declare("next_grid", ROWS * COLS * 8)
        self.symbols.declare("coeffs", 4 * 1024)

    def _generate(self):
        grid = self.symbols["grid"]
        nxt = self.symbols["next_grid"]
        coeffs = self.symbols["coeffs"]
        for _ in range(self.sweeps):
            if self.column_major:
                # for j in cols: for i in rows: touch grid[i][j] — the grid
                # is stored row-major, so successive references stride by a
                # whole row (COLS * 8 bytes = one new cache line each).
                order = (
                    np.arange(ROWS)[None, :] * COLS + np.arange(COLS)[:, None]
                ).reshape(-1)
            else:
                order = np.arange(ROWS * COLS)
            addrs = np.uint64(grid.base) + order.astype(np.uint64) * np.uint64(8)
            yield self.block(addrs, label="read")
            # The write side is always row-major (it is not the bug).
            out = np.uint64(nxt.base) + np.arange(ROWS * COLS, dtype=np.uint64) * np.uint64(8)
            yield self.block(out, label="write")
            yield self.block(
                np.uint64(coeffs.base)
                + (np.arange(2000, dtype=np.uint64) * np.uint64(8)) % np.uint64(4096),
                label="coeffs",
            )


def profile(column_major: bool):
    sim = Simulator(CacheConfig(size="256K", assoc=4), seed=7)
    baseline = sim.run(Relaxation(column_major, seed=7))
    interval = baseline.stats.app_cycles // 40
    searched = sim.run(
        Relaxation(column_major, seed=7),
        tool=NWaySearch(n=10, interval_cycles=interval),
    )
    return baseline, searched


def main() -> None:
    print("== before: column-major traversal ==")
    base_before, search_before = profile(column_major=True)
    print(search_before.measured.table(k=3))
    rate = base_before.stats.miss_rate_per_mcycle
    print(f"miss rate: {rate:,.0f} misses/Mcycle")
    top = search_before.measured.names()[0]
    print(f"\nthe search fingers `{top}` — its accesses stride by a whole "
          f"row, so every reference misses.\n")

    print("== after: row-major traversal of grid ==")
    base_after, search_after = profile(column_major=False)
    print(search_after.measured.table(k=3))
    print(f"miss rate: {base_after.stats.miss_rate_per_mcycle:,.0f} misses/Mcycle")

    saved = 1 - base_after.stats.app_misses / base_before.stats.app_misses
    print(f"\nfix eliminated {saved:.0%} of all cache misses "
          f"({base_before.stats.app_misses:,} -> {base_after.stats.app_misses:,}).")


if __name__ == "__main__":
    main()
