#!/usr/bin/env python3
"""Profiling a heap-heavy application and aggregating by allocation site.

The paper's Table 1 identifies ijpeg's hottest object only as the hex
address ``0x141020000`` — readable, but not actionable when an app has
thousands of small blocks. Section 5 proposes aggregating "related blocks
of dynamically allocated memory (for instance, the nodes of a tree)".

This example profiles a pointer-chasing workload over ~3,000 heap nodes
with miss-address sampling, shows the raw per-block profile (a wall of
hex), then folds it by allocation site into three actionable lines.

Run:  python examples/heap_profiling.py
"""

from repro import (
    CacheConfig,
    SamplingProfiler,
    Simulator,
    aggregate_heap_by_site,
    workloads,
)


def main() -> None:
    sim = Simulator(CacheConfig(size="256K", assoc=4), seed=13)
    app = workloads.TreeChaser(seed=13, n_nodes=3000, n_steps=30, refs_per_step=8000)

    baseline = sim.run(app)
    period = max(16, baseline.stats.app_misses // 4000)
    run = sim.run(
        workloads.TreeChaser(seed=13, n_nodes=3000, n_steps=30, refs_per_step=8000),
        tool=SamplingProfiler(period=period, schedule="prime"),
    )

    raw = run.measured
    print("== raw per-block profile (top 8 of "
          f"{len(raw)} sampled objects) ==")
    print(raw.table(k=8))

    print("\n== aggregated by allocation site (paper section 5) ==")
    agg = aggregate_heap_by_site(raw)
    print(agg.table(k=8))

    hottest = agg.names()[0]
    print(f"\n=> optimise the allocator call site behind `{hottest}` "
          "(pool the nodes, or allocate them contiguously).")


if __name__ == "__main__":
    main()
