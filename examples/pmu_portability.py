#!/usr/bin/env python3
"""Which technique runs on which processor? (paper sections 1 and 4)

The paper's whole premise is that hardware support was, circa 2000,
uneven: everyone counts misses, some can interrupt on overflow, only the
Itanium reports the miss *address* and supports address-qualified
counting. This example prints the capability matrix as executable
checks, then demonstrates the Itanium path end-to-end: the search run
with a *single multiplexed* conditional counter (the workaround the
paper proposes in section 2.2) versus ten dedicated ones.

Run:  python examples/pmu_portability.py
"""

from repro import CacheConfig, NWaySearch, Simulator, workloads
from repro.hpm.presets import PRESETS, technique_support
from repro.util.format import Table, render_table


def main() -> None:
    table = Table(
        ["processor", "counters", "overflow irq", "miss addr", "cond. counters",
         "sampling", "10-way search"],
        title="PMU capability matrix (paper sections 1/4)",
    )
    for preset in PRESETS.values():
        support = technique_support(preset, n=10)
        table.add_row(
            [
                preset.name,
                preset.n_counters,
                "yes" if preset.overflow_interrupt else "no",
                "yes" if preset.reports_miss_address else "no",
                preset.conditional_counters,
                support["sampling"],
                support["search"],
            ]
        )
    print(render_table(table))

    print("\nOn an Itanium the 10-way search must time-share its single "
          "conditional counter; comparing against dedicated counters:\n")

    def run(multiplexed):
        sim = Simulator(
            CacheConfig(size="256K", assoc=4),
            multiplexed_counters=multiplexed,
            seed=17,
        )
        wl = workloads.Su2cor(seed=17, total_lines=160_000, slices_per_era=24)
        base_cycles = 160_000 * 2 * workloads.Su2cor.cycles_per_ref
        return sim.run(
            wl, tool=NWaySearch(n=10, interval_cycles=int(base_cycles) // 45)
        )

    dedicated = run(multiplexed=False)
    shared = run(multiplexed=True)
    print("dedicated counters:", dedicated.measured.table(k=4), sep="\n")
    print("\nmultiplexed single counter:", shared.measured.table(k=4), sep="\n")
    print("\nboth find the dominant array; the multiplexed estimates are "
          "noisier (each region observed only 1/n of the time, then "
          "scaled), exactly the trade-off section 2.2 anticipates.")


if __name__ == "__main__":
    main()
