#!/usr/bin/env python3
"""Closing the tuning loop: profile -> diagnose -> plan.

The paper's techniques answer "which data structure misses?". This
example layers the analysis package on top to answer the follow-ups:

1. profile a mixed workload (one streaming array, one thrashing array,
   one resident table) with the 10-way search;
2. diagnose each hot object's miss *pattern* from a reference sample
   (streaming vs thrashing vs conflicting) with suggested remedies;
3. plot the miss-ratio curve to see whether a bigger cache would help —
   and find the knee where the thrashing array starts to fit.

Run:  python examples/cache_planning.py
"""

import numpy as np

from repro import CacheConfig, NWaySearch, Simulator
from repro.analysis import advise, analyse_conflicts, miss_ratio_curve
from repro.analysis.advisor import advice_table
from repro.util.charts import hbar_chart
from repro.util.units import fmt_bytes
from repro.workloads.base import Workload

CACHE = CacheConfig(size="128K", assoc=4)


class MixedKernel(Workload):
    """stream: touched once per pass (no reuse); hot_grid: swept cyclically
    with a working set ~2x the cache (thrashes); lut: small, resident."""

    name = "mixed"
    cycles_per_ref = 10.0

    def _declare(self):
        self.symbols.declare("stream", 4 << 20)
        self.symbols.declare("hot_grid", 256 * 1024)  # 2x the 128K cache
        self.symbols.declare("lut", 16 * 1024)

    def _generate(self):
        stream = self.symbols["stream"]
        grid = self.symbols["hot_grid"]
        lut = self.symbols["lut"]
        cur = 0
        for _ in range(12):
            offsets = (
                np.uint64(cur)
                + np.arange(0, 64 * 4000, 64, dtype=np.uint64)
            ) % np.uint64(stream.size)
            yield self.block(np.uint64(stream.base) + offsets, label="stream")
            cur = (cur + 64 * 4000) % stream.size
            grid_sweep = np.arange(grid.base, grid.end, 64, dtype=np.uint64)
            yield self.block(np.tile(grid_sweep, 2), label="grid")
            lut_hits = np.arange(lut.base, lut.end, 64, dtype=np.uint64)
            yield self.block(np.tile(lut_hits, 4), label="lut")


def main() -> None:
    sim = Simulator(CACHE, seed=33)
    base = sim.run(MixedKernel(seed=33))
    interval = base.stats.app_cycles // 40
    searched = sim.run(MixedKernel(seed=33), tool=NWaySearch(n=10, interval_cycles=interval))
    print("== step 1: who misses? (10-way search) ==")
    print(searched.measured.table(k=3))

    # A reference sample for reuse/conflict analysis: one generator pass.
    sample = np.concatenate([b.addrs for b in MixedKernel(seed=33).blocks()])[:400_000]
    wl = MixedKernel(seed=33)
    wl.prepare()

    print("\n== step 2: why do they miss? ==")
    miss_sample = sample  # conflicts tolerate any representative sample
    conflicts = analyse_conflicts(miss_sample, wl.object_map, CACHE)
    diagnoses = advise(base.actual, sample, wl.object_map, CACHE, conflicts)
    print(advice_table(diagnoses))

    print("\n== step 3: would a bigger cache help? ==")
    sizes = [32 * 1024, 64 * 1024, 128 * 1024, 256 * 1024, 512 * 1024, 1 << 20]
    curve = miss_ratio_curve(sample, sizes)
    print(
        hbar_chart(
            [fmt_bytes(s) for s in sizes],
            {"miss ratio": [curve[s] for s in sizes]},
            unit="",
            title="predicted miss ratio vs cache size (fully-assoc LRU)",
        )
    )
    knee = next((s for s in sizes if curve[s] < curve[sizes[0]] * 0.5), None)
    if knee:
        print(f"\nthe curve knees at ~{fmt_bytes(knee)}: that is hot_grid "
              "starting to fit — tiling it to the current cache gets the "
              "same win without new hardware.")


if __name__ == "__main__":
    main()
