"""End-to-end simulator throughput: generator path vs compiled streams.

Runs the Table 1 quick suite (the same per-app kwargs the experiment
runner's ``--quick`` preset uses) through ``Simulator.run`` twice per
application:

* **generator** — the default configuration: workload generator feeding
  the ``reference`` cache kernel, exactly what a stock run paid before
  stream compilation existed;
* **compiled** — ``compile_streams=True`` over a warm on-disk stream
  cache with ``backend="auto"``, the fast path this repository ships.

Both runs keep ground-truth attribution on (the paper's "Actual" column
is part of every Table 1 run), and the benchmark asserts they agree on
miss counts before recording any timing — a speedup that breaks
bit-identity is a bug, not a result.

Alongside the quick cases, a ``*-steady`` group scales each workload's
*time* dimension 4x at the same memory footprint. Quick runs are so
short that per-run fixed costs (session setup, stream-cache load,
finalize) eat a visible fraction of the wall time; the steady cases show
the amortised throughput longer experiments actually see. Both groups
land in ``BENCH_e2e.json`` with environment metadata for the CI perf
gate (see EXPERIMENTS.md).

Usage::

    PYTHONPATH=src python benchmarks/bench_e2e.py [--repeats N] [--quick-only]

Not collected by pytest (no test_ prefix): this is a tooling script the
CI workflow runs to track the end-to-end speedup over time.
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from pathlib import Path

from bench_env import environment

from repro.cache.config import CacheConfig
from repro.experiments.runner import _QUICK_KWARGS
from repro.sim.engine import Simulator
from repro.workloads.compile import compiled_stream_for
from repro.workloads.registry import make_workload, workload_names

SEED = 1234

#: Same footprints as the quick suite, 4x the time dimension: more
#: steps/iterations over the same arrays, so cache behaviour per
#: reference is unchanged but fixed per-run costs amortise away.
_STEADY_KWARGS: dict[str, dict] = {
    "tomcatv": {"n_steps": 16, "rows_per_step": 16},
    "swim": {"n_steps": 16, "lines_per_array_per_step": 1600},
    "su2cor": {"total_lines": 160000, "slices_per_era": 96},
    "mgrid": {"n_vcycles": 16, "fine_lines": 9000},
    "applu": {"n_iterations": 28, "jacobian_lines": 4500},
    "compress": {"input_lines": 120000},
    "ijpeg": {"image_lines": 80000},
}


def _simulators(stream_dir: str) -> tuple[Simulator, Simulator]:
    gen = Simulator(CacheConfig(), seed=7)
    fast = Simulator(
        CacheConfig(backend="auto"),
        seed=7,
        compile_streams=True,
        stream_cache_dir=stream_dir,
    )
    return gen, fast


def _time_run(sim: Simulator, app: str, kwargs: dict, repeats: int):
    """Best-of-``repeats`` wall seconds for one full ``Simulator.run``.

    A fresh workload instance per repeat keeps the generator path honest:
    reusing one instance would let ``reset()`` skim preparation work the
    first run paid.
    """
    best, stats = float("inf"), None
    for _ in range(repeats):
        workload = make_workload(app, seed=SEED, **kwargs)
        t0 = time.perf_counter()
        result = sim.run(workload)
        elapsed = time.perf_counter() - t0
        best = min(best, elapsed)
        if stats is None:
            stats = result.stats
        elif (stats.app_misses, stats.app_refs) != (
            result.stats.app_misses,
            result.stats.app_refs,
        ):
            raise AssertionError(f"{app}: non-deterministic run stats")
    return best, stats


def bench_case(
    name: str,
    app: str,
    kwargs: dict,
    gen: Simulator,
    fast: Simulator,
    repeats: int,
) -> dict:
    # Warm the stream cache so timed runs measure the steady state an
    # experiment grid sees (cached load), not one-off compilation.
    compiled_stream_for(
        make_workload(app, seed=SEED, **kwargs), fast.stream_cache_dir
    )
    gen_best, gen_stats = _time_run(gen, app, kwargs, repeats)
    fast_best, fast_stats = _time_run(fast, app, kwargs, repeats)
    if (gen_stats.app_misses, gen_stats.app_refs) != (
        fast_stats.app_misses,
        fast_stats.app_refs,
    ):
        raise AssertionError(
            f"{name}: compiled path diverged from generator path "
            f"(gen misses={gen_stats.app_misses}, "
            f"compiled misses={fast_stats.app_misses})"
        )
    refs = int(gen_stats.app_refs)
    return {
        "case": name,
        "refs": refs,
        "misses": int(gen_stats.app_misses),
        "paths": {
            "generator": {
                "seconds": round(gen_best, 4),
                "refs_per_sec": round(refs / gen_best),
            },
            "compiled": {
                "seconds": round(fast_best, 4),
                "refs_per_sec": round(refs / fast_best),
            },
        },
        "speedup_compiled_vs_generator": round(gen_best / fast_best, 2),
    }


def _aggregate(cases: list[dict], group: str) -> dict:
    refs = sum(c["refs"] for c in cases)
    gen_s = sum(c["paths"]["generator"]["seconds"] for c in cases)
    fast_s = sum(c["paths"]["compiled"]["seconds"] for c in cases)
    return {
        "case": f"aggregate-{group}",
        "refs": refs,
        "paths": {
            "generator": {
                "seconds": round(gen_s, 4),
                "refs_per_sec": round(refs / gen_s),
            },
            "compiled": {
                "seconds": round(fast_s, 4),
                "refs_per_sec": round(refs / fast_s),
            },
        },
        "speedup_compiled_vs_generator": round(gen_s / fast_s, 2),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--quick-only",
        action="store_true",
        help="skip the *-steady scaled cases (faster, noisier)",
    )
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_e2e.json"),
    )
    args = parser.parse_args(argv)

    groups: list[tuple[str, dict[str, dict]]] = [("quick", _QUICK_KWARGS)]
    if not args.quick_only:
        groups.append(("steady", _STEADY_KWARGS))

    results: list[dict] = []
    with tempfile.TemporaryDirectory(prefix="bench-e2e-streams-") as streams:
        gen, fast = _simulators(streams)
        for group, kwarg_map in groups:
            group_cases = []
            for app in workload_names():
                name = f"{app}-{group}"
                case = bench_case(
                    name, app, kwarg_map[app], gen, fast, args.repeats
                )
                group_cases.append(case)
                results.append(case)
                print(
                    f"{name:>16}: {case['refs']:>9,} refs  "
                    f"compiled {case['paths']['compiled']['refs_per_sec']:>11,} refs/s  "
                    f"speedup {case['speedup_compiled_vs_generator']:.2f}x"
                )
            agg = _aggregate(group_cases, group)
            results.append(agg)
            print(
                f"{agg['case']:>16}: {agg['refs']:>9,} refs  "
                f"compiled {agg['paths']['compiled']['refs_per_sec']:>11,} refs/s  "
                f"speedup {agg['speedup_compiled_vs_generator']:.2f}x"
            )

    payload = {
        "benchmark": "end-to-end-simulator",
        "seed": SEED,
        "repeats": args.repeats,
        "environment": environment(),
        "cases": results,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
