"""E3 — regenerate Figure 3: % increase in cache misses under
instrumentation.

Expected shape (paper section 3.2): all perturbations are near-negligible
(the paper's worst cases are 0.14% for compress/search and 2.4% for
ijpeg/search); for some applications the sampling perturbation *rises* as
sampling gets rarer (instrumentation data evicted between samples) before
vanishing at 1-in-1M.
"""

from benchmarks.conftest import run_experiment
from repro.experiments.fig3 import run_fig3


def test_fig3(benchmark, runner, reports_dir):
    report = run_experiment(benchmark, lambda: run_fig3(runner), reports_dir)

    for app, vals in report.values.items():
        for key, increase in vals.items():
            if key == "baseline_misses":
                continue
            assert increase < 0.05, (app, key)
        assert vals["sample_1000000"] <= vals["sample_1000"] + 0.001, app
