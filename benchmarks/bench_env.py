"""Environment metadata stamped into benchmark JSON baselines.

Throughput baselines are only comparable when they come from the same
interpreter, numpy build and CPU; a baseline recorded on one machine and
replayed on another flags "regressions" that are really hardware drift.
Every benchmark script embeds :func:`environment` into its JSON payload,
and ``compare_bench.py`` downgrades failures to warnings whenever the
recorded environment differs from the current one.

Not collected by pytest (no test_ prefix).
"""

from __future__ import annotations

import platform
import sys

import numpy as np


def _cpu_model() -> str:
    """Best-effort CPU model string, portable across Linux/macOS."""
    model = platform.processor() or platform.machine()
    try:
        with open("/proc/cpuinfo") as fh:
            for line in fh:
                if line.lower().startswith("model name"):
                    model = line.split(":", 1)[1].strip()
                    break
    except OSError:
        pass
    return model


def environment() -> dict:
    """Python/numpy/CPU facts that make throughput numbers comparable."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "numpy": np.__version__,
        "cpu": _cpu_model(),
        "machine": platform.machine(),
        "system": platform.system(),
    }


def environment_drift(recorded: dict | None, current: dict | None = None) -> list[str]:
    """Names of environment fields that differ between two recordings.

    A missing/empty ``recorded`` block (old baseline format) counts as
    drift on every field, so comparisons against pre-metadata baselines
    warn instead of failing.
    """
    if current is None:
        current = environment()
    if not recorded:
        return sorted(current)
    return sorted(
        key
        for key in current
        if recorded.get(key) != current[key]
    )


if __name__ == "__main__":
    for key, value in environment().items():
        print(f"{key}: {value}")
    sys.exit(0)
