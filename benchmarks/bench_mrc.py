"""MRC sweep cost: one SHARDS pass vs simulating every cache size.

For each application the benchmark prices the same nine-size miss-ratio
sweep (``repro.experiments.mrc.DEFAULT_SIZES``, 16 KiB – 4 MiB) two
ways, both through the experiment runner's own machinery so the numbers
describe what a sweep actually costs:

* **simulate** — one full grid cell per size
  (:func:`repro.experiments.parallel.execute_task` on the runner's
  ``mrc_task`` spec, compiled streams warm): exactly what an N-size
  sweep paid before the MRC engine existed, and exactly what the E12
  driver still pays per verification cell.
* **mrc** — one SHARDS-sampled pass (:func:`repro.experiments.mrc
  .mrc_pass`, rate 0.1, runner seed) plus the associativity-corrected
  curve evaluation at all nine sizes and the verification-cell pick.

Before any timing is recorded the benchmark checks accuracy: the MRC
prediction must stay within 5% absolute miss ratio of the exact
simulator at *every* size in the sweep (observed worst gaps are under
1.5%; the margin absorbs sampling noise on other seeds). A fast pass
that drifts from the simulator is a bug, not a result.

The headline number is ``sim_equivalents`` — the MRC pass's wall time
expressed in units of one average per-size grid cell. The repo's
acceptance gate, asserted here, is <= 2: the whole >= 8-size sweep must
cost no more than two simulations. ``verify`` additionally prices the
two highest-curvature verification cells the E12 driver spends the
exact simulator on (they are sweep cells, so their cost is read off the
per-size timings rather than re-run).

Usage::

    PYTHONPATH=src python benchmarks/bench_mrc.py [--repeats N]

Not collected by pytest (no test_ prefix): the CI perf job runs this and
gates the ``mrc`` path's throughput against the committed
``BENCH_mrc.json`` via ``compare_bench.py``.
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from pathlib import Path

from bench_env import environment

from repro.cache.mrc import select_verification_sizes
from repro.experiments.mrc import DEFAULT_RATE, DEFAULT_SIZES, mrc_pass
from repro.experiments.parallel import execute_task
from repro.experiments.runner import ExperimentRunner, RunnerConfig

SEED = 99

#: References per pass and per simulation cell (the E12 default).
MAX_REFS = 400_000

#: Sweep accuracy bound: MRC prediction vs exact simulator, every size.
MAX_ABS_ERROR = 0.05

#: Simulation-equivalents ceiling for one pass (the acceptance gate).
MAX_SIM_EQUIVALENTS = 2.0

#: Verification cells the E12 driver spends the simulator on.
VERIFY_CELLS = 2

APPS = ("mgrid", "ijpeg")


def _time_cell(runner: ExperimentRunner, app: str, size: int, repeats: int):
    """Best-of wall seconds and stats for one uncached sweep cell."""
    spec = runner.mrc_task(app, size=size, max_refs=MAX_REFS)
    best, stats = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = execute_task(spec, None, runner.stream_cache_dir)
        best = min(best, time.perf_counter() - t0)
        stats = result.stats
    return best, stats


def _time_pass(runner: ExperimentRunner, app: str, repeats: int):
    """Best-of wall seconds for one SHARDS pass + curve + cell pick."""
    assoc = runner.config.cache.assoc
    best, curve = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = mrc_pass(
            runner, app, MAX_REFS, mode="shards", sample_rate=DEFAULT_RATE
        )
        got = result.curve(DEFAULT_SIZES, assoc=assoc)
        select_verification_sizes(got, VERIFY_CELLS)
        best = min(best, time.perf_counter() - t0)
        if curve is not None and got != curve:
            raise AssertionError(f"{app}: non-deterministic SHARDS pass")
        curve = got
    return best, curve


def bench_case(runner: ExperimentRunner, app: str, repeats: int) -> dict:
    # Warm the compiled-stream cache so timed runs price the steady
    # state a grid sees (cached load), not one-off compilation.
    mrc_pass(runner, app, 1000)

    sim_seconds: dict[int, float] = {}
    simulated: dict[int, float] = {}
    refs = None
    for size in DEFAULT_SIZES:
        seconds, stats = _time_cell(runner, app, size, repeats)
        sim_seconds[size] = seconds
        simulated[size] = stats.app_misses / stats.app_refs
        if refs is None:
            refs = int(stats.app_refs)
        elif refs != int(stats.app_refs):
            raise AssertionError(f"{app}: ref count varies across sizes")

    mrc_seconds, curve = _time_pass(runner, app, repeats)

    worst = max(abs(curve[s] - simulated[s]) for s in DEFAULT_SIZES)
    if worst > MAX_ABS_ERROR:
        raise AssertionError(
            f"{app}: MRC prediction off by {worst:.4f} miss ratio "
            f"(bound {MAX_ABS_ERROR}); a fast pass that disagrees with "
            "the simulator is a bug, not a result"
        )

    n_sizes = len(DEFAULT_SIZES)
    simulate_total = sum(sim_seconds.values())
    sim_equivalents = mrc_seconds / (simulate_total / n_sizes)
    if sim_equivalents > MAX_SIM_EQUIVALENTS:
        raise AssertionError(
            f"{app}: one MRC pass cost {sim_equivalents:.2f} simulation "
            f"equivalents; the sweep gate requires <= {MAX_SIM_EQUIVALENTS}"
        )
    verify_sizes = select_verification_sizes(curve, VERIFY_CELLS)

    # "refs" below is per-cell stream length; throughput counts each
    # reference once per size it resolves, since both paths answer the
    # whole sweep.
    sweep_refs = refs * n_sizes
    return {
        "case": f"{app}-sweep",
        "refs": refs,
        "sizes": n_sizes,
        "paths": {
            "simulate": {
                "seconds": round(simulate_total, 4),
                "refs_per_sec": round(sweep_refs / simulate_total),
            },
            "mrc": {
                "seconds": round(mrc_seconds, 4),
                "refs_per_sec": round(sweep_refs / mrc_seconds),
            },
        },
        "sim_equivalents": round(sim_equivalents, 3),
        "speedup_mrc_vs_simulate": round(simulate_total / mrc_seconds, 2),
        "max_abs_error": round(worst, 5),
        "verify": {
            "sizes": verify_sizes,
            "seconds": round(sum(sim_seconds[s] for s in verify_sizes), 4),
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_mrc.json"),
    )
    args = parser.parse_args(argv)

    cases = []
    with tempfile.TemporaryDirectory(prefix="bench-mrc-") as cache_dir:
        runner = ExperimentRunner(
            RunnerConfig(seed=SEED), quick=True, cache_dir=cache_dir
        )
        for app in APPS:
            case = bench_case(runner, app, args.repeats)
            cases.append(case)
            print(
                f"{case['case']:>14}: {case['refs']:>8,} refs x "
                f"{case['sizes']} sizes  mrc {case['paths']['mrc']['seconds']:.3f}s  "
                f"= {case['sim_equivalents']:.3f} sim-equivalents  "
                f"(speedup {case['speedup_mrc_vs_simulate']:.1f}x, "
                f"max err {case['max_abs_error']:.4f})"
            )

    payload = {
        "benchmark": "mrc-sweep",
        "seed": SEED,
        "repeats": args.repeats,
        "sample_rate": DEFAULT_RATE,
        "max_refs": MAX_REFS,
        "environment": environment(),
        "cases": cases,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
