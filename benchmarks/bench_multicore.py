"""Throughput of interleaved multi-core sessions vs solo single-core runs.

Runs each co-runner pair twice: once as N independent single-core
``Simulator`` runs (the anchor — same streams, no sharing) and once
through :class:`~repro.sim.session.MultiCoreSession` (private L1s over
one shared LLC, deterministic round-robin interleaving, per-chunk
contention classification against the solo shadow model). The gated
quantity is the interleaved path's refs/sec: the interleaver, the
shared-level port protocol and the shadow classifier all sit on the hot
path, and this gate keeps per-chunk Python overhead from creeping in.

Correctness rides along: every repeat must be bit-identical (per-core
stats and contention ledgers), and each core's self + contention split
must conserve exactly against its observed shared-level misses.

Results land in ``BENCH_multicore.json`` at the repository root.

Usage::

    PYTHONPATH=src python benchmarks/bench_multicore.py [--repeats N]

Not collected by pytest (no test_ prefix): the CI perf job runs this
and gates the interleaved path's throughput against the committed
baseline via ``compare_bench.py`` (FAST_PATH "multicore-interleave" ->
paths/multicore).
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from bench_env import environment

from repro.cache import CacheConfig
from repro.sim import MultiCoreSession, Simulator
from repro.workloads.registry import make_workload

SEED = 99

#: Shared LLC and the private L1 fronting each core (same shapes the E14
#: driver derives at its default geometry).
LLC = CacheConfig(size=64 * 1024, line_size=64, assoc=4)
L1 = CacheConfig(size=8 * 1024, line_size=64, assoc=4)

#: Co-runner pairs to measure: integer codes with small footprints and
#: the two array walkers whose working sets actually fight over the LLC.
CASES = {
    "compress+ijpeg": [
        ("compress", {"input_lines": 30_000}),
        ("ijpeg", {"image_lines": 20_000}),
    ],
    "tomcatv+mgrid": [
        ("tomcatv", {"n_steps": 4, "rows_per_step": 16}),
        ("mgrid", {"n_vcycles": 4, "fine_lines": 9_000}),
    ],
}


def fresh_workloads(specs: list[tuple[str, dict]]) -> list:
    """Streams are consumed by a run, so every repeat gets new ones."""
    return [make_workload(name, seed=SEED, **kwargs) for name, kwargs in specs]


def time_solo(specs: list[tuple[str, dict]], repeats: int):
    """Best-of wall seconds (summed over cores) + total refs + misses."""
    best = [float("inf")] * len(specs)
    refs = misses = 0
    for rep in range(repeats):
        refs = misses = 0
        for i, (app, kwargs) in enumerate(specs):
            workload = make_workload(app, seed=SEED, **kwargs)
            t0 = time.perf_counter()
            result = Simulator(LLC, l1_config=L1, seed=SEED).run(workload)
            best[i] = min(best[i], time.perf_counter() - t0)
            refs += result.stats.app_refs
            misses += result.cache_stats.misses
    return sum(best), refs, misses


def time_multicore(specs: list[tuple[str, dict]], repeats: int):
    """Best-of wall seconds + the (determinism-checked) final result."""
    best, fingerprint, keep = float("inf"), None, None
    for _ in range(repeats):
        workloads = fresh_workloads(specs)
        t0 = time.perf_counter()
        session = MultiCoreSession.start(
            workloads, llc_config=LLC, l1_config=L1, seed=SEED
        )
        session.run()
        result = session.finalize()
        best = min(best, time.perf_counter() - t0)
        got = tuple(
            (core.stats, core.contention.ledger.snapshot())
            for core in result.cores
        )
        if fingerprint is None:
            fingerprint, keep = got, result
        elif got != fingerprint:
            raise AssertionError("non-deterministic multi-core result")
        for core in result.cores:
            ledger = core.contention.ledger
            split = ledger.self_misses + ledger.contention_misses
            if split != ledger.classified_misses != core.cache_stats.misses:
                raise AssertionError(
                    f"core {core.core_id}: self {ledger.self_misses} + "
                    f"contention {ledger.contention_misses} != observed "
                    f"{core.cache_stats.misses} shared-level misses"
                )
    return best, keep


def bench_case(name: str, specs: list[tuple[str, dict]], repeats: int) -> dict:
    solo_seconds, refs, solo_misses = time_solo(specs, repeats)
    mc_seconds, result = time_multicore(specs, repeats)
    contention = sum(
        core.contention.ledger.contention_misses for core in result.cores
    )
    case = {
        "case": name,
        "refs": int(refs),
        "paths": {
            "solo": {
                "seconds": round(solo_seconds, 4),
                "refs_per_sec": round(refs / solo_seconds),
                "llc_misses": int(solo_misses),
            },
            "multicore": {
                "seconds": round(mc_seconds, 4),
                "refs_per_sec": round(refs / mc_seconds),
                "llc_misses": int(result.cache_stats.misses),
                "contention_misses": int(contention),
            },
        },
        "slowdown_multicore_vs_solo": round(mc_seconds / solo_seconds, 2),
    }
    return case


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--out",
        default=str(
            Path(__file__).resolve().parent.parent / "BENCH_multicore.json"
        ),
    )
    args = parser.parse_args(argv)

    cases = []
    for name, specs in CASES.items():
        case = bench_case(name, specs, args.repeats)
        cases.append(case)
        mc = case["paths"]["multicore"]
        print(
            f"{name:>16}: {case['refs']:>8,} refs  "
            f"solo {case['paths']['solo']['refs_per_sec']:>10,}/s  "
            f"multicore {mc['refs_per_sec']:>10,}/s  "
            f"(contention {mc['contention_misses']:,}, "
            f"x{case['slowdown_multicore_vs_solo']} vs solo)"
        )

    payload = {
        "benchmark": "multicore-interleave",
        "seed": SEED,
        "repeats": args.repeats,
        "llc": LLC.describe(),
        "l1": L1.describe(),
        "environment": environment(),
        "cases": cases,
    }
    Path(args.out).write_text(json.dumps(payload, indent=1) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
