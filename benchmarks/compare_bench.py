"""Compare fresh benchmark JSON against a committed baseline (perf gate).

The CI ``perf`` job reruns ``bench_kernel.py`` / ``bench_e2e.py`` /
``bench_mrc.py`` and feeds both the fresh file and the committed
``BENCH_*.json`` through this script. Per case, the gate compares the
*fast path's* refs/sec (``array`` backend for the kernel benchmark,
``compiled`` path for the end-to-end one, the one-pass ``mrc`` engine
for the sweep benchmark):

* drop > ``--fail-pct`` (default 25%) — regression, exit 1;
* drop > ``--warn-pct`` (default 10%) — warning, exit 0;
* anything else (including improvements) — OK.

Shared-runner throughput is noisy, hence the wide band: the gate exists
to catch "someone reintroduced the per-reference Python loop", not 3%
jitter. When the recorded environment (python/numpy/CPU — see
``bench_env.py``) differs from the current one, regressions downgrade to
warnings: a different CPU legitimately produces different numbers, and a
hard failure would just teach people to ignore the gate.

A GitHub-flavoured markdown delta table is appended to the file named by
``$GITHUB_STEP_SUMMARY`` when that variable is set (and always printed
to stdout), so the job summary shows per-case deltas at a glance.

Usage::

    python benchmarks/compare_bench.py BASELINE.json FRESH.json \
        [--fail-pct 25] [--warn-pct 10]

Not collected by pytest (no test_ prefix).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from bench_env import environment_drift

#: Fast path to gate on, per benchmark kind (the slow path is the
#: comparison anchor inside each file, not a gated quantity).
FAST_PATH = {
    "cache-kernel-backends": ("backends", "array"),
    "end-to-end-simulator": ("paths", "compiled"),
    "mrc-sweep": ("paths", "mrc"),
    # Decorated stacks are scalar by design; the gated quantity is the
    # vc stack's refs/sec (slowest-common mechanism path) so the scalar
    # protocol can't quietly regress.
    "mechanism-stacks": ("stacks", "vc"),
    # The interleaved multi-core path carries the shared-port protocol
    # and the shadow classifier on its hot loop; the solo path inside
    # each file is the anchor, the interleaved refs/sec is gated.
    "multicore-interleave": ("paths", "multicore"),
}


def fast_refs_per_sec(payload: dict, case: dict) -> int | None:
    group_key, path_key = FAST_PATH.get(payload.get("benchmark", ""), (None, None))
    if group_key is None:
        return None
    entry = case.get(group_key, {}).get(path_key)
    return None if entry is None else entry.get("refs_per_sec")


def compare(baseline: dict, fresh: dict, fail_pct: float, warn_pct: float):
    """(rows, regressions, warnings) of the per-case delta table."""
    fresh_cases = {c["case"]: c for c in fresh.get("cases", [])}
    rows: list[tuple[str, str, str, str, str]] = []
    regressions: list[str] = []
    warnings: list[str] = []
    for case in baseline.get("cases", []):
        name = case["case"]
        base_rps = fast_refs_per_sec(baseline, case)
        if base_rps is None:
            continue
        fresh_case = fresh_cases.get(name)
        if fresh_case is None:
            warnings.append(f"{name}: present in baseline but not in fresh run")
            rows.append((name, f"{base_rps:,}", "—", "—", "missing"))
            continue
        new_rps = fast_refs_per_sec(fresh, fresh_case)
        if new_rps is None:
            warnings.append(f"{name}: fresh run lacks the gated fast path")
            rows.append((name, f"{base_rps:,}", "—", "—", "missing"))
            continue
        delta_pct = 100.0 * (new_rps - base_rps) / base_rps
        if delta_pct < -fail_pct:
            status = "FAIL"
            regressions.append(f"{name}: {delta_pct:+.1f}% vs baseline")
        elif delta_pct < -warn_pct:
            status = "warn"
            warnings.append(f"{name}: {delta_pct:+.1f}% vs baseline")
        else:
            status = "ok"
        rows.append(
            (name, f"{base_rps:,}", f"{new_rps:,}", f"{delta_pct:+.1f}%", status)
        )
    for name in fresh_cases:
        if name not in {c["case"] for c in baseline.get("cases", [])}:
            warnings.append(f"{name}: new case with no baseline (add one)")
    return rows, regressions, warnings


def markdown_table(title: str, rows: list[tuple[str, str, str, str, str]]) -> str:
    lines = [
        f"### {title}",
        "",
        "| case | baseline refs/s | fresh refs/s | delta | status |",
        "| --- | ---: | ---: | ---: | --- |",
    ]
    lines += [f"| {' | '.join(row)} |" for row in rows]
    return "\n".join(lines) + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path)
    parser.add_argument("fresh", type=Path)
    parser.add_argument("--fail-pct", type=float, default=25.0)
    parser.add_argument("--warn-pct", type=float, default=10.0)
    args = parser.parse_args(argv)

    baseline = json.loads(args.baseline.read_text())
    fresh = json.loads(args.fresh.read_text())
    if baseline.get("benchmark") != fresh.get("benchmark"):
        print(
            f"cannot compare {baseline.get('benchmark')!r} "
            f"baseline against {fresh.get('benchmark')!r} fresh run",
            file=sys.stderr,
        )
        return 2

    rows, regressions, warnings = compare(
        baseline, fresh, args.fail_pct, args.warn_pct
    )
    drift = environment_drift(
        baseline.get("environment"), fresh.get("environment")
    )

    table = markdown_table(
        f"Perf gate: {baseline.get('benchmark')}", rows
    )
    if drift:
        table += (
            f"\nEnvironment drift ({', '.join(drift)}) — regressions "
            "downgraded to warnings.\n"
        )
    print(table)
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as fh:
            fh.write(table + "\n")

    for message in warnings:
        print(f"warning: {message}")
    if regressions and drift:
        for message in regressions:
            print(f"warning (env drift): {message}")
        return 0
    if regressions:
        for message in regressions:
            print(f"REGRESSION: {message}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
