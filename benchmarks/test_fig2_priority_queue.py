"""E7 — regenerate Figure 2: search with vs without the priority queue.

Expected shape: on a layout where one region's *aggregate* misses (60%)
exceed the region holding the single hottest array E (35%), the greedy
search discards E's region in its first refinement and terminates inside
the 60% region (the paper's diagram ends on C); the priority-queue search
backtracks and ranks E first.
"""

from benchmarks.conftest import run_experiment
from repro.experiments.fig2 import run_fig2


def test_fig2(benchmark, runner, reports_dir):
    report = run_experiment(benchmark, lambda: run_fig2(runner), reports_dir)

    assert report.values["hottest"] == "E"
    assert report.values["pq_top"] == "E"
    assert report.values["greedy_top"] != "E"
    assert "E" not in report.values["greedy_found"]
