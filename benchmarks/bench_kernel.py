"""Head-to-head throughput benchmark of the cache kernel backends.

Replays the same reference streams through the "reference" and "array"
kernels, reports refs/sec per backend, and sanity-checks that both saw
exactly the same miss counts (the backends are contractually
bit-identical — see DESIGN.md section 6). Results land in
``BENCH_kernel.json`` at the repository root.

Usage::

    PYTHONPATH=src python benchmarks/bench_kernel.py [--repeats N]

Not collected by pytest (no test_ prefix): this is a tooling script the
CI workflow runs after the suite to track the speedup over time.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from bench_env import environment

from repro.cache.config import CacheConfig
from repro.cache.kernels import KERNEL_BACKENDS
from repro.cache.set_assoc import SetAssociativeCache
from repro.workloads.registry import make_workload

CHUNK = 1 << 15  # the engine's chunk size

#: Streams to measure: (name, workload kwargs or None for synthetic).
QUICK_TOMCATV = {"n_steps": 4, "rows_per_step": 16}


def workload_stream(name: str, **kwargs) -> np.ndarray:
    wl = make_workload(name, seed=99, **kwargs)
    return np.concatenate([b.addrs for b in wl.blocks()])


def synthetic_stream(n: int, n_lines: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    lines = rng.integers(0, n_lines, n)
    return lines.astype(np.uint64) * np.uint64(64)


def time_backend(backend: str, addrs: np.ndarray, cfg: CacheConfig, repeats: int):
    """Best-of-``repeats`` wall time to stream ``addrs`` chunk by chunk."""
    best, misses = float("inf"), None
    for _ in range(repeats):
        cache = SetAssociativeCache(cfg, seed=7, backend=backend)
        t0 = time.perf_counter()
        for pos in range(0, len(addrs), CHUNK):
            cache.access(addrs[pos : pos + CHUNK])
        elapsed = time.perf_counter() - t0
        best = min(best, elapsed)
        if misses is None:
            misses = cache.stats.misses
        elif misses != cache.stats.misses:
            raise AssertionError(f"{backend}: non-deterministic miss count")
    return best, misses


def bench_case(name: str, addrs: np.ndarray, cfg: CacheConfig, repeats: int) -> dict:
    result = {"case": name, "refs": int(len(addrs)), "backends": {}}
    miss_counts = {}
    for backend in KERNEL_BACKENDS:
        best, misses = time_backend(backend, addrs, cfg, repeats)
        miss_counts[backend] = misses
        result["backends"][backend] = {
            "seconds": round(best, 4),
            "refs_per_sec": round(len(addrs) / best),
            "misses": int(misses),
        }
    if len(set(miss_counts.values())) != 1:
        raise AssertionError(f"{name}: backends disagree on misses {miss_counts}")
    ref = result["backends"]["reference"]["seconds"]
    arr = result["backends"]["array"]["seconds"]
    result["speedup_array_vs_reference"] = round(ref / arr, 2)
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_kernel.json"),
    )
    args = parser.parse_args(argv)

    cfg = CacheConfig(size=256 * 1024, assoc=4)
    cases = [
        ("tomcatv-quick", workload_stream("tomcatv", **QUICK_TOMCATV)),
        ("swim-quick", workload_stream("swim", n_steps=4, lines_per_array_per_step=1600)),
        ("uniform-2x-cache", synthetic_stream(400_000, 8192, seed=1)),
        ("hot-set-in-cache", synthetic_stream(400_000, 2048, seed=2)),
    ]
    results = []
    for name, addrs in cases:
        case = bench_case(name, addrs, cfg, args.repeats)
        results.append(case)
        arr = case["backends"]["array"]
        print(
            f"{name:>18}: {case['refs']:>8,} refs  "
            f"array {arr['refs_per_sec']:>11,} refs/s  "
            f"speedup {case['speedup_array_vs_reference']:.2f}x"
        )

    payload = {
        "benchmark": "cache-kernel-backends",
        "config": {"size": cfg.size, "assoc": cfg.assoc, "chunk": CHUNK},
        "repeats": args.repeats,
        "environment": environment(),
        "cases": results,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")

    tomcatv = results[0]
    if tomcatv["speedup_array_vs_reference"] < 2.0:
        print(
            "WARNING: array backend below the 2x target on tomcatv-quick "
            f"({tomcatv['speedup_array_vs_reference']:.2f}x)"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
