"""Throughput of mechanism-decorated cache stacks vs the plain kernel.

Replays the same reference streams through the undecorated reference
kernel and through each mechanism stack (victim cache, miss cache,
stream buffers, and the two classic pairings — see
``repro.cache.components``), reporting refs/sec per stack. Decorated
stacks run the scalar per-line protocol, so they are expected to be
slower than the chunked kernels; the gate exists to keep that scalar
path from regressing further (e.g. per-reference object churn sneaking
into ``access_line``), not to race it against the array kernel.

Correctness rides along: every decorated stack must post no more misses
than the plain cache over the identical stream, the leaf ledger must
match the plain run exactly (decoration never changes leaf evolution),
and repeated runs must be bit-identical.

Results land in ``BENCH_mechanisms.json`` at the repository root.

Usage::

    PYTHONPATH=src python benchmarks/bench_mechanisms.py [--repeats N]

Not collected by pytest (no test_ prefix): the CI perf job runs this
and gates the ``vc`` stack's throughput against the committed baseline
via ``compare_bench.py`` (FAST_PATH "mechanism-stacks" -> stacks/vc).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import time
from pathlib import Path

import numpy as np

from bench_env import environment

from repro.cache import CacheConfig, make_cache
from repro.experiments.mechanisms import MECHANISM_CHOICES
from repro.workloads.registry import make_workload

CHUNK = 1 << 15  # the engine's chunk size

SEED = 99

#: Per-case stream cap: long enough to warm every buffer, short enough
#: that five scalar stacks x repeats stay in CI budget.
MAX_REFS = 150_000

CFG = CacheConfig(size=32 * 1024, line_size=64, assoc=2)

#: Streams to measure: a sequential-heavy app (SB territory) and a
#: conflict-heavy stencil (VC/MC territory).
CASES = {
    "compress": {"input_lines": 30_000},
    "tomcatv": {"n_steps": 4, "rows_per_step": 16},
}


def workload_stream(name: str, **kwargs) -> np.ndarray:
    wl = make_workload(name, seed=SEED, **kwargs)
    addrs = np.concatenate([b.addrs for b in wl.blocks()])
    return addrs[:MAX_REFS]


def conflict_stream() -> np.ndarray:
    """assoc+1 lines fighting over each of 8 sets — pure conflict
    misses, the stream a victim cache exists for."""
    n_sets = CFG.n_sets
    ways = CFG.assoc + 1
    lines = np.array(
        [
            (i % 8) + ((i // 8) % ways) * n_sets
            for i in range(MAX_REFS)
        ],
        dtype=np.uint64,
    )
    return lines * np.uint64(CFG.line_size)


def time_stack(mech: str | None, addrs: np.ndarray, repeats: int):
    """Best-of wall seconds + (total, leaf) miss counts for one stack."""
    cfg = dataclasses.replace(CFG, mechanisms=mech or ())
    best, misses, leaf_misses = float("inf"), None, None
    for _ in range(repeats):
        cache = make_cache(cfg, seed=7)
        t0 = time.perf_counter()
        for pos in range(0, len(addrs), CHUNK):
            cache.access(addrs[pos : pos + CHUNK])
        best = min(best, time.perf_counter() - t0)
        got = cache.stats.misses
        got_leaf = cache.component_ledgers()[-1][1].misses
        if misses is None:
            misses, leaf_misses = got, got_leaf
        elif (misses, leaf_misses) != (got, got_leaf):
            raise AssertionError(f"{mech}: non-deterministic miss count")
    return best, misses, leaf_misses


def bench_case(name: str, addrs: np.ndarray, repeats: int) -> dict:
    result = {"case": name, "refs": int(len(addrs)), "stacks": {}}
    plain_best, plain_misses, _ = time_stack(None, addrs, repeats)
    result["stacks"]["plain"] = {
        "seconds": round(plain_best, 4),
        "refs_per_sec": round(len(addrs) / plain_best),
        "misses": int(plain_misses),
    }
    for mech in MECHANISM_CHOICES:
        best, misses, leaf = time_stack(mech, addrs, repeats)
        if misses > plain_misses:
            raise AssertionError(
                f"{name}/{mech}: {misses} misses > plain {plain_misses}; "
                "a mechanism may never add misses"
            )
        if leaf != plain_misses:
            raise AssertionError(
                f"{name}/{mech}: leaf saw {leaf} misses, plain saw "
                f"{plain_misses}; decoration changed leaf evolution"
            )
        result["stacks"][mech] = {
            "seconds": round(best, 4),
            "refs_per_sec": round(len(addrs) / best),
            "misses": int(misses),
            "rescued": int(plain_misses - misses),
        }
    result["slowdown_vc_vs_plain"] = round(
        result["stacks"]["vc"]["seconds"] / plain_best, 2
    )
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--out",
        default=str(
            Path(__file__).resolve().parent.parent / "BENCH_mechanisms.json"
        ),
    )
    args = parser.parse_args(argv)

    cases = []
    streams = {
        name: workload_stream(name, **kwargs) for name, kwargs in CASES.items()
    }
    streams["conflict"] = conflict_stream()
    for name, addrs in streams.items():
        case = bench_case(name, addrs, args.repeats)
        cases.append(case)
        vc = case["stacks"]["vc"]
        sb = case["stacks"]["sb"]
        print(
            f"{name:>10}: {case['refs']:>8,} refs  "
            f"plain {case['stacks']['plain']['refs_per_sec']:>10,}/s  "
            f"vc {vc['refs_per_sec']:>9,}/s (rescued {vc['rescued']:,})  "
            f"sb {sb['refs_per_sec']:>9,}/s (rescued {sb['rescued']:,})"
        )

    payload = {
        "benchmark": "mechanism-stacks",
        "seed": SEED,
        "repeats": args.repeats,
        "max_refs": MAX_REFS,
        "cache": CFG.describe(),
        "environment": environment(),
        "cases": cases,
    }
    Path(args.out).write_text(json.dumps(payload, indent=1) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
