"""E6 — regenerate the section 3.1 resonance experiment on tomcatv.

Expected shape: an even fixed period splits the RX/RY pair far from
22.5/22.5 (the paper measured 37.1 vs 17.6, a 14.6% max error); the
nearby prime period estimates both within a fraction of a percent (the
paper: ~0.3%); pseudo-random periods also avoid the resonance.
"""

from benchmarks.conftest import run_experiment
from repro.experiments.resonance import run_resonance


def test_resonance(benchmark, runner, reports_dir):
    report = run_experiment(benchmark, lambda: run_resonance(runner), reports_dir)

    even = report.values["even/fixed"]["max_error"]
    prime_key = next(k for k in report.values if k.startswith("prime"))
    prime = report.values[prime_key]["max_error"]
    assert even > 0.05            # strong resonance with the even period
    assert prime < 0.01           # prime period kills it (paper: ~0.3%)
    assert even > 5 * prime
