"""Shared infrastructure for the benchmark/experiment harness.

Every file in benchmarks/ regenerates one of the paper's tables or
figures (see DESIGN.md section 4). Each experiment runs once under
``benchmark.pedantic`` so ``pytest benchmarks/ --benchmark-only`` both
times the regeneration and prints/saves the paper-style report: rendered
tables are written to ``benchmarks/reports/<experiment>.txt`` and echoed
to stdout (run with ``-s`` to see them inline).

Two environment variables wire the harness into the parallel runner and
persistent result cache (see ``src/repro/experiments/parallel.py``):

* ``REPRO_JOBS=N`` — pre-compute the experiment grid over N worker
  processes before the drivers run (results are bit-identical to
  serial execution);
* ``REPRO_CACHE_DIR=PATH`` — persist per-cell results on disk, so a
  repeated benchmark invocation (or a CI run restoring the directory)
  is served from the cache instead of re-simulating;
* ``REPRO_BACKEND=array`` — run every simulation on the flat-array
  cache kernel (bit-identical to the default "reference" backend, and
  keyed separately in the result cache).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.runner import ExperimentRunner, RunnerConfig

REPORTS_DIR = Path(__file__).parent / "reports"


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    """Full-size experiment runner; baselines cached across benchmarks."""
    jobs = int(os.environ.get("REPRO_JOBS", "1") or "1")
    cache_dir = os.environ.get("REPRO_CACHE_DIR") or None
    backend = os.environ.get("REPRO_BACKEND") or None
    runner = ExperimentRunner(
        RunnerConfig(seed=1234, backend=backend),
        quick=False,
        jobs=jobs,
        cache_dir=cache_dir,
    )
    if jobs > 1 or cache_dir:
        runner.warm()
    return runner


@pytest.fixture(scope="session")
def reports_dir() -> Path:
    REPORTS_DIR.mkdir(exist_ok=True)
    return REPORTS_DIR


def emit(report, reports_dir: Path) -> None:
    """Print an ExperimentReport and persist it under benchmarks/reports/."""
    text = str(report)
    print()
    print(text)
    (reports_dir / f"{report.experiment}.txt").write_text(text + "\n")


def run_experiment(benchmark, fn, reports_dir: Path):
    """Run one experiment driver exactly once under the benchmark timer."""
    report = benchmark.pedantic(fn, rounds=1, iterations=1)
    emit(report, reports_dir)
    return report
