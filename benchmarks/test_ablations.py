"""E8 — ablation benches for the design choices the paper calls out.

* object-aligned splits vs naive midpoints (section 2.2),
* the phase heuristic on applu (section 3.5),
* dedicated counters vs one multiplexed counter (sections 2.2/3.4),
* replacement-policy robustness of the rankings.
"""

from benchmarks.conftest import run_experiment
from repro.experiments.ablations import (
    run_alignment_ablation,
    run_multiplex_ablation,
    run_phase_heuristic_ablation,
    run_policy_ablation,
)


def test_ablation_alignment(benchmark, runner, reports_dir):
    report = run_experiment(
        benchmark, lambda: run_alignment_ablation(runner), reports_dir
    )
    aligned = report.values["aligned"]
    naive = report.values["naive"]
    assert aligned["hot_rank"] == 1
    assert (naive["hot_share"] or 0.0) < aligned["hot_share"] * 0.75


def test_ablation_phase_heuristic(benchmark, runner, reports_dir):
    report = run_experiment(
        benchmark, lambda: run_phase_heuristic_ablation(runner), reports_dir
    )
    assert (
        report.values["with heuristic"]["top5_hit_rate"]
        > report.values["without"]["top5_hit_rate"]
    )


def test_ablation_multiplex(benchmark, runner, reports_dir):
    report = run_experiment(
        benchmark, lambda: run_multiplex_ablation(runner), reports_dir
    )
    assert report.values["multiplexed"]["found"][0] == "U"


def test_ablation_policy(benchmark, runner, reports_dir):
    report = run_experiment(
        benchmark, lambda: run_policy_ablation(runner), reports_dir
    )
    tops = [tuple(sorted(v["sampled_top3"])) for v in report.values.values()]
    assert len(set(tops)) == 1  # identical top-3 set under every policy
