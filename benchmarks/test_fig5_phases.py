"""E5 — regenerate Figure 5: applu per-array misses over time.

Expected shape (paper section 3.5): a, b and c share one curve and
periodically drop to *zero* misses in a bucket while rsd (and d) remain
active — the phase pattern that motivates the search's zero-miss
retention heuristic.
"""

from benchmarks.conftest import run_experiment
from repro.experiments.fig5 import run_fig5


def test_fig5(benchmark, runner, reports_dir):
    report = run_experiment(benchmark, lambda: run_fig5(runner), reports_dir)

    assert report.values["abc_zero_buckets"] >= 5
    assert report.values["rsd_exceeds_a_buckets"] >= 5
    # a, b, c share "almost exactly the same access pattern".
    import numpy as np

    a = np.array(report.values["series"]["a"], dtype=float)
    b = np.array(report.values["series"]["b"], dtype=float)
    assert np.corrcoef(a, b)[0, 1] > 0.95
