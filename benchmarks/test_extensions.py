"""Extension benches: features beyond the published evaluation.

* sampling skid (imprecise counters, section 2.1's worry),
* search continuation (section 6's proposal),
* profiling behind an L1+L2 hierarchy,
* next-line prefetch robustness.
"""

from benchmarks.conftest import run_experiment
from repro.experiments.extensions import (
    run_continuation,
    run_hierarchy,
    run_prefetch_ablation,
    run_skid_ablation,
)


def test_ext_skid(benchmark, runner, reports_dir):
    report = run_experiment(benchmark, lambda: run_skid_ablation(runner), reports_dir)
    for key, vals in report.values.items():
        if key.startswith("skid_"):
            assert vals["top"] == "U", key  # the dominant object survives
    assert report.values["skid_16"]["max_error"] < 0.05


def test_ext_continuation(benchmark, runner, reports_dir):
    report = run_experiment(benchmark, lambda: run_continuation(runner), reports_dir)
    plain = report.values["single batch (paper)"]
    cont = next(v for k, v in report.values.items() if k.startswith("+"))
    assert len(cont["found"]) > len(plain["found"])
    assert cont["coverage"] >= plain["coverage"]


def test_ext_hierarchy(benchmark, runner, reports_dir):
    report = run_experiment(benchmark, lambda: run_hierarchy(runner), reports_dir)
    single = report.values["single_actual"]
    l2 = report.values["l2_actual"]
    for name, share in list(single.items())[:3]:
        assert abs(l2.get(name, 0.0) - share) < 0.05, name


def test_ext_prefetch(benchmark, runner, reports_dir):
    report = run_experiment(
        benchmark, lambda: run_prefetch_ablation(runner), reports_dir
    )
    assert report.values["misses_with"] < report.values["misses_without"]
    plain = report.values["plain_actual"]
    with_pf = report.values["prefetch_actual"]
    top3 = sorted(plain, key=plain.get, reverse=True)[:3]
    pf_top3 = sorted(with_pf, key=with_pf.get, reverse=True)[:3]
    assert set(top3) == set(pf_top3)


def test_ext_mrc(benchmark, runner, reports_dir):
    from repro.experiments.mrc import run_mrc

    report = run_experiment(benchmark, lambda: run_mrc(runner), reports_dir)
    sizes = report.values["sizes"]
    for app in ("mgrid", "compress", "ijpeg"):
        curve = [report.values[app][s] for s in sizes]
        assert curve == sorted(curve, reverse=True), app
    for s in sizes:
        assert report.values["ijpeg"][s] <= report.values["mgrid"][s]


def test_ext_geometry_sweep(benchmark, runner, reports_dir):
    from repro.experiments.sweep import run_geometry_sweep

    report = run_experiment(
        benchmark, lambda: run_geometry_sweep(runner), reports_dir
    )
    assert report.values["stable_top"]
    assert report.values["reference_top"] == "U"
