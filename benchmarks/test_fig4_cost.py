"""E4 — regenerate Figure 4 and the section 3.3 cost diagnostics.

Expected shape: sampling 1-in-1,000 costs up to ~16-19% (worst on
tomcatv, the highest miss rate); 1-in-10,000 costs <= ~2%; sampling costs
~9,000 cycles/interrupt and the search 26,000-64,000; the search's
interrupt count is fixed by convergence, so at paper scale (tens of
Gcycles) its slowdown amortises far below even 1-in-100,000 sampling —
the "slowdown @ paper scale" row makes that visible at our run lengths.
"""

from benchmarks.conftest import run_experiment
from repro.experiments.fig4 import run_fig4


def test_fig4(benchmark, runner, reports_dir):
    report = run_experiment(benchmark, lambda: run_fig4(runner), reports_dir)

    worst_1k = max(v["sample_1000"]["slowdown"] for v in report.values.values())
    assert 0.05 < worst_1k < 0.35
    for app, vals in report.values.items():
        assert vals["sample_10000"]["slowdown"] < 0.03, app
        assert 8_800 <= vals["sample_1000"]["cycles_per_interrupt"] <= 11_000, app
        assert 20_000 <= vals["search"]["cycles_per_interrupt"] <= 64_000, app
        assert (
            vals["search"]["slowdown_paper_scale"]
            < vals["sample_10000"]["slowdown_paper_scale"]
        ), app
