"""E1 — regenerate Table 1: actual vs sampling vs 10-way search.

Expected shape (paper section 3.1): both techniques rank the objects they
find in actual-miss order except among near-ties (<~2% apart); sampling
estimates track actual shares except for tomcatv's resonant RX/RY split;
the search reports up to n-1 = 9 objects with estimation-pass shares
close to actual.
"""

from benchmarks.conftest import run_experiment
from repro.experiments.table1 import run_table1


def test_table1(benchmark, runner, reports_dir):
    report = run_experiment(benchmark, lambda: run_table1(runner), reports_dir)

    # Shape assertions (loose: quick sanity, the test suite has more).
    for app, vals in report.values.items():
        if app != "tomcatv":
            # tomcatv's fixed-period sampling resonates on RX/RY exactly
            # as in the paper's own Table 1 (RX 37.1 vs RY 17.6, Y ranked
            # 7th at 0.2%); the resonance bench covers it.
            assert vals["sample_rank_agreement"] >= 0.95, app
        assert vals["search_rank_agreement"] >= 0.75, app
    rxry = (
        report.values["tomcatv"]["sample"].get("RX", 0)
        + report.values["tomcatv"]["sample"].get("RY", 0)
    )
    assert abs(rxry - 0.45) < 0.03  # the pair's combined share stays right
    # The dominant object of each skewed app is found by both techniques.
    for app, top in (
        ("su2cor", "U"),
        ("compress", "orig_text_buffer"),
        ("ijpeg", "0x141020000"),
    ):
        assert top in report.values[app]["sample"]
        assert top in report.values[app]["search"]
