"""E2 — regenerate Table 2: two-way vs ten-way search.

Expected shape (paper section 3.4): the 2-way search identifies only the
top one or two objects per application; on su2cor its changing access
patterns make the 2-way search miss U entirely (the paper reports the
2-way find, R, estimated at 0.0%); the 10-way search is unaffected.
"""

from benchmarks.conftest import run_experiment
from repro.experiments.table2 import run_table2


def test_table2(benchmark, runner, reports_dir):
    report = run_experiment(benchmark, lambda: run_table2(runner), reports_dir)

    for app, vals in report.values.items():
        assert 1 <= len(vals["two_way_found"]) <= 3, app
        assert len(vals["ten_way_found"]) >= len(vals["two_way_found"]), app
    # The su2cor failure must reproduce.
    assert "U" not in report.values["su2cor"]["two_way_found"]
    assert "U" in report.values["su2cor"]["ten_way_found"]
