"""E9 — micro-benchmarks of the simulation substrate's hot paths.

These are classic pytest-benchmark timings (many rounds) rather than
one-shot experiment regenerations: cache access throughput, vectorised
counter windowing, object-map lookup, attribution, and the search's
data structures.
"""

import numpy as np
import pytest

from repro.cache import CacheConfig, DirectMappedCache, SetAssociativeCache
from repro.datastructs.heap_pq import MaxPriorityQueue
from repro.datastructs.rbtree import RedBlackTree
from repro.hpm.counters import RegionCounterBank
from repro.memory import AddressSpace, ObjectMap, SymbolTable
from repro.util.intervals import Interval

N_REFS = 200_000
rng = np.random.default_rng(0)
ADDRS = (rng.integers(0, 1 << 22, N_REFS).astype(np.uint64) & ~np.uint64(7)) + np.uint64(
    0x1_2000_0000
)


@pytest.fixture
def object_map():
    aspace = AddressSpace()
    symbols = SymbolTable(aspace.data)
    for i in range(64):
        symbols.declare(f"v{i}", 64 * 1024)
    omap = ObjectMap()
    omap.add_globals(symbols.objects)
    omap.freeze_globals()
    return omap


class TestCacheThroughput:
    def test_set_assoc_access(self, benchmark):
        cache = SetAssociativeCache(CacheConfig(size=256 * 1024, assoc=4))

        def run():
            cache.access(ADDRS)

        benchmark(run)

    def test_direct_mapped_vectorised(self, benchmark):
        cache = DirectMappedCache(CacheConfig(size=256 * 1024, assoc=1))

        def run():
            cache.access(ADDRS)

        benchmark(run)

    def test_set_assoc_with_budget(self, benchmark):
        cache = SetAssociativeCache(CacheConfig(size=256 * 1024, assoc=4))

        def run():
            pos = 0
            while pos < N_REFS:
                res = cache.access(ADDRS[pos:], miss_budget=10_000)
                pos += res.consumed

        benchmark(run)


class TestCounterWindowing:
    def test_ten_region_bank(self, benchmark):
        bank = RegionCounterBank(10)
        base = 0x1_2000_0000
        bank.program(
            [Interval(base + i * (1 << 18), base + (i + 1) * (1 << 18)) for i in range(10)]
        )
        benchmark(lambda: bank.observe(ADDRS))


class TestObjectMap:
    def test_point_lookup(self, benchmark, object_map):
        probes = [0x1_2000_0000 + int(x) for x in rng.integers(0, 1 << 22, 1000)]

        def run():
            for addr in probes:
                object_map.lookup(addr)

        benchmark(run)

    def test_bulk_attribution(self, benchmark, object_map):
        snap = object_map.snapshot()
        benchmark(lambda: snap.count_by_object(ADDRS))


class TestSearchStructures:
    def test_rbtree_insert_delete(self, benchmark):
        keys = rng.integers(0, 1 << 30, 2000).tolist()

        def run():
            tree = RedBlackTree()
            for k in keys:
                tree.insert(int(k), None)
            for k in keys[::2]:
                if k in tree:
                    tree.delete(int(k))

        benchmark(run)

    def test_priority_queue_churn(self, benchmark):
        priorities = rng.random(2000).tolist()

        def run():
            q = MaxPriorityQueue()
            for i, p in enumerate(priorities):
                q.push(i, p)
            for _ in range(1000):
                item, pr = q.pop()
                q.push(item, pr * 0.5)

        benchmark(run)
