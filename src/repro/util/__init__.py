"""Small shared utilities: interval math, units, formatting, RNG, primes."""

from repro.util.intervals import (
    Interval,
    intersect,
    intersects,
    interval_len,
    is_empty,
    span,
    subtract,
    union_len,
)
from repro.util.units import (
    GiB,
    KiB,
    MiB,
    fmt_bytes,
    fmt_count,
    fmt_cycles,
    fmt_pct,
    parse_size,
)
from repro.util.format import Table, render_table
from repro.util.rng import make_rng, spawn_rng
from repro.util.primes import is_prime, next_prime, prev_prime

__all__ = [
    "Interval",
    "intersect",
    "intersects",
    "interval_len",
    "is_empty",
    "span",
    "subtract",
    "union_len",
    "KiB",
    "MiB",
    "GiB",
    "fmt_bytes",
    "fmt_count",
    "fmt_cycles",
    "fmt_pct",
    "parse_size",
    "Table",
    "render_table",
    "make_rng",
    "spawn_rng",
    "is_prime",
    "next_prime",
    "prev_prime",
]
