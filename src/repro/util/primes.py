"""Primality helpers for resonance-free sampling periods.

Section 3.1 of the paper shows that a sampling period that is commensurate
with an application's access pattern aliases badly (tomcatv's RX/RY), and
that basing the period on a nearby prime (50,111 instead of 50,000) removes
the resonance. These helpers find those nearby primes.
"""

from __future__ import annotations


def is_prime(n: int) -> bool:
    """Deterministic primality test, fine for the <= 2**40 periods we use."""
    if n < 2:
        return False
    if n < 4:
        return True
    if n % 2 == 0 or n % 3 == 0:
        return False
    f = 5
    while f * f <= n:
        if n % f == 0 or n % (f + 2) == 0:
            return False
        f += 6
    return True


def next_prime(n: int) -> int:
    """Smallest prime strictly greater than ``n``."""
    candidate = max(2, n + 1)
    while not is_prime(candidate):
        candidate += 1
    return candidate


def prev_prime(n: int) -> int:
    """Largest prime strictly smaller than ``n`` (raises below 3)."""
    if n <= 2:
        raise ValueError("no prime below 2")
    candidate = n - 1
    while candidate >= 2 and not is_prime(candidate):
        candidate -= 1
    return candidate
