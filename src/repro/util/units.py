"""Byte/cycle/percentage units and human-readable formatting."""

from __future__ import annotations

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

_SIZE_SUFFIXES = {
    "b": 1,
    "k": KiB,
    "kb": KiB,
    "kib": KiB,
    "m": MiB,
    "mb": MiB,
    "mib": MiB,
    "g": GiB,
    "gb": GiB,
    "gib": GiB,
}


def parse_size(text: str | int) -> int:
    """Parse ``"256K"``, ``"2MiB"``, ``"64"`` (bytes) or a plain int into bytes."""
    if isinstance(text, int):
        return text
    s = text.strip().lower().replace(" ", "")
    idx = len(s)
    while idx > 0 and not s[idx - 1].isdigit():
        idx -= 1
    number, suffix = s[:idx], s[idx:]
    if not number:
        raise ValueError(f"cannot parse size {text!r}")
    mult = _SIZE_SUFFIXES.get(suffix, None) if suffix else 1
    if mult is None:
        raise ValueError(f"unknown size suffix {suffix!r} in {text!r}")
    return int(number) * mult


def fmt_bytes(n: int) -> str:
    """Render a byte count with a binary suffix (``"2.0MiB"``)."""
    for limit, suffix in ((GiB, "GiB"), (MiB, "MiB"), (KiB, "KiB")):
        if n >= limit:
            value = n / limit
            if value == int(value):
                return f"{int(value)}{suffix}"
            return f"{value:.1f}{suffix}"
    return f"{n}B"


def fmt_count(n: int | float) -> str:
    """Render a large count with thousands separators (``"1,234,567"``)."""
    return f"{int(n):,}"


def fmt_cycles(n: int | float) -> str:
    """Render a virtual-cycle count (``"1.2Mcyc"`` style)."""
    n = float(n)
    for limit, suffix in ((1e9, "Gcyc"), (1e6, "Mcyc"), (1e3, "Kcyc")):
        if abs(n) >= limit:
            return f"{n / limit:.2f}{suffix}"
    return f"{n:.0f}cyc"


def fmt_pct(fraction: float, digits: int = 1) -> str:
    """Render a fraction in [0, 1] as a percentage (``fmt_pct(0.225) == "22.5"``)."""
    return f"{100.0 * fraction:.{digits}f}"
