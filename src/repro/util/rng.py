"""Deterministic random-number plumbing.

All stochastic behaviour in the library (pseudo-random sampling periods,
randomised workload details, the random replacement policy) flows through
NumPy ``Generator`` objects created here, so every experiment is exactly
reproducible from its seed.
"""

from __future__ import annotations

import numpy as np

DEFAULT_SEED = 0xB0CC5  # "Buck" — arbitrary but fixed.


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Create a seeded generator; ``None`` falls back to the library default."""
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


def spawn_rng(rng: np.random.Generator, key: str) -> np.random.Generator:
    """Derive an independent child generator from ``rng`` and a string key.

    Hashing the key into the seed sequence keeps sibling components
    (e.g. two workloads in one experiment) statistically independent while
    remaining deterministic.
    """
    digest = np.frombuffer(key.encode("utf-8"), dtype=np.uint8)
    salt = int(digest.sum()) * 2654435761 % (2**31)
    child_seed = int(rng.integers(0, 2**31)) ^ salt
    return np.random.default_rng(child_seed)
