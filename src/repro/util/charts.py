"""Plain-text charts for the figure reports.

The paper's Figures 3 and 4 are grouped bar charts on a logarithmic
y-axis; Figure 5 is a line chart of misses over time. These renderers
draw serviceable ASCII versions so the benchmark reports and the CLI can
show the *shape* of each figure, not just its numbers, without any
plotting dependency.
"""

from __future__ import annotations

import math
from typing import Sequence

_BLOCKS = " ▏▎▍▌▋▊▉█"
_SPARK = " ▁▂▃▄▅▆▇█"


def _bar(fraction: float, width: int) -> str:
    """A horizontal bar filling ``fraction`` of ``width`` character cells.

    Any strictly positive fraction renders at least a sliver, so tiny
    values remain distinguishable from zero."""
    fraction = min(max(fraction, 0.0), 1.0)
    whole, part = divmod(fraction * width, 1)
    bar = "█" * int(whole)
    if part > 0 and len(bar) < width:
        bar += _BLOCKS[max(1, int(part * (len(_BLOCKS) - 1)))]
    return bar.ljust(width)


def hbar_chart(
    groups: Sequence[str],
    series: dict[str, Sequence[float]],
    width: int = 40,
    log: bool = False,
    unit: str = "",
    title: str | None = None,
) -> str:
    """Grouped horizontal bar chart.

    ``groups`` labels the outer rows (applications); ``series`` maps a
    series name (configuration) to one value per group. ``log=True``
    scales bar lengths logarithmically, as the paper's Figures 3/4 do —
    a floor of 1/1000 of the maximum keeps tiny-but-nonzero values
    visible.
    """
    values = [v for vals in series.values() for v in vals if v > 0]
    if not values:
        return (title or "") + "\n(no nonzero values)"
    peak = max(values)
    floor = peak / 10_000.0
    label_width = max(len(name) for name in series)

    def scaled(v: float) -> float:
        if v <= 0:
            return 0.0
        if not log:
            return v / peak
        clamped = max(v, floor * 1.5)
        return (math.log10(clamped) - math.log10(floor)) / (
            math.log10(peak) - math.log10(floor) or 1.0
        )

    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    for gi, group in enumerate(groups):
        lines.append(f"{group}:")
        for name, vals in series.items():
            v = vals[gi] if gi < len(vals) else 0.0
            lines.append(
                f"  {name.ljust(label_width)} |{_bar(scaled(v), width)}| "
                f"{v:.4g}{unit}"
            )
    if log:
        lines.append(f"(log scale; full bar = {peak:.4g}{unit})")
    return "\n".join(lines)


def sparkline(
    values: Sequence[float], width: int = 64, peak: float | None = None
) -> str:
    """A one-row miniature line chart (for Figure-5-style series).

    ``peak`` fixes the full-height value; by default the row's own
    maximum (rows in :func:`line_chart` share the chart-wide peak so
    their heights are comparable)."""
    if len(values) == 0:
        return ""
    vals = list(values)
    if len(vals) > width:
        stride = len(vals) / width
        vals = [vals[int(i * stride)] for i in range(width)]
    peak = max(peak if peak is not None else max(vals), 1e-12)
    return "".join(
        _SPARK[min(len(_SPARK) - 1, int(v / peak * (len(_SPARK) - 1)))]
        for v in vals
    )


def line_chart(
    series: dict[str, Sequence[float]],
    width: int = 64,
    title: str | None = None,
) -> str:
    """Stacked sparklines, one per named series, sharing a global scale."""
    peak = max((max(vals, default=0) for vals in series.values()), default=0)
    label_width = max((len(name) for name in series), default=0)
    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    for name, vals in series.items():
        lines.append(
            f"{name.ljust(label_width)} "
            f"|{sparkline(vals, width, peak=peak or None)}|"
        )
    return "\n".join(lines)
