"""Half-open integer interval arithmetic.

Addresses throughout the library are modelled as half-open intervals
``[lo, hi)`` over non-negative integers, the same convention the paper's
base/bounds registers use: an address ``a`` is inside iff ``lo <= a < hi``.
Keeping a single convention here avoids a whole class of off-by-one bugs
in region splitting and counter windowing.
"""

from __future__ import annotations

from typing import NamedTuple


class Interval(NamedTuple):
    """A half-open interval ``[lo, hi)``.

    ``hi < lo`` is rejected by :func:`make`; ``hi == lo`` denotes the empty
    interval. ``NamedTuple`` keeps these hashable and cheap — the search
    allocates many per iteration.
    """

    lo: int
    hi: int

    def __contains__(self, addr: int) -> bool:  # pragma: no cover - trivial
        return self.lo <= addr < self.hi


def make(lo: int, hi: int) -> Interval:
    """Construct an interval, validating ``lo <= hi``."""
    if lo > hi:
        raise ValueError(f"interval lo={lo:#x} > hi={hi:#x}")
    return Interval(int(lo), int(hi))


def is_empty(iv: Interval) -> bool:
    """True iff the interval contains no addresses."""
    return iv.hi <= iv.lo


def interval_len(iv: Interval) -> int:
    """Number of addresses in the interval (0 for empty)."""
    return max(0, iv.hi - iv.lo)


def intersect(a: Interval, b: Interval) -> Interval:
    """Intersection of two intervals (possibly empty, normalised to lo==hi)."""
    lo = max(a.lo, b.lo)
    hi = min(a.hi, b.hi)
    if hi < lo:
        hi = lo
    return Interval(lo, hi)


def intersects(a: Interval, b: Interval) -> bool:
    """True iff the two intervals share at least one address."""
    return max(a.lo, b.lo) < min(a.hi, b.hi)


def span(intervals: list[Interval]) -> Interval:
    """Smallest interval covering every non-empty input interval."""
    live = [iv for iv in intervals if not is_empty(iv)]
    if not live:
        return Interval(0, 0)
    return Interval(min(iv.lo for iv in live), max(iv.hi for iv in live))


def subtract(a: Interval, b: Interval) -> list[Interval]:
    """``a`` minus ``b``: zero, one or two non-empty intervals."""
    if is_empty(a):
        return []
    if not intersects(a, b):
        return [a]
    out: list[Interval] = []
    left = Interval(a.lo, min(a.hi, b.lo))
    right = Interval(max(a.lo, b.hi), a.hi)
    if not is_empty(left):
        out.append(left)
    if not is_empty(right):
        out.append(right)
    return out


def union_len(intervals: list[Interval]) -> int:
    """Total number of addresses covered by the union of the intervals."""
    live = sorted((iv for iv in intervals if not is_empty(iv)), key=lambda iv: iv.lo)
    total = 0
    cur_lo = cur_hi = None
    for iv in live:
        if cur_hi is None or iv.lo > cur_hi:
            if cur_hi is not None:
                total += cur_hi - cur_lo
            cur_lo, cur_hi = iv.lo, iv.hi
        else:
            cur_hi = max(cur_hi, iv.hi)
    if cur_hi is not None:
        total += cur_hi - cur_lo
    return total
