"""Plain-text table rendering for experiment reports.

The benchmark harness prints paper-style tables (Table 1, Table 2, the
figure series) to stdout; this module renders them without any third-party
dependency so reports survive in captured pytest output and CI logs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


@dataclass
class Table:
    """An accumulating ASCII table.

    >>> t = Table(["app", "object", "%"])
    >>> t.add_row(["tomcatv", "RY", "22.5"])
    >>> print(render_table(t))  # doctest: +ELLIPSIS
    app     | object | %...
    """

    headers: list[str]
    rows: list[list[str]] = field(default_factory=list)
    title: str | None = None

    def add_row(self, row: Sequence[object]) -> None:
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append([str(cell) for cell in row])

    def add_separator(self) -> None:
        """Insert a horizontal rule between row groups (per-application blocks)."""
        self.rows.append(["---"] * len(self.headers))


def render_table(table: Table) -> str:
    """Render the table with column alignment and optional title."""
    widths = [len(h) for h in table.headers]
    for row in table.rows:
        for i, cell in enumerate(row):
            if cell != "---":
                widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    rule = "-+-".join("-" * w for w in widths)
    lines: list[str] = []
    if table.title:
        lines.append(table.title)
        lines.append("=" * len(table.title))
    lines.append(fmt_row(table.headers))
    lines.append(rule)
    for row in table.rows:
        if all(cell == "---" for cell in row):
            lines.append(rule)
        else:
            lines.append(fmt_row(row))
    return "\n".join(lines)
