"""Instrumentation-tool interface: how measurement code plugs into the engine.

A tool is the in-simulation measurement runtime — the paper's sampling or
search code. The engine delivers it interrupts (miss-counter overflow or
timer); the tool returns a :class:`HandlerResult` describing what its
handler did: virtual cycles executed, memory references its own data
structures incurred (these go through the simulated cache, producing the
perturbation measured in Figure 3), and any counter re-arming or timer
requests.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.cache.base import CacheModel
from repro.hpm.interrupts import CostModel
from repro.hpm.monitor import PerformanceMonitor
from repro.memory.address_space import AddressSpace
from repro.memory.allocator import HeapAllocator
from repro.memory.object_map import ObjectMap
from repro.memory.objects import MemoryObject, ObjectKind


@dataclass
class ToolContext:
    """Everything a tool may touch when attached to a simulation."""

    object_map: ObjectMap
    monitor: PerformanceMonitor
    cost_model: CostModel
    address_space: AddressSpace
    cache: CacheModel
    #: Allocator for the instrumentation's own data (separate segment so
    #: app and instrumentation misses can be distinguished).
    instr_allocator: HeapAllocator = None  # set by the engine

    def alloc_instr(self, name: str, size: int) -> MemoryObject:
        """Allocate instrumentation-owned memory in the instr segment."""
        obj = self.instr_allocator.malloc(size, name=name)
        # Re-kind as INSTR for reporting; the allocator returns HEAP kind.
        return MemoryObject(
            name=obj.name if name is None else name,
            base=obj.base,
            size=obj.size,
            kind=ObjectKind.INSTR,
        )


@dataclass
class HandlerResult:
    """What one interrupt-handler invocation did."""

    #: Virtual cycles the handler itself executed (delivery cost is added
    #: by the engine from the cost model).
    handler_cycles: int = 0
    #: Memory references the handler performed, run through the cache by
    #: the engine (the perturbation channel).
    mem_refs: np.ndarray | None = None
    #: Re-arm the overflow counter after this many further misses
    #: (None leaves it disarmed).
    rearm_overflow: int | None = None
    #: Request the next timer interrupt this many cycles in the future
    #: (None leaves the timer disarmed).
    next_timer_in: int | None = None
    #: The tool is finished; the engine stops delivering it interrupts.
    done: bool = False


class InstrumentationTool(abc.ABC):
    """Base class for in-simulation measurement tools."""

    name: str = "tool"

    def __init__(self) -> None:
        self.ctx: ToolContext | None = None

    @abc.abstractmethod
    def attach(self, ctx: ToolContext) -> HandlerResult:
        """Called once before the run; returns initial arming requests."""

    def on_miss_overflow(self, cycle: int) -> HandlerResult:
        """Overflow-interrupt handler; default: nothing."""
        return HandlerResult()

    def on_timer(self, cycle: int) -> HandlerResult:
        """Timer-interrupt handler; default: nothing."""
        return HandlerResult()

    def on_run_end(self, cycle: int) -> None:
        """Called when the application's reference stream is exhausted."""

    @abc.abstractmethod
    def profile(self):
        """The tool's measured result as a
        :class:`repro.core.profile.DataProfile`."""


@dataclass
class _RefPattern:
    """Helper for generating a tool's own memory references cheaply."""

    base: int
    size: int

    def touch(self, offsets: list[int]) -> np.ndarray:
        """Addresses at the given byte offsets into the structure."""
        arr = np.asarray(offsets, dtype=np.uint64)
        return np.uint64(self.base) + (arr % np.uint64(max(self.size, 1)))

    def binary_search_path(self, key_hint: int, n_probes: int, stride: int = 16) -> np.ndarray:
        """Addresses a binary search over this array would touch.

        Models probing a sorted array of ``stride``-byte entries: the probe
        sequence follows the usual halving pattern, perturbed by the key so
        different lookups touch different cache lines.
        """
        n_entries = max(1, self.size // stride)
        lo, hi = 0, n_entries
        offsets: list[int] = []
        for _ in range(max(1, n_probes)):
            mid = (lo + hi) // 2
            offsets.append(mid * stride)
            if hi - lo <= 1:
                break
            if (key_hint >> len(offsets)) & 1:
                lo = mid
            else:
                hi = mid
        return self.touch(offsets)
