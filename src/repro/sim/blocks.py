"""Reference blocks: the unit of work flowing from workloads to the engine.

A block is a chunk of consecutive memory references produced by a
workload's kernel — addresses plus the virtual-cycle cost of executing
them. Blocks are NumPy-native so the cache models and counter windows can
stay vectorised; per the hpc-parallel guides, no per-reference Python
objects ever exist.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import WorkloadError


@dataclass
class ReferenceBlock:
    """A chunk of memory references with a cycle cost.

    ``cycles_per_ref`` models the non-memory instructions executed around
    each reference (address arithmetic, floating point, branches): the
    paper's simulator counts those via basic-block instrumentation, and the
    per-application values are what produce its very different
    misses-per-million-cycles rates (mgrid 6,827 vs ijpeg 144).
    """

    addrs: np.ndarray
    cycles_per_ref: float = 4.0
    writes: np.ndarray | None = None
    #: Optional phase label, used by analysis/Figure-5 style reporting.
    label: str = ""
    #: Extra one-off cycles charged when the block completes (loop setup,
    #: function call overhead).
    extra_cycles: int = 0

    def __post_init__(self) -> None:
        self.addrs = np.ascontiguousarray(self.addrs, dtype=np.uint64)
        if self.cycles_per_ref <= 0:
            raise WorkloadError("cycles_per_ref must be positive")
        if self.writes is not None:
            self.writes = np.ascontiguousarray(self.writes, dtype=bool)
            if len(self.writes) != len(self.addrs):
                raise WorkloadError("writes mask length mismatch")

    def __len__(self) -> int:
        return len(self.addrs)

    @property
    def total_cycles(self) -> int:
        return int(len(self.addrs) * self.cycles_per_ref) + self.extra_cycles

    def cycles_for(self, n_refs: int) -> int:
        """Cycles consumed by the first ``n_refs`` references."""
        cycles = int(n_refs * self.cycles_per_ref)
        if n_refs >= len(self.addrs):
            cycles += self.extra_cycles
        return cycles

    def refs_within_cycles(self, budget: int) -> int:
        """Max whole references executable within ``budget`` cycles (>=1)."""
        return max(1, int(budget / self.cycles_per_ref))


def concat_blocks(blocks: list[ReferenceBlock]) -> ReferenceBlock:
    """Concatenate blocks (same cycles_per_ref) into one larger block."""
    if not blocks:
        raise WorkloadError("cannot concatenate zero blocks")
    cpr = blocks[0].cycles_per_ref
    if any(abs(b.cycles_per_ref - cpr) > 1e-12 for b in blocks):
        raise WorkloadError("cannot concatenate blocks with differing cycle costs")
    addrs = np.concatenate([b.addrs for b in blocks])
    writes = None
    if any(b.writes is not None for b in blocks):
        writes = np.concatenate(
            [
                b.writes if b.writes is not None else np.zeros(len(b), dtype=bool)
                for b in blocks
            ]
        )
    return ReferenceBlock(
        addrs=addrs,
        cycles_per_ref=cpr,
        writes=writes,
        label=blocks[0].label,
        extra_cycles=sum(b.extra_cycles for b in blocks),
    )
