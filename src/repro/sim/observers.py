"""Streaming observers: live, per-chunk visibility into a running session.

The Figure-5 miss series used to be the engine's only mid-run signal.
Observers generalise it: any number of :class:`SessionObserver` instances
can ride along on a :class:`~repro.sim.session.SimulationSession`,
receiving a :class:`ChunkEvent` after every simulated chunk of
application references and an :class:`InterruptEvent` after every
interrupt delivery. Unlike :class:`~repro.sim.instrumentation.InstrumentationTool`
they live *outside* the simulated machine — they cost zero virtual
cycles, perturb nothing, and are therefore also excluded from snapshots
(re-attach them when restoring).

Built-in observers cover the metrics the experiments and CLI consume:

* :class:`MissRateObserver` — miss-rate over virtual time, bucketed;
* :class:`InterruptRateObserver` — interrupt arrival rate and cost mix;
* :class:`ToolCycleShareObserver` — per-tool share of instrumentation
  cycles as the run progresses (the multi-tool Figure-4 view);
* :class:`ProgressObserver` — reference/interrupt totals for drivers
  that report liveness (e.g. the parallel runner's checkpoint cadence).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.hpm.interrupts import InterruptKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.session import SimulationSession

__all__ = [
    "ChunkEvent",
    "InterruptEvent",
    "SessionObserver",
    "MissRateObserver",
    "InterruptRateObserver",
    "ToolCycleShareObserver",
    "ProgressObserver",
    "CoreRateObserver",
]


@dataclass(frozen=True)
class ChunkEvent:
    """One simulated chunk of application references."""

    cycle: int                 #: virtual time after the chunk
    app_refs: int              #: references simulated in this chunk
    n_misses: int              #: application misses in this chunk
    miss_addrs: np.ndarray     #: the missing addresses (app refs only)
    block_label: str           #: label of the originating ReferenceBlock
    total_app_refs: int        #: cumulative references so far
    #: Which core produced the chunk (0 in single-core sessions).
    core_id: int = 0
    #: Shared-level misses in this chunk classified as co-runner-induced
    #: (always 0 in single-core sessions — there are no co-runners).
    n_contention: int = 0


@dataclass(frozen=True)
class InterruptEvent:
    """One delivered interrupt, as seen from outside the machine."""

    cycle: int
    kind: InterruptKind
    tool: str
    handler_cycles: int
    delivery_cycles: int
    #: Which core the interrupt was delivered on (0 in single-core runs).
    core_id: int = 0


class SessionObserver:
    """Base class; override any subset of the hooks."""

    def on_attach(self, session: "SimulationSession") -> None:
        """Called when tools attach (before the first chunk)."""

    def on_chunk(self, event: ChunkEvent) -> None:
        """Called after every simulated chunk of application references."""

    def on_interrupt(self, event: InterruptEvent) -> None:
        """Called after every interrupt delivery."""

    def on_finalize(self, session: "SimulationSession") -> None:
        """Called once when the session is finalized."""


class MissRateObserver(SessionObserver):
    """Miss rate over virtual time, bucketed by ``bucket_cycles``.

    Generalises the Figure-5 series to a live metric: each bucket
    accumulates (refs, misses) and :meth:`rates` yields the per-bucket
    miss ratio — the phase-transition view of a run without waiting for
    it to finish.
    """

    def __init__(self, bucket_cycles: int = 1_000_000) -> None:
        if bucket_cycles <= 0:
            raise ValueError("bucket_cycles must be positive")
        self.bucket_cycles = bucket_cycles
        self.refs_by_bucket: dict[int, int] = {}
        self.misses_by_bucket: dict[int, int] = {}

    def on_chunk(self, event: ChunkEvent) -> None:
        bucket = event.cycle // self.bucket_cycles
        self.refs_by_bucket[bucket] = (
            self.refs_by_bucket.get(bucket, 0) + event.app_refs
        )
        self.misses_by_bucket[bucket] = (
            self.misses_by_bucket.get(bucket, 0) + event.n_misses
        )

    def rates(self) -> list[tuple[int, float]]:
        """(bucket index, miss rate) for every bucket with references."""
        out: list[tuple[int, float]] = []
        for bucket in sorted(self.refs_by_bucket):
            refs = self.refs_by_bucket[bucket]
            misses = self.misses_by_bucket.get(bucket, 0)
            out.append((bucket, misses / refs if refs else 0.0))
        return out

    @property
    def total_refs(self) -> int:
        return sum(self.refs_by_bucket.values())

    @property
    def total_misses(self) -> int:
        return sum(self.misses_by_bucket.values())


class InterruptRateObserver(SessionObserver):
    """Interrupt arrival rate and per-kind cycle totals, live."""

    def __init__(self) -> None:
        self.n_by_kind: dict[InterruptKind, int] = {}
        self.cycles_by_kind: dict[InterruptKind, int] = {}
        self.first_cycle: int | None = None
        self.last_cycle: int | None = None

    def on_interrupt(self, event: InterruptEvent) -> None:
        self.n_by_kind[event.kind] = self.n_by_kind.get(event.kind, 0) + 1
        self.cycles_by_kind[event.kind] = (
            self.cycles_by_kind.get(event.kind, 0)
            + event.handler_cycles
            + event.delivery_cycles
        )
        if self.first_cycle is None:
            self.first_cycle = event.cycle
        self.last_cycle = event.cycle

    @property
    def total(self) -> int:
        return sum(self.n_by_kind.values())

    def per_gcycle(self) -> float:
        """Arrival rate over the observed window (section 3.3's unit)."""
        if self.total < 2 or self.first_cycle is None or self.last_cycle is None:
            return 0.0
        span = self.last_cycle - self.first_cycle
        if span <= 0:
            return 0.0
        return self.total / (span / 1e9)


class ToolCycleShareObserver(SessionObserver):
    """Per-tool instrumentation-cycle shares as the run progresses."""

    def __init__(self) -> None:
        self.cycles_by_tool: dict[str, int] = {}
        self.interrupts_by_tool: dict[str, int] = {}

    def on_interrupt(self, event: InterruptEvent) -> None:
        cost = event.handler_cycles + event.delivery_cycles
        self.cycles_by_tool[event.tool] = (
            self.cycles_by_tool.get(event.tool, 0) + cost
        )
        self.interrupts_by_tool[event.tool] = (
            self.interrupts_by_tool.get(event.tool, 0) + 1
        )

    def shares(self) -> dict[str, float]:
        """tool name -> fraction of delivered instrumentation cycles."""
        total = sum(self.cycles_by_tool.values())
        if total == 0:
            return {name: 0.0 for name in self.cycles_by_tool}
        return {
            name: cycles / total
            for name, cycles in sorted(self.cycles_by_tool.items())
        }


class CoreRateObserver(SessionObserver):
    """Per-core miss and contention rates, live.

    One instance can be attached to every core of a
    :class:`~repro.sim.session.MultiCoreSession` (events carry
    ``core_id``); :meth:`rows` yields the per-core table the CLI's live
    multi-core display renders. Works unchanged on single-core sessions
    (everything lands on core 0 with zero contention).
    """

    def __init__(self) -> None:
        self.refs_by_core: dict[int, int] = {}
        self.misses_by_core: dict[int, int] = {}
        self.contention_by_core: dict[int, int] = {}
        self.last_cycle = 0

    def on_chunk(self, event: ChunkEvent) -> None:
        core = event.core_id
        self.refs_by_core[core] = self.refs_by_core.get(core, 0) + event.app_refs
        self.misses_by_core[core] = (
            self.misses_by_core.get(core, 0) + event.n_misses
        )
        self.contention_by_core[core] = (
            self.contention_by_core.get(core, 0) + event.n_contention
        )
        self.last_cycle = max(self.last_cycle, event.cycle)

    def rows(self) -> list[tuple[int, int, float, float]]:
        """(core_id, refs, miss rate, contention share of misses) per core."""
        out: list[tuple[int, int, float, float]] = []
        for core in sorted(self.refs_by_core):
            refs = self.refs_by_core[core]
            misses = self.misses_by_core.get(core, 0)
            contention = self.contention_by_core.get(core, 0)
            out.append(
                (
                    core,
                    refs,
                    misses / refs if refs else 0.0,
                    contention / misses if misses else 0.0,
                )
            )
        return out


class ProgressObserver(SessionObserver):
    """Lightweight liveness counters, with an optional callback.

    ``on_progress(total_app_refs, cycle)`` is invoked at most once per
    ``every_refs`` simulated references — the hook CLI drivers use for
    status lines without touching simulation internals.
    """

    def __init__(
        self,
        every_refs: int = 1 << 20,
        on_progress: Callable[[int, int], None] | None = None,
    ) -> None:
        if every_refs <= 0:
            raise ValueError("every_refs must be positive")
        self.every_refs = every_refs
        self.on_progress = on_progress
        self.app_refs = 0
        self.app_misses = 0
        self.interrupts = 0
        self.last_cycle = 0
        self._next_report = every_refs

    def on_chunk(self, event: ChunkEvent) -> None:
        self.app_refs = event.total_app_refs
        self.app_misses += event.n_misses
        self.last_cycle = event.cycle
        if self.app_refs >= self._next_report:
            if self.on_progress is not None:
                self.on_progress(self.app_refs, event.cycle)
            self._next_report = self.app_refs + self.every_refs

    def on_interrupt(self, event: InterruptEvent) -> None:
        self.interrupts += 1
        self.last_cycle = event.cycle
