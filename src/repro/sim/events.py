"""Run-level statistics collected by the engine."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hpm.interrupts import InterruptLog


@dataclass
class RunStats:
    """Aggregate statistics for one simulated run.

    The paper's overhead metrics are computed from these: Figure 3 uses
    the split between application and instrumentation misses, Figure 4
    uses instrumentation cycles over application cycles ("the applications
    were allowed to execute for the same number of application
    instructions"), and section 3.3's per-interrupt cost and
    interrupts-per-billion-cycles come from the interrupt log.
    """

    app_refs: int = 0
    app_misses: int = 0
    instr_refs: int = 0
    instr_misses: int = 0
    app_cycles: int = 0
    instr_cycles: int = 0
    interrupts: InterruptLog = field(default_factory=InterruptLog)
    #: Instrumentation cycles (delivery + handler) attributed per attached
    #: tool name; empty for uninstrumented runs. Sums to at most
    #: ``instr_cycles`` (attach-time arming is charged to no tool).
    instr_cycles_by_tool: dict[str, int] = field(default_factory=dict)

    @property
    def total_cycles(self) -> int:
        return self.app_cycles + self.instr_cycles

    @property
    def total_misses(self) -> int:
        return self.app_misses + self.instr_misses

    @property
    def slowdown(self) -> float:
        """Fractional slowdown due to instrumentation (Figure 4's metric)."""
        if self.app_cycles == 0:
            return 0.0
        return self.instr_cycles / self.app_cycles

    @property
    def miss_rate_per_mcycle(self) -> float:
        """Application misses per million application cycles (section 3.2)."""
        if self.app_cycles == 0:
            return 0.0
        return self.app_misses / (self.app_cycles / 1e6)

    def miss_increase_vs(self, baseline: "RunStats") -> float:
        """Fractional increase in cache misses relative to an uninstrumented
        run of the same application prefix (Figure 3's metric)."""
        if baseline.total_misses == 0:
            return 0.0
        return (self.total_misses - baseline.total_misses) / baseline.total_misses

    def interrupts_per_gcycle(self) -> float:
        return self.interrupts.per_billion_cycles(self.total_cycles)
