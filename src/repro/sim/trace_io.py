"""Record/replay of reference traces as compressed ``.npz`` archives.

Workloads are deterministic generators, but saving a trace lets an
experiment be re-run against different cache geometries or tools without
regenerating references, and lets external traces (if a user has real
ones) be fed through the same engine.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.errors import TraceError
from repro.sim.blocks import ReferenceBlock

_FORMAT_VERSION = 1


def save_trace(path: str | Path, blocks: list[ReferenceBlock]) -> None:
    """Write blocks to ``path`` as an ``.npz`` archive with a JSON manifest."""
    path = Path(path)
    manifest = {
        "version": _FORMAT_VERSION,
        "blocks": [
            {
                "cycles_per_ref": block.cycles_per_ref,
                "label": block.label,
                "extra_cycles": block.extra_cycles,
                "has_writes": block.writes is not None,
            }
            for block in blocks
        ],
    }
    arrays: dict[str, np.ndarray] = {}
    for i, block in enumerate(blocks):
        arrays[f"addrs_{i}"] = block.addrs
        if block.writes is not None:
            arrays[f"writes_{i}"] = block.writes
    arrays["manifest"] = np.frombuffer(
        json.dumps(manifest).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)


def load_trace(path) -> list[ReferenceBlock]:
    """Read blocks previously written by :func:`save_trace`.

    ``path`` is a filesystem path or a seekable binary file object (the
    compressed-trace importer decompresses ``.npz.gz`` archives into
    memory and loads them from a buffer).
    """
    source = path if hasattr(path, "read") else Path(path)
    path = getattr(path, "name", source)
    try:
        with np.load(source) as archive:
            if "manifest" not in archive:
                raise TraceError(f"{path} has no manifest — not a repro trace")
            manifest = json.loads(bytes(archive["manifest"]).decode("utf-8"))
            if manifest.get("version") != _FORMAT_VERSION:
                raise TraceError(
                    f"{path}: unsupported trace version {manifest.get('version')}"
                )
            blocks: list[ReferenceBlock] = []
            for i, meta in enumerate(manifest["blocks"]):
                writes = archive[f"writes_{i}"] if meta["has_writes"] else None
                blocks.append(
                    ReferenceBlock(
                        addrs=archive[f"addrs_{i}"],
                        cycles_per_ref=meta["cycles_per_ref"],
                        writes=writes,
                        label=meta["label"],
                        extra_cycles=meta["extra_cycles"],
                    )
                )
            return blocks
    except (OSError, ValueError, KeyError) as exc:
        raise TraceError(f"cannot load trace {path}: {exc}") from exc
