"""Virtual cycle clock.

The paper instruments basic blocks "to keep a virtual cycle count for the
execution"; cycle counts "are meant to model RISC processors in general"
with no pipelining or multiple issue. Here the clock is a plain integer
cycle counter advanced by the engine — application references advance it
by the workload's cycles-per-reference, instrumentation advances it by the
cost model's charges — plus a single programmable timer used by the n-way
search to end its sample intervals.
"""

from __future__ import annotations

from repro.errors import SimulationError


class VirtualClock:
    """Monotone virtual time in cycles with one programmable deadline."""

    def __init__(self) -> None:
        self._now = 0
        self._deadline: int | None = None
        #: Cycles spent executing instrumentation (handlers + delivery).
        self.instr_cycles = 0
        #: Cycles spent executing application code.
        self.app_cycles = 0

    @property
    def now(self) -> int:
        return self._now

    def advance_app(self, cycles: int) -> None:
        """Advance time for application execution."""
        if cycles < 0:
            raise SimulationError(f"clock cannot run backwards ({cycles})")
        self._now += cycles
        self.app_cycles += cycles

    def advance_instr(self, cycles: int) -> None:
        """Advance time for instrumentation execution."""
        if cycles < 0:
            raise SimulationError(f"clock cannot run backwards ({cycles})")
        self._now += cycles
        self.instr_cycles += cycles

    # ------------------------------------------------------------------ timer

    def set_deadline(self, cycle: int) -> None:
        """Arm the timer to fire once ``now`` reaches ``cycle``."""
        if cycle <= self._now:
            raise SimulationError(
                f"deadline {cycle} is not in the future (now={self._now})"
            )
        self._deadline = cycle

    def clear_deadline(self) -> None:
        self._deadline = None

    def sync_deadline(self, cycle: int | None) -> None:
        """Program the timer without the future-only check.

        Used by the session's tool dispatcher when multiplexing several
        virtual per-tool deadlines onto this single hardware timer: after
        one tool's handler runs, another tool's deadline may already lie
        in the past and must still be programmed so it fires next.
        """
        self._deadline = cycle

    @property
    def deadline(self) -> int | None:
        return self._deadline

    @property
    def timer_expired(self) -> bool:
        return self._deadline is not None and self._now >= self._deadline

    def cycles_until_deadline(self) -> int | None:
        """Remaining cycles before the timer fires (None when disarmed)."""
        if self._deadline is None:
            return None
        return max(0, self._deadline - self._now)
