"""The simulation engine: drives workload references through the cache,
counters and instrumentation.

This is the reproduction of the paper's experimental apparatus: load/store
streams advance a virtual cycle clock and a simulated set-associative
cache; hardware counters observe the resulting misses; when a counter
overflows or the timer expires, the instrumentation tool's handler runs
*inside* the simulation — its cycles are charged to the clock and its own
memory references go through the same cache, so both overhead (Figure 4)
and perturbation (Figure 3) are measurable.

The run loop itself lives in :class:`~repro.sim.session.SimulationSession`
(which is exact about interrupt points: the cache's ``miss_budget`` stops
processing at the precise reference whose miss overflows the counter, so
the monitor's last-miss-address register holds the true triggering
address). :class:`Simulator` is the thin configuration-holding driver:
it builds the cache/monitor pair for its configured geometry, opens a
session, steps it to completion and finalizes. Callers that need
pause/resume, multiple tools or live observers use
:meth:`Simulator.start_session` and drive the session themselves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.cache import CacheConfig, CacheStats, GroundTruth, make_cache
from repro.errors import SimulationError
from repro.hpm.interrupts import CostModel
from repro.hpm.monitor import PerformanceMonitor
from repro.sim.events import RunStats
from repro.sim.instrumentation import InstrumentationTool
from repro.sim.observers import SessionObserver
from repro.sim.session import SimulationSession

if TYPE_CHECKING:  # pragma: no cover
    from repro.cache.attribution import MissSeries
    from repro.cache.contention import ContentionProfile
    from repro.core.profile import DataProfile
    from repro.workloads.base import Workload
    from repro.workloads.compile import CompiledStream


@dataclass
class RunResult:
    """Everything measured during one simulated run."""

    workload_name: str
    cache_config: CacheConfig
    stats: RunStats
    actual: "DataProfile | None" = None
    measured: "DataProfile | None" = None
    series: "MissSeries | None" = None
    ground_truth: GroundTruth | None = None
    #: The primary (first-attached) tool — the single-tool API surface.
    tool: InstrumentationTool | None = None
    #: Every attached tool in attach order (None for uninstrumented runs).
    tools: "list[InstrumentationTool] | None" = None
    #: The monitored cache's ledger, frozen at stream end (before tool
    #: teardown). For decorated stacks its ``mechanism`` dict carries the
    #: outermost mechanism's event counts.
    cache_stats: CacheStats | None = None
    #: (label, frozen stats) per cache component, outer first — one entry
    #: per pipeline level and mechanism decorator (None for models that
    #: expose no component ledgers).
    component_stats: "list[tuple[str, CacheStats]] | None" = None
    #: Which core produced this result (0 for single-core runs and for
    #: the aggregate result of a multi-core run).
    core_id: int = 0
    #: Shared-level miss classification (self vs co-runner-induced) for
    #: this core — only set on results from a multi-core session.
    contention: "ContentionProfile | None" = None
    #: Per-core results, in core order — only set on the aggregate
    #: result a :class:`~repro.sim.session.MultiCoreSession` finalizes.
    cores: "list[RunResult] | None" = None

    @property
    def total_cycles(self) -> int:
        return self.stats.total_cycles


class Simulator:
    """Configurable simulator tying the substrate packages together.

    Typical use::

        sim = Simulator(CacheConfig(size="256K", assoc=4))
        result = sim.run(workloads.tomcatv(), tool=SamplingProfiler(period=4096))
        print(result.measured.table())
    """

    def __init__(
        self,
        cache_config: CacheConfig | None = None,
        n_region_counters: int = 10,
        multiplexed_counters: bool = False,
        cost_model: CostModel | None = None,
        seed: int | None = None,
        chunk_size: int = 1 << 15,
        l1_config: CacheConfig | None = None,
        prefetch_next_line: bool = False,
        backend: str | None = None,
        compile_streams: bool = False,
        stream_cache_dir: "str | None" = None,
    ) -> None:
        if chunk_size <= 0:
            raise SimulationError("chunk_size must be positive")
        self.cache_config = cache_config or CacheConfig()
        self.l1_config = l1_config
        self.prefetch_next_line = prefetch_next_line
        #: Cache kernel backend override; None defers to the config's
        #: ``backend`` field. Backends are bit-identical (speed knob only).
        self.backend = backend
        #: Lower workloads to precompiled reference streams before
        #: running (see repro.workloads.compile) — bit-identical, much
        #: faster for uninstrumented runs. Workloads that cannot be
        #: compiled (``compiled_stream_safe=False``) silently fall back
        #: to their generator.
        self.compile_streams = compile_streams
        #: Experiments cache root for compiled streams (streams live in
        #: ``<dir>/streams``); None recompiles per run.
        self.stream_cache_dir = stream_cache_dir
        self.n_region_counters = n_region_counters
        self.multiplexed_counters = multiplexed_counters
        self.cost_model = cost_model or CostModel()
        self.seed = seed
        self.chunk_size = chunk_size

    # --------------------------------------------------------------- session

    def start_session(
        self,
        workload: "Workload",
        tool: "InstrumentationTool | Iterable[InstrumentationTool] | None" = None,
        ground_truth: bool = True,
        series_bucket_cycles: int | None = None,
        max_refs: int | None = None,
        observers: Sequence[SessionObserver] = (),
        compiled: "CompiledStream | None" = None,
    ) -> SimulationSession:
        """Open a :class:`SimulationSession` for this simulator's geometry.

        Builds a fresh cache and monitor, prepares the workload (resetting
        it first if a previous run consumed its stream) and attaches the
        given tool(s). The caller drives the session — ``step()`` /
        ``run()`` / ``snapshot()`` — and calls ``finalize()`` for the
        :class:`RunResult`. ``compiled`` (or the simulator-level
        ``compile_streams`` flag) substitutes a precompiled reference
        stream for the workload generator.
        """
        if compiled is None and self.compile_streams:
            compiled = self._compile(workload)
        cache = make_cache(
            self.cache_config,
            seed=self.seed,
            l1_config=self.l1_config,
            prefetch_next_line=self.prefetch_next_line,
            backend=self.backend,
        )
        monitor = PerformanceMonitor(
            self.n_region_counters,
            multiplexed=self.multiplexed_counters,
        )
        session = SimulationSession.start(
            workload,
            cache=cache,
            monitor=monitor,
            cost_model=self.cost_model,
            chunk_size=self.chunk_size,
            ground_truth=ground_truth,
            series_bucket_cycles=series_bucket_cycles,
            max_refs=max_refs,
            observers=observers,
            compiled=compiled,
        )
        session.attach(tool)
        return session

    def _compile(self, workload: "Workload"):
        """Compiled stream for ``workload``, or None when it opts out."""
        from repro.workloads.compile import (
            StreamCompileError,
            compiled_stream_for,
        )

        try:
            return compiled_stream_for(workload, self.stream_cache_dir)
        except StreamCompileError:
            return None

    # ------------------------------------------------------------------- run

    def run(
        self,
        workload: "Workload",
        tool: "InstrumentationTool | Iterable[InstrumentationTool] | None" = None,
        ground_truth: bool = True,
        series_bucket_cycles: int | None = None,
        max_refs: int | None = None,
        observers: Sequence[SessionObserver] = (),
        compiled: "CompiledStream | None" = None,
    ) -> RunResult:
        """Simulate ``workload`` (optionally under ``tool``) to completion.

        ``ground_truth`` enables the exact per-object attribution (the
        "Actual" column — zero simulated cost, it lives below the
        architectural level). ``series_bucket_cycles`` additionally records
        the Figure-5 time series. ``max_refs`` truncates the run after that
        many application references, which is how the paper compares
        instrumented and uninstrumented runs over "the same number of
        application instructions". ``tool`` may be a single tool or an
        iterable of tools sharing the run (see DESIGN.md section 8 for the
        arbitration rules).
        """
        session = self.start_session(
            workload,
            tool=tool,
            ground_truth=ground_truth,
            series_bucket_cycles=series_bucket_cycles,
            max_refs=max_refs,
            observers=observers,
            compiled=compiled,
        )
        session.run()
        return session.finalize()
