"""The simulation engine: drives workload references through the cache,
counters and instrumentation.

This is the reproduction of the paper's experimental apparatus: load/store
streams advance a virtual cycle clock and a simulated set-associative
cache; hardware counters observe the resulting misses; when a counter
overflows or the timer expires, the instrumentation tool's handler runs
*inside* the simulation — its cycles are charged to the clock and its own
memory references go through the same cache, so both overhead (Figure 4)
and perturbation (Figure 3) are measurable.

The engine is exact about interrupt points: the cache's ``miss_budget``
stops processing at the precise reference whose miss overflows the
counter, so the monitor's last-miss-address register holds the true
triggering address when the sampling handler reads it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.cache import CacheConfig, GroundTruth, make_cache
from repro.cache.base import CacheModel
from repro.errors import SimulationError
from repro.hpm.interrupts import CostModel, InterruptKind, InterruptRecord
from repro.hpm.monitor import PerformanceMonitor
from repro.memory.allocator import HeapAllocator
from repro.sim.clock import VirtualClock
from repro.sim.events import RunStats
from repro.sim.instrumentation import HandlerResult, InstrumentationTool, ToolContext

if TYPE_CHECKING:  # pragma: no cover
    from repro.cache.attribution import MissSeries
    from repro.core.profile import DataProfile
    from repro.workloads.base import Workload


@dataclass
class RunResult:
    """Everything measured during one simulated run."""

    workload_name: str
    cache_config: CacheConfig
    stats: RunStats
    actual: "DataProfile | None" = None
    measured: "DataProfile | None" = None
    series: "MissSeries | None" = None
    ground_truth: GroundTruth | None = None
    tool: InstrumentationTool | None = None

    @property
    def total_cycles(self) -> int:
        return self.stats.total_cycles


class Simulator:
    """Configurable simulator tying the substrate packages together.

    Typical use::

        sim = Simulator(CacheConfig(size="256K", assoc=4))
        result = sim.run(workloads.tomcatv(), tool=SamplingProfiler(period=4096))
        print(result.measured.table())
    """

    def __init__(
        self,
        cache_config: CacheConfig | None = None,
        n_region_counters: int = 10,
        multiplexed_counters: bool = False,
        cost_model: CostModel | None = None,
        seed: int | None = None,
        chunk_size: int = 1 << 15,
        l1_config: CacheConfig | None = None,
        prefetch_next_line: bool = False,
        backend: str | None = None,
    ) -> None:
        if chunk_size <= 0:
            raise SimulationError("chunk_size must be positive")
        self.cache_config = cache_config or CacheConfig()
        self.l1_config = l1_config
        self.prefetch_next_line = prefetch_next_line
        #: Cache kernel backend override; None defers to the config's
        #: ``backend`` field. Backends are bit-identical (speed knob only).
        self.backend = backend
        self.n_region_counters = n_region_counters
        self.multiplexed_counters = multiplexed_counters
        self.cost_model = cost_model or CostModel()
        self.seed = seed
        self.chunk_size = chunk_size

    # ------------------------------------------------------------------- run

    def run(
        self,
        workload: "Workload",
        tool: InstrumentationTool | None = None,
        ground_truth: bool = True,
        series_bucket_cycles: int | None = None,
        max_refs: int | None = None,
    ) -> RunResult:
        """Simulate ``workload`` (optionally under ``tool``) to completion.

        ``ground_truth`` enables the exact per-object attribution (the
        "Actual" column — zero simulated cost, it lives below the
        architectural level). ``series_bucket_cycles`` additionally records
        the Figure-5 time series. ``max_refs`` truncates the run after that
        many application references, which is how the paper compares
        instrumented and uninstrumented runs over "the same number of
        application instructions".
        """
        workload.prepare()
        cache = make_cache(
            self.cache_config,
            seed=self.seed,
            l1_config=self.l1_config,
            prefetch_next_line=self.prefetch_next_line,
            backend=self.backend,
        )
        monitor = PerformanceMonitor(
            self.n_region_counters,
            multiplexed=self.multiplexed_counters,
        )
        clock = VirtualClock()
        stats = RunStats()
        gt: GroundTruth | None = None
        series = None
        if ground_truth:
            gt = GroundTruth(workload.object_map)
            if series_bucket_cycles is not None:
                series = gt.enable_series(series_bucket_cycles)

        tool_active = False
        if tool is not None:
            instr_alloc = HeapAllocator(workload.address_space.instr)
            ctx = ToolContext(
                object_map=workload.object_map,
                monitor=monitor,
                cost_model=self.cost_model,
                address_space=workload.address_space,
                cache=cache,
                instr_allocator=instr_alloc,
            )
            tool.ctx = ctx
            init = tool.attach(ctx)
            tool_active = not init.done
            self._apply_handler_result(init, monitor, clock, cache, stats)

        cycle_carry = 0.0
        refs_left = max_refs if max_refs is not None else None

        for block in workload.blocks():
            addrs = block.addrs
            n = len(addrs)
            pos = 0
            while pos < n:
                if refs_left is not None and refs_left <= 0:
                    break
                cap = min(n - pos, self.chunk_size)
                if refs_left is not None:
                    cap = min(cap, refs_left)
                until_deadline = clock.cycles_until_deadline()
                if until_deadline is not None and tool_active:
                    if until_deadline <= 0:
                        tool_active = self._deliver(
                            InterruptKind.TIMER, tool, monitor, clock, cache, stats
                        )
                        continue
                    cap = min(cap, block.refs_within_cycles(until_deadline))
                miss_budget = monitor.misses_until_overflow() if tool_active else None
                if miss_budget is not None and miss_budget <= 0:
                    # Overflow already pending (e.g. from handler pollution).
                    tool_active = self._deliver(
                        InterruptKind.MISS_OVERFLOW, tool, monitor, clock, cache, stats
                    )
                    continue

                chunk = addrs[pos : pos + cap]
                chunk_writes = (
                    block.writes[pos : pos + cap] if block.writes is not None else None
                )
                result = cache.access(
                    chunk, miss_budget=miss_budget, tag="app", writes=chunk_writes
                )
                consumed = result.consumed
                miss_addrs = chunk[:consumed][result.miss_mask]
                monitor.observe(miss_addrs)
                if gt is not None:
                    gt.observe(miss_addrs, cycle=clock.now)

                exact = consumed * block.cycles_per_ref + cycle_carry
                cycles = int(exact)
                cycle_carry = exact - cycles
                clock.advance_app(cycles)
                stats.app_refs += consumed
                stats.app_misses += result.n_misses
                pos += consumed
                if refs_left is not None:
                    refs_left -= consumed

                if tool_active and monitor.overflow_pending:
                    tool_active = self._deliver(
                        InterruptKind.MISS_OVERFLOW, tool, monitor, clock, cache, stats
                    )
                if tool_active and clock.timer_expired:
                    tool_active = self._deliver(
                        InterruptKind.TIMER, tool, monitor, clock, cache, stats
                    )
            if pos >= n:
                # Fixed costs (loop control, non-memory arithmetic) are
                # charged only when the block actually completed; a
                # max_refs truncation mid-block must not inflate the
                # "same number of application instructions" comparisons.
                clock.advance_app(block.extra_cycles)
            if refs_left is not None and refs_left <= 0:
                break

        # Freeze the totals at stream end: tool teardown below must not be
        # able to drift what this run reports as instrumentation activity.
        cache_stats = cache.stats.snapshot()
        if tool is not None:
            tool.on_run_end(clock.now)

        stats.app_cycles = clock.app_cycles
        stats.instr_cycles = clock.instr_cycles
        stats.instr_refs = cache_stats.accesses_by_tag.get("instr", 0)
        stats.instr_misses = cache_stats.misses_by_tag.get("instr", 0)

        return RunResult(
            workload_name=workload.name,
            cache_config=self.cache_config,
            stats=stats,
            actual=gt.profile() if gt is not None else None,
            measured=tool.profile() if tool is not None else None,
            series=series,
            ground_truth=gt,
            tool=tool,
        )

    # ------------------------------------------------------------ interrupts

    def _deliver(
        self,
        kind: InterruptKind,
        tool: InstrumentationTool,
        monitor: PerformanceMonitor,
        clock: VirtualClock,
        cache: CacheModel,
        stats: RunStats,
    ) -> bool:
        """Deliver one interrupt; returns whether the tool remains active."""
        if kind is InterruptKind.MISS_OVERFLOW:
            monitor.overflow_counter.disarm()
            result = tool.on_miss_overflow(clock.now)
        else:
            clock.clear_deadline()
            result = tool.on_timer(clock.now)

        delivery = self.cost_model.interrupt_delivery_cycles
        clock.advance_instr(delivery + result.handler_cycles)
        stats.interrupts.append(
            InterruptRecord(
                kind=kind,
                cycle=clock.now,
                handler_cycles=result.handler_cycles,
                delivery_cycles=delivery,
            )
        )
        self._apply_handler_result(result, monitor, clock, cache, stats)
        return not result.done

    def _apply_handler_result(
        self,
        result: HandlerResult,
        monitor: PerformanceMonitor,
        clock: VirtualClock,
        cache: CacheModel,
        stats: RunStats,
    ) -> None:
        """Run handler memory refs through the cache and apply arming."""
        if result.mem_refs is not None and len(result.mem_refs):
            refs = np.ascontiguousarray(result.mem_refs, dtype=np.uint64)
            access = cache.access(refs, tag="instr")
            # Instrumentation misses pollute the hardware counters exactly
            # as they would on real hardware; ground truth (below the
            # architecture) excludes them by construction.
            instr_misses = refs[access.miss_mask]
            monitor.observe(instr_misses)
        if result.rearm_overflow is not None:
            monitor.overflow_counter.arm_overflow(result.rearm_overflow)
        if result.next_timer_in is not None:
            clock.set_deadline(clock.now + max(1, result.next_timer_in))
