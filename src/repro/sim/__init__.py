"""The simulation engine: virtual time, reference streams, instrumentation.

Mirrors the paper's experimental apparatus (section 3): applications run
as streams of load/store references through the simulated cache while a
virtual cycle counter advances; instrumentation code "runs inside the
simulation, so it can be timed using the virtual cycle counter, and it can
affect the cache, making it possible to study perturbation of the
results".
"""

from repro.sim.clock import VirtualClock
from repro.sim.blocks import ReferenceBlock
from repro.sim.events import RunStats
from repro.sim.instrumentation import HandlerResult, InstrumentationTool, ToolContext
from repro.sim.observers import (
    ChunkEvent,
    CoreRateObserver,
    InterruptEvent,
    InterruptRateObserver,
    MissRateObserver,
    ProgressObserver,
    SessionObserver,
    ToolCycleShareObserver,
)
from repro.sim.session import (
    SNAPSHOT_VERSION,
    CoreContext,
    MultiCoreSession,
    SessionSnapshot,
    SimulationSession,
    ToolDispatcher,
)
from repro.sim.engine import RunResult, Simulator
from repro.sim.trace_io import load_trace, save_trace

__all__ = [
    "VirtualClock",
    "ReferenceBlock",
    "RunStats",
    "HandlerResult",
    "InstrumentationTool",
    "ToolContext",
    "ChunkEvent",
    "InterruptEvent",
    "SessionObserver",
    "MissRateObserver",
    "InterruptRateObserver",
    "ToolCycleShareObserver",
    "ProgressObserver",
    "CoreRateObserver",
    "SNAPSHOT_VERSION",
    "SessionSnapshot",
    "SimulationSession",
    "MultiCoreSession",
    "CoreContext",
    "ToolDispatcher",
    "RunResult",
    "Simulator",
    "save_trace",
    "load_trace",
]
