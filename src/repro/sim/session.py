"""Resumable simulation sessions: the stateful core of the engine.

The paper's apparatus interleaves three things — application execution,
counter-overflow/timer interrupts, and the instrumentation code that runs
*inside* the simulation (§3). :class:`SimulationSession` makes that
interleaving an explicit object with a stepwise lifecycle::

    session = SimulationSession.start(workload, cache=..., monitor=...)
    session.attach([sampler, search])      # tools share the counter bank
    while session.step():                  # one chunk or one interrupt
        ...
    result = session.finalize()

Because every piece of run state (cache, monitor, clock, stats, ground
truth, tool state, stream cursor) lives on the session rather than in
engine locals, a run can be paused, serialised with :meth:`snapshot` and
continued later — on another process or after a crash — with
:meth:`restore`, producing results bit-identical to an uninterrupted
run. :class:`~repro.sim.engine.Simulator` is now a thin driver over this
class.

Multi-tool arbitration (§2.2's counter-resource trade-offs):

* the single *overflow counter* is exclusively owned — the first tool to
  arm it keeps it until it stops re-arming; a second tool arming while
  it is owned raises :class:`~repro.errors.CounterError` (there is only
  one such counter to give);
* the single hardware *timer* is time-multiplexed: the session keeps one
  virtual deadline per tool and programs the clock with the earliest,
  so a sampling profiler (overflow-driven) and an n-way search
  (timer-driven) can share one monitor;
* the region counter bank is shared cooperatively — tools program the
  counters they were told to use (``n`` for the search), exactly as
  §3.4's resource accounting assumes.

Snapshot invariants: the reference stream itself is *not* serialised —
workload generators are deterministic functions of their seed, so
:meth:`restore` rebuilds the workload and fast-forwards its block stream
to the recorded cursor, replaying allocation/free side effects into the
fresh object map. ``reprolint`` rule RPL501 cross-checks the snapshot
payload against :class:`SessionSnapshot`'s fields so the two cannot
drift apart silently.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

import numpy as np

from repro import sanitize
from repro.cache import GroundTruth
from repro.cache.base import CacheModel
from repro.errors import CounterError, SimulationError
from repro.hpm.interrupts import CostModel, InterruptKind, InterruptRecord
from repro.hpm.monitor import PerformanceMonitor
from repro.memory.allocator import HeapAllocator
from repro.sim.clock import VirtualClock
from repro.sim.events import RunStats
from repro.sim.instrumentation import HandlerResult, InstrumentationTool, ToolContext
from repro.sim.observers import ChunkEvent, InterruptEvent, SessionObserver

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.blocks import ReferenceBlock
    from repro.workloads.base import Workload
    from repro.workloads.compile import CompiledStream

#: Version stamp embedded in every snapshot; bumped whenever the payload
#: layout changes so stale checkpoint files are refused, not misread.
#: v2: the pickled ``cache`` entry may now be a component stack
#: (Pipeline / mechanism decorators over leaf models — see
#: repro.cache.components) rather than a bare single- or two-level model.
#: v3: kernel snapshot tuples carry the RNG draw count (replay-auditable
#: eviction streams — see repro.sanitize.rng), so v2 checkpoints no
#: longer unpack and are refused by version.
#: v4: the payload gains a ``cores`` entry — None for single-core
#: sessions, a list of per-core :class:`CoreState` records for
#: :class:`MultiCoreSession` snapshots (the shared LLC is pickled once
#: through the per-core cache graphs; unpickling restores the shared
#: identity). v3 checkpoints are refused by version.
SNAPSHOT_VERSION = 4


# ------------------------------------------------------------- dispatcher

class ToolDispatcher:
    """Arbitrates interrupt delivery and counter resources among tools.

    One dispatcher per session. Tools are indexed in attach order, which
    is also the tie-break order for simultaneous timer deadlines, so
    delivery is deterministic regardless of how many tools are attached.
    """

    def __init__(self) -> None:
        self.tools: list[InstrumentationTool] = []
        #: Whether each tool still receives interrupts (False after done).
        self.active: list[bool] = []
        #: Per-tool virtual timer deadline (None = that tool's timer off).
        self.deadlines: list[int | None] = []
        #: Index of the tool currently owning the overflow counter.
        self.overflow_owner: int | None = None
        #: Instrumentation cycles (delivery + handler) charged per tool.
        self.cycles_by_tool: dict[str, int] = {}

    def add(self, tool: InstrumentationTool) -> int:
        self.tools.append(tool)
        self.active.append(True)
        self.deadlines.append(None)
        self.cycles_by_tool.setdefault(tool.name, 0)
        return len(self.tools) - 1

    @property
    def any_active(self) -> bool:
        return any(self.active)

    def earliest_deadline(self) -> tuple[int, int] | None:
        """(deadline, tool index) of the next timer firing, or None."""
        best: tuple[int, int] | None = None
        for idx, deadline in enumerate(self.deadlines):
            if deadline is None or not self.active[idx]:
                continue
            if best is None or deadline < best[0]:
                best = (deadline, idx)
        return best

    def set_deadline(self, idx: int, cycle: int) -> None:
        self.deadlines[idx] = cycle

    def clear_deadline(self, idx: int) -> None:
        self.deadlines[idx] = None

    def claim_overflow(self, idx: int) -> None:
        """Grant the overflow counter to ``idx`` (exclusive, §2.2)."""
        if self.overflow_owner is not None and self.overflow_owner != idx:
            owner = self.tools[self.overflow_owner].name
            raise CounterError(
                f"overflow-counter contention: tool "
                f"{self.tools[idx].name!r} armed the overflow counter "
                f"while {owner!r} owns it (one conditional overflow "
                "counter exists; see DESIGN.md section 8)"
            )
        self.overflow_owner = idx

    def deactivate(self, idx: int, monitor: PerformanceMonitor) -> None:
        """Tool finished: stop delivery and release its counter resources."""
        self.active[idx] = False
        self.deadlines[idx] = None
        if self.overflow_owner == idx:
            monitor.overflow_counter.disarm()
            self.overflow_owner = None

    def charge(self, idx: int, cycles: int) -> None:
        name = self.tools[idx].name
        self.cycles_by_tool[name] = self.cycles_by_tool.get(name, 0) + cycles


# --------------------------------------------------------------- snapshot

@dataclass
class CoreState:
    """Per-core slice of a :class:`MultiCoreSession` snapshot.

    Field names deliberately mirror :class:`SessionSnapshot` where the
    meaning matches, so :meth:`SimulationSession._resume` can rebuild a
    per-core session from either record. ``cache`` is the core's
    pipeline over the shared level; pickling every core's pipeline in
    one :class:`SessionSnapshot` graph serialises the shared LLC leaf
    exactly once and restores it as one shared object.
    """

    core_id: int
    address_offset: int
    workload_name: str
    blocks_fetched: int
    block_pos: int | None
    cycle_carry: float
    refs_left: int | None
    chunk_size: int
    cost_model: CostModel
    clock: VirtualClock
    stats: RunStats
    cache: CacheModel
    monitor: PerformanceMonitor
    ground_truth: GroundTruth | None
    dispatcher: "ToolDispatcher | None"
    #: Interleaver weight: chunks this core advances per round-robin turn.
    ratio: int
    #: Accumulated per-object contention attribution (qualified names).
    self_by_object: dict[str, int]
    contention_by_object: dict[str, int]
    unattributed_self: int
    unattributed_contention: int


@dataclass
class SessionSnapshot:
    """Serialized mid-run state of one :class:`SimulationSession`.

    Everything needed to continue the run is here *except* the reference
    stream: ``blocks_fetched``/``block_pos`` are the cursor into the
    workload's deterministic block generator, which :meth:`SimulationSession.restore`
    replays. The live objects (cache, monitor, clock, ground truth,
    dispatcher with its tools) are pickled as one graph so shared
    references — e.g. a tool context pointing at the session's cache —
    survive the round trip intact.
    """

    version: int
    workload_name: str
    blocks_fetched: int
    block_pos: int | None
    cycle_carry: float
    refs_left: int | None
    chunk_size: int
    cost_model: CostModel
    clock: VirtualClock
    stats: RunStats
    cache: CacheModel
    monitor: PerformanceMonitor
    ground_truth: GroundTruth | None
    dispatcher: ToolDispatcher | None
    #: Per-core state for multi-core snapshots; None for single-core
    #: sessions. When set, the top-level fields hold core 0's objects
    #: (so the payload stays uniformly typed) and restore goes through
    #: :meth:`MultiCoreSession.restore`, which reads only this list.
    cores: "list[CoreState] | None" = None

    # ------------------------------------------------------------ storage

    def save(self, path: str | os.PathLike[str]) -> Path:
        """Write the snapshot to ``path`` atomically (rename-into-place)."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=target.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(self, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, target)
        except BaseException:
            Path(tmp).unlink(missing_ok=True)
            raise
        return target

    @staticmethod
    def load(path: str | os.PathLike[str]) -> "SessionSnapshot":
        """Read a snapshot back; raises SimulationError on bad contents."""
        with Path(path).open("rb") as fh:
            loaded = pickle.load(fh)
        if not isinstance(loaded, SessionSnapshot):
            raise SimulationError(f"{path} does not contain a SessionSnapshot")
        if loaded.version != SNAPSHOT_VERSION:
            raise SimulationError(
                f"snapshot version {loaded.version} incompatible with "
                f"current format {SNAPSHOT_VERSION}"
            )
        return loaded


# ---------------------------------------------------------------- session

class SimulationSession:
    """One in-progress simulated run, stepwise and serialisable."""

    def __init__(
        self,
        workload: "Workload",
        *,
        cache: CacheModel,
        monitor: PerformanceMonitor,
        clock: VirtualClock | None = None,
        stats: RunStats | None = None,
        cost_model: CostModel | None = None,
        chunk_size: int = 1 << 15,
        ground_truth: GroundTruth | None = None,
        max_refs: int | None = None,
        observers: Sequence[SessionObserver] = (),
        core_id: int = 0,
    ) -> None:
        if chunk_size <= 0:
            raise SimulationError("chunk_size must be positive")
        self.workload = workload
        self.cache = cache
        #: Which core this session models (0 in single-core runs); stamped
        #: on observer events so one observer can ride every core of a
        #: :class:`MultiCoreSession`.
        self.core_id = core_id
        #: The core's :class:`~repro.cache.components.SharedLevelPort`
        #: when this session is one core of a multi-core run (set by
        #: :class:`MultiCoreSession`); used to surface per-chunk
        #: contention counts on :class:`ChunkEvent`.
        self._shared_port = None
        self.monitor = monitor
        self.clock = clock if clock is not None else VirtualClock()
        self.stats = stats if stats is not None else RunStats()
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.chunk_size = chunk_size
        self.ground_truth = ground_truth
        #: Observers are transient by design: they are not serialised in
        #: snapshots and must be re-attached after restore.
        self.observers: list[SessionObserver] = list(observers)
        self.dispatcher: ToolDispatcher | None = None

        self._blocks: Iterator["ReferenceBlock"] | None = None
        self._compiled: "CompiledStream | None" = None
        self._block: "ReferenceBlock | None" = None
        self._blocks_fetched = 0
        self._pos = 0
        self._cycle_carry = 0.0
        self._refs_left = max_refs if max_refs is not None else None
        self._exhausted = False
        self._finalized = False
        self._shared_ctx: ToolContext | None = None

    # ------------------------------------------------------------ creation

    @classmethod
    def start(
        cls,
        workload: "Workload",
        *,
        cache: CacheModel,
        monitor: PerformanceMonitor,
        cost_model: CostModel | None = None,
        chunk_size: int = 1 << 15,
        ground_truth: bool = True,
        series_bucket_cycles: int | None = None,
        max_refs: int | None = None,
        observers: Sequence[SessionObserver] = (),
        compiled: "CompiledStream | None" = None,
        core_id: int = 0,
    ) -> "SimulationSession":
        """Begin a fresh run: prepare the workload and open its stream.

        A workload whose stream was already consumed by an earlier run is
        reset first, so back-to-back runs over one instance are
        deterministic (each sees a freshly built substrate).

        ``compiled`` substitutes a precompiled copy of the workload's
        reference stream (see :mod:`repro.workloads.compile`) for the
        generator: the session verifies its fingerprint against the live
        workload, then reads blocks from the frozen arrays. The workload
        is still prepared (ground truth and tools need its object map)
        but its generator never runs, and — when nothing needs per-chunk
        interleaving — :meth:`run` switches to a bulk path.
        """
        if workload.consumed:
            workload.reset()
        workload.prepare()
        if compiled is not None:
            cls._check_compiled(workload, compiled)
        gt: GroundTruth | None = None
        if ground_truth:
            gt = GroundTruth(workload.object_map)
            if series_bucket_cycles is not None:
                gt.enable_series(series_bucket_cycles)
        session = cls(
            workload,
            cache=cache,
            monitor=monitor,
            cost_model=cost_model,
            chunk_size=chunk_size,
            ground_truth=gt,
            max_refs=max_refs,
            observers=observers,
            core_id=core_id,
        )
        if compiled is not None:
            session._compiled = compiled
            session._blocks = compiled.iter_blocks()
        else:
            session._blocks = workload.blocks()
        return session

    @staticmethod
    def _check_compiled(workload: "Workload", compiled: "CompiledStream") -> None:
        """Refuse a compiled stream that does not match the live workload."""
        from repro.workloads.compile import stream_fingerprint

        if compiled.workload_name != workload.name:
            raise SimulationError(
                f"compiled stream is for workload "
                f"{compiled.workload_name!r}, got {workload.name!r}"
            )
        expected = stream_fingerprint(workload)
        if compiled.fingerprint != expected:
            raise SimulationError(
                f"compiled stream fingerprint {compiled.fingerprint[:12]}… "
                f"does not match this workload/code version "
                f"({expected[:12]}…); recompile the stream"
            )

    # -------------------------------------------------------------- attach

    def attach(
        self, tools: "InstrumentationTool | Iterable[InstrumentationTool] | None"
    ) -> None:
        """Attach instrumentation tools (in delivery-priority order).

        Each tool gets the shared :class:`ToolContext` (one monitor, one
        cache, one instrumentation-segment allocator) and its ``attach``
        arming requests are applied through the dispatcher's arbitration
        rules. Attaching after the run has started is an error — the
        paper's tools install themselves before the application runs.
        """
        if tools is None:
            return
        if isinstance(tools, InstrumentationTool):
            tools = [tools]
        tools = list(tools)
        if not tools:
            return
        if self.stats.app_refs > 0 or self._blocks_fetched > 0:
            raise SimulationError("tools must attach before the run starts")
        if self.dispatcher is None:
            self.dispatcher = ToolDispatcher()
        if self._shared_ctx is None:
            instr_alloc = HeapAllocator(self.workload.address_space.instr)
            self._shared_ctx = ToolContext(
                object_map=self.workload.object_map,
                monitor=self.monitor,
                cost_model=self.cost_model,
                address_space=self.workload.address_space,
                cache=self.cache,
                instr_allocator=instr_alloc,
            )
        for observer in self.observers:
            observer.on_attach(self)
        for tool in tools:
            idx = self.dispatcher.add(tool)
            tool.ctx = self._shared_ctx
            init = tool.attach(self._shared_ctx)
            self._apply_handler_result(idx, init, account=False)

    def add_observer(self, observer: SessionObserver) -> None:
        self.observers.append(observer)

    # ------------------------------------------------------------- running

    @property
    def finished(self) -> bool:
        """True once the stream is exhausted or ``max_refs`` was reached."""
        return self._exhausted or (
            self._refs_left is not None and self._refs_left <= 0
        )

    def step(self) -> bool:
        """Advance by one unit — one cache chunk or one interrupt delivery.

        Returns False once the application stream is done (after which
        :meth:`finalize` produces the :class:`~repro.sim.engine.RunResult`).
        """
        if self._finalized:
            raise SimulationError("session already finalized")
        # --- stream cursor bookkeeping -------------------------------
        # Mirrors the monolithic loop exactly: a completed block charges
        # its fixed extra_cycles *before* the max_refs cut is evaluated,
        # and a mid-block cut never charges them; the next block is only
        # fetched (running generator side effects like heap churn) when
        # the run is actually going to execute it.
        while True:
            if self._block is not None and self._pos >= len(self._block.addrs):
                self.clock.advance_app(self._block.extra_cycles)
                self._block = None
            if self._refs_left is not None and self._refs_left <= 0:
                return False
            if self._block is None:
                if self._blocks is None:
                    raise SimulationError(
                        "session has no open stream (use start/restore)"
                    )
                try:
                    self._block = next(self._blocks)
                except StopIteration:
                    self._exhausted = True
                    return False
                self._blocks_fetched += 1
                self._pos = 0
                continue
            break
        self._process_chunk()
        return True

    def run(
        self,
        max_steps: int | None = None,
        checkpoint_every_refs: int | None = None,
        on_checkpoint=None,
    ) -> bool:
        """Drive :meth:`step` until done (or for ``max_steps`` units).

        ``checkpoint_every_refs`` invokes ``on_checkpoint(snapshot)``
        each time that many further application references have been
        simulated — the hook :class:`~repro.experiments.parallel.ParallelRunner`
        uses to persist worker progress. Returns True when the run is
        complete.

        A virgin session over a compiled stream with nothing observing
        individual chunks (no tools, no observers, no max_refs, no
        ground-truth series, no checkpointing) runs through the bulk
        fused path instead of stepping — bit-identical results, far
        fewer Python-level iterations (DESIGN.md section 9).
        """
        if (
            max_steps is None
            and checkpoint_every_refs is None
            and self._fused_ready()
        ):
            self._run_fused()
            return True
        steps = 0
        next_ckpt = (
            self.stats.app_refs + checkpoint_every_refs
            if checkpoint_every_refs
            else None
        )
        while max_steps is None or steps < max_steps:
            if not self.step():
                return True
            steps += 1
            if next_ckpt is not None and self.stats.app_refs >= next_ckpt:
                on_checkpoint(self.snapshot())
                next_ckpt = self.stats.app_refs + checkpoint_every_refs
        return self.finished

    # ----------------------------------------------------------- fused path

    def _fused_ready(self) -> bool:
        """Whether the bulk compiled-stream path would be observably
        identical to stepping: nothing may depend on per-chunk
        interleaving (interrupts, observers, series timestamps, ref
        budgets) and the session must not have started yet."""
        return (
            self._compiled is not None
            and not self._finalized
            and not self._exhausted
            and self._blocks_fetched == 0
            and self._block is None
            and self._refs_left is None
            and self.dispatcher is None
            and not self.observers
            and self.stats.app_refs == 0
            and (self.ground_truth is None or self.ground_truth.series is None)
        )

    def _chunk_invariant_kernels(self) -> bool:
        """True when every cache level's results are independent of how
        the reference stream is partitioned into ``access`` calls.

        The one dependence is RANDOM replacement: the kernels' shared
        eviction pool refills are keyed on chunk length, so re-chunking
        changes the eviction stream. LRU/FIFO kernels are pure functions
        of the reference order. Mechanism-decorated stacks are invariant
        even under RANDOM: their scalar path refills the pool only when
        it runs empty, so draws depend on the eviction count alone.
        """
        from repro.cache.policies import ReplacementPolicy

        if self.cache.config.mechanisms:
            return True
        configs = [self.cache.config]
        l1 = getattr(self.cache, "l1_config", None)
        if l1 is not None:
            configs.append(l1)
        return all(c.policy is not ReplacementPolicy.RANDOM for c in configs)

    def _run_fused(self) -> None:
        """Drive the whole compiled stream through the cache in bulk.

        Bit-identity with the stepped path needs two things replayed
        exactly: RANDOM-policy chunk boundaries (see
        :meth:`_chunk_invariant_kernels`) and the float cycle-carry
        sequence, which does not telescope across chunk splits for
        non-dyadic ``cycles_per_ref`` — so the carries are recomputed
        per generator-path chunk in a cheap scalar loop even though the
        cache saw the references in bulk.
        """
        compiled = self._compiled
        assert compiled is not None
        invariant = self._chunk_invariant_kernels()
        chunk_size = self.chunk_size
        for addrs, writes, pieces in compiled.fused_groups(invariant):
            if invariant:
                self._fused_access(addrs, writes)
            else:
                for lo in range(0, len(addrs), chunk_size):
                    hi = lo + chunk_size
                    self._fused_access(
                        addrs[lo:hi],
                        writes[lo:hi] if writes is not None else None,
                    )
            carry = self._cycle_carry
            cycles = 0
            for n_refs, cycles_per_ref, extra_cycles in pieces:
                pos = 0
                while pos < n_refs:
                    take = min(chunk_size, n_refs - pos)
                    exact = take * cycles_per_ref + carry
                    whole = int(exact)
                    carry = exact - whole
                    cycles += whole
                    pos += take
                cycles += extra_cycles
            self._cycle_carry = carry
            self.clock.advance_app(cycles)
        self._blocks_fetched = len(compiled.blocks)
        self._blocks = iter(())
        self._exhausted = True

    def _fused_access(
        self, addrs: np.ndarray, writes: np.ndarray | None
    ) -> None:
        result = self.cache.access(addrs, miss_budget=None, tag="app", writes=writes)
        miss_addrs = addrs[result.miss_mask]
        self.monitor.observe(miss_addrs)
        if self.ground_truth is not None:
            self.ground_truth.observe(miss_addrs, cycle=self.clock.now)
        self.stats.app_refs += result.consumed
        self.stats.app_misses += result.n_misses

    # ---------------------------------------------------------- chunk body

    def _process_chunk(self) -> None:
        """Simulate one chunk of application references, or deliver the
        interrupt that precedes it; the exact transcription of the
        original engine loop body (interrupt points must stay precise)."""
        block = self._block
        assert block is not None
        addrs = block.addrs
        n = len(addrs)
        dispatcher = self.dispatcher
        tool_active = dispatcher is not None and dispatcher.any_active

        cap = min(n - self._pos, self.chunk_size)
        if self._refs_left is not None:
            cap = min(cap, self._refs_left)
        until_deadline = self.clock.cycles_until_deadline()
        if until_deadline is not None and tool_active:
            if until_deadline <= 0:
                self._deliver(InterruptKind.TIMER)
                return
            cap = min(cap, block.refs_within_cycles(until_deadline))
        miss_budget = self.monitor.misses_until_overflow() if tool_active else None
        if miss_budget is not None and miss_budget <= 0:
            # Overflow already pending (e.g. from handler pollution).
            self._deliver(InterruptKind.MISS_OVERFLOW)
            return

        chunk = addrs[self._pos : self._pos + cap]
        chunk_writes = (
            block.writes[self._pos : self._pos + cap]
            if block.writes is not None
            else None
        )
        port = self._shared_port
        contention_before = (
            port.contention.contention_misses if port is not None else 0
        )
        result = self.cache.access(
            chunk, miss_budget=miss_budget, tag="app", writes=chunk_writes
        )
        consumed = result.consumed
        miss_addrs = chunk[:consumed][result.miss_mask]
        self.monitor.observe(miss_addrs)
        if self.ground_truth is not None:
            self.ground_truth.observe(miss_addrs, cycle=self.clock.now)

        exact = consumed * block.cycles_per_ref + self._cycle_carry
        cycles = int(exact)
        self._cycle_carry = exact - cycles
        self.clock.advance_app(cycles)
        self.stats.app_refs += consumed
        self.stats.app_misses += result.n_misses
        self._pos += consumed
        if self._refs_left is not None:
            self._refs_left -= consumed

        if self.observers:
            event = ChunkEvent(
                cycle=self.clock.now,
                app_refs=consumed,
                n_misses=result.n_misses,
                miss_addrs=miss_addrs,
                block_label=block.label,
                total_app_refs=self.stats.app_refs,
                core_id=self.core_id,
                n_contention=(
                    port.contention.contention_misses - contention_before
                    if port is not None
                    else 0
                ),
            )
            for observer in self.observers:
                observer.on_chunk(event)

        # Both deliveries can follow one chunk (an overflow handler can run
        # the clock past a pending deadline) — sequential ifs, not elif.
        if dispatcher is not None and dispatcher.any_active and self.monitor.overflow_pending:
            self._deliver(InterruptKind.MISS_OVERFLOW)
        if dispatcher is not None and dispatcher.any_active and self.clock.timer_expired:
            self._deliver(InterruptKind.TIMER)

    # ------------------------------------------------------------ interrupts

    def _deliver(self, kind: InterruptKind) -> None:
        """Deliver one interrupt to the tool the dispatcher selects."""
        dispatcher = self.dispatcher
        assert dispatcher is not None
        if kind is InterruptKind.MISS_OVERFLOW:
            idx = dispatcher.overflow_owner
            if idx is None:
                raise SimulationError(
                    "overflow pending but no tool owns the overflow counter"
                )
            self.monitor.overflow_counter.disarm()
            dispatcher.overflow_owner = None
            tool = dispatcher.tools[idx]
            result = tool.on_miss_overflow(self.clock.now)
        else:
            expired = dispatcher.earliest_deadline()
            if expired is None:
                raise SimulationError("timer expired but no tool deadline set")
            _, idx = expired
            dispatcher.clear_deadline(idx)
            self._sync_clock_deadline()
            tool = dispatcher.tools[idx]
            result = tool.on_timer(self.clock.now)

        delivery = self.cost_model.interrupt_delivery_cycles
        self.clock.advance_instr(delivery + result.handler_cycles)
        dispatcher.charge(idx, delivery + result.handler_cycles)
        self.stats.interrupts.append(
            InterruptRecord(
                kind=kind,
                cycle=self.clock.now,
                handler_cycles=result.handler_cycles,
                delivery_cycles=delivery,
                tool=tool.name,
            )
        )
        self._apply_handler_result(idx, result)
        if self.observers:
            event = InterruptEvent(
                cycle=self.clock.now,
                kind=kind,
                tool=tool.name,
                handler_cycles=result.handler_cycles,
                delivery_cycles=delivery,
                core_id=self.core_id,
            )
            for observer in self.observers:
                observer.on_interrupt(event)

    def _apply_handler_result(
        self, idx: int, result: HandlerResult, account: bool = True
    ) -> None:
        """Run handler memory refs through the cache and apply arming.

        ``account=False`` is the attach path: arming requests apply but
        no interrupt is recorded (nothing was delivered yet).
        """
        del account  # both paths apply identically; kept for call-site intent
        dispatcher = self.dispatcher
        assert dispatcher is not None
        if result.mem_refs is not None and len(result.mem_refs):
            refs = np.ascontiguousarray(result.mem_refs, dtype=np.uint64)
            access = self.cache.access(refs, tag="instr")
            # Instrumentation misses pollute the hardware counters exactly
            # as they would on real hardware; ground truth (below the
            # architecture) excludes them by construction.
            instr_misses = refs[access.miss_mask]
            self.monitor.observe(instr_misses)
        if result.rearm_overflow is not None:
            dispatcher.claim_overflow(idx)
            self.monitor.overflow_counter.arm_overflow(result.rearm_overflow)
        if result.next_timer_in is not None:
            dispatcher.set_deadline(
                idx, self.clock.now + max(1, result.next_timer_in)
            )
        if result.done:
            dispatcher.deactivate(idx, self.monitor)
        self._sync_clock_deadline()

    def _sync_clock_deadline(self) -> None:
        """Program the single hardware timer with the earliest deadline."""
        if self.dispatcher is None:
            return
        earliest = self.dispatcher.earliest_deadline()
        self.clock.sync_deadline(earliest[0] if earliest is not None else None)

    # ------------------------------------------------------------- finalize

    def finalize(self):
        """Close the run and assemble the :class:`~repro.sim.engine.RunResult`."""
        from repro.sim.engine import RunResult

        if self._finalized:
            raise SimulationError("session already finalized")
        self._finalized = True
        # Freeze the totals at stream end: tool teardown below must not be
        # able to drift what this run reports as instrumentation activity.
        cache_stats = self.cache.stats.snapshot()
        ledgers = getattr(self.cache, "component_ledgers", None)
        component_stats = (
            [(name, stats.snapshot()) for name, stats in ledgers()]
            if ledgers is not None
            else None
        )
        tools = self.dispatcher.tools if self.dispatcher is not None else []
        for tool in tools:
            tool.on_run_end(self.clock.now)

        self.stats.app_cycles = self.clock.app_cycles
        self.stats.instr_cycles = self.clock.instr_cycles
        self.stats.instr_refs = cache_stats.accesses_by_tag.get("instr", 0)
        self.stats.instr_misses = cache_stats.misses_by_tag.get("instr", 0)
        if self.dispatcher is not None:
            self.stats.instr_cycles_by_tool = dict(
                self.dispatcher.cycles_by_tool
            )

        for observer in self.observers:
            observer.on_finalize(self)

        gt = self.ground_truth
        primary = tools[0] if tools else None
        return RunResult(
            workload_name=self.workload.name,
            cache_config=self.cache.config,
            stats=self.stats,
            actual=gt.profile() if gt is not None else None,
            measured=primary.profile() if primary is not None else None,
            series=gt.series if gt is not None else None,
            ground_truth=gt,
            tool=primary,
            tools=list(tools) if tools else None,
            cache_stats=cache_stats,
            component_stats=component_stats,
            core_id=self.core_id,
        )

    # ------------------------------------------------------------- snapshot

    def snapshot(self) -> SessionSnapshot:
        """Serialisable copy of the complete mid-run state.

        The returned snapshot is detached (pickle round-trip), so the
        live session can keep running without mutating it. RPL501
        guards this payload against drifting from the dataclass.
        """
        if self._finalized:
            raise SimulationError("cannot snapshot a finalized session")
        if self._exhausted:
            raise SimulationError("cannot snapshot an exhausted session")
        if self._shared_port is not None:
            raise SimulationError(
                "this session is one core of a multi-core run; snapshot "
                "the MultiCoreSession instead (its payload serialises the "
                "shared LLC exactly once)"
            )
        payload = {
            "version": SNAPSHOT_VERSION,
            "workload_name": self.workload.name,
            "blocks_fetched": self._blocks_fetched,
            "block_pos": self._pos if self._block is not None else None,
            "cycle_carry": self._cycle_carry,
            "refs_left": self._refs_left,
            "chunk_size": self.chunk_size,
            "cost_model": self.cost_model,
            "clock": self.clock,
            "stats": self.stats,
            "cache": self.cache,
            "monitor": self.monitor,
            "ground_truth": self.ground_truth,
            "dispatcher": self.dispatcher,
            "cores": None,
        }
        snap = SessionSnapshot(**payload)
        detached: SessionSnapshot = pickle.loads(
            pickle.dumps(snap, protocol=pickle.HIGHEST_PROTOCOL)
        )
        if sanitize.is_active():
            # Canary before anyone trusts this snapshot: a second
            # roundtrip must preserve cursor, stats and cache state.
            sanitize.snapshot_canary(detached)
        return detached

    @classmethod
    def restore(
        cls,
        snapshot: "SessionSnapshot | str | os.PathLike[str]",
        workload: "Workload",
        observers: Sequence[SessionObserver] = (),
        compiled: "CompiledStream | None" = None,
    ) -> "SimulationSession":
        """Rebuild a running session from a snapshot and an equivalent
        workload instance (same name/construction parameters/seed).

        The workload's deterministic block stream is regenerated and
        fast-forwarded to the snapshot's cursor — replaying any mid-run
        allocation churn into the fresh object map — then the restored
        ground truth and tool contexts are re-bound to that live map so
        later allocations keep flowing into attribution.

        ``compiled`` fast-forwards over a precompiled stream instead of
        re-running the generator (compiled streams are churn-free by
        construction, so there are no side effects to replay). Snapshots
        do not record which stream source produced them: the two are
        bit-identical, so either may resume the other.
        """
        if not isinstance(snapshot, SessionSnapshot):
            snapshot = SessionSnapshot.load(snapshot)
        if snapshot.cores is not None:
            raise SimulationError(
                "snapshot holds a multi-core session; restore it with "
                "MultiCoreSession.restore"
            )
        return cls._resume(
            snapshot, workload, observers=observers, compiled=compiled
        )

    @classmethod
    def _resume(
        cls,
        state: "SessionSnapshot | CoreState",
        workload: "Workload",
        observers: Sequence[SessionObserver] = (),
        compiled: "CompiledStream | None" = None,
        core_id: int = 0,
    ) -> "SimulationSession":
        """Rebuild one running session from a state record.

        The shared machinery behind :meth:`restore` (single-core, from a
        :class:`SessionSnapshot`) and :meth:`MultiCoreSession.restore`
        (per core, from a :class:`CoreState` — same field names where
        the meaning matches).
        """
        if workload.name != state.workload_name:
            raise SimulationError(
                f"snapshot is for workload {state.workload_name!r}, "
                f"got {workload.name!r}"
            )
        if workload.consumed:
            workload.reset()
        workload.prepare()
        if compiled is not None:
            cls._check_compiled(workload, compiled)

        session = cls(
            workload,
            cache=state.cache,
            monitor=state.monitor,
            clock=state.clock,
            stats=state.stats,
            cost_model=state.cost_model,
            chunk_size=state.chunk_size,
            ground_truth=state.ground_truth,
            observers=observers,
            core_id=core_id,
        )
        snapshot = state
        session.dispatcher = snapshot.dispatcher
        session._cycle_carry = snapshot.cycle_carry
        session._refs_left = snapshot.refs_left

        if compiled is not None:
            session._compiled = compiled
            blocks = compiled.iter_blocks()
        else:
            blocks = workload.blocks()
        block = None
        for _ in range(snapshot.blocks_fetched):
            try:
                block = next(blocks)
            except StopIteration:
                raise SimulationError(
                    "snapshot cursor is beyond the regenerated stream; "
                    "workload parameters differ from the snapshotted run"
                ) from None
        session._blocks = blocks
        session._blocks_fetched = snapshot.blocks_fetched
        if snapshot.block_pos is not None:
            session._block = block
            session._pos = snapshot.block_pos

        # Re-bind attribution and tool contexts to the regenerated live
        # substrate (the pickled copies froze at snapshot time and would
        # miss post-restore alloc/free events), carrying over the pending
        # probe counts — ephemeral map state the next handler is charged
        # for — from the snapshotted map.
        old_map = None
        if session.ground_truth is not None:
            old_map = session.ground_truth.object_map
            session.ground_truth.object_map = workload.object_map
        if session.dispatcher is not None:
            rebound: set[int] = set()
            for tool in session.dispatcher.tools:
                ctx = tool.ctx
                if ctx is not None and id(ctx) not in rebound:
                    rebound.add(id(ctx))
                    if old_map is None:
                        old_map = ctx.object_map
                    ctx.object_map = workload.object_map
                    ctx.address_space = workload.address_space
                if tool.ctx is not None and session._shared_ctx is None:
                    session._shared_ctx = tool.ctx
        if old_map is not None:
            workload.object_map.adopt_probe_counts(old_map)
        if sanitize.is_active():
            # The restored eviction streams must equal a replay of their
            # recorded draw counts; catches rewound/double-applied RNG
            # state at the restore boundary instead of as bit drift.
            sanitize.verify_cache_rng(session.cache)
        return session


# ------------------------------------------------------------- multi-core

@dataclass
class CoreContext:
    """Everything private to one core of a :class:`MultiCoreSession`.

    The extraction the multi-core refactor is built on: workload, private
    cache pipeline (inside ``session.cache``), monitor, per-core run
    state and ground truth all live in the per-core
    :class:`SimulationSession`; this record adds the core's handle on the
    shared level (its :class:`~repro.cache.components.SharedLevelPort`),
    its interleaver weight and the per-object contention attribution
    accumulated so far.
    """

    core_id: int
    workload: "Workload"
    session: SimulationSession
    #: The core's port into the shared LLC (``session.cache.levels[-1]``).
    port: object
    #: Interleaver weight: chunks this core advances per round-robin turn.
    ratio: int = 1
    compiled: "CompiledStream | None" = None
    #: Shared-level misses attributed per object (namespace-qualified
    #: names, e.g. ``"c0:field"``), split by classification.
    self_by_object: dict[str, int] = field(default_factory=dict)
    contention_by_object: dict[str, int] = field(default_factory=dict)
    #: Classified misses whose address matched no live object (e.g. freed
    #: heap blocks) — kept so the per-core sums stay conserved.
    unattributed_self: int = 0
    unattributed_contention: int = 0


class MultiCoreSession:
    """N private-cache cores time-sharing one shared last-level cache.

    The multiprocessor extension of :class:`SimulationSession` (the
    paper's §5 "future work" direction): each core is a complete
    single-core session — its own workload in a disjoint shifted address
    space, private L1, monitor, clock, ground truth — whose cache
    pipeline bottoms out in a :class:`~repro.cache.components.SharedLevelPort`
    onto one shared :class:`~repro.cache.components.SharedCacheLevel`.
    A deterministic round-robin interleaver advances the cores chunk by
    chunk (``ratios`` weights the schedule), so a run is a pure function
    of (workloads, configs, seeds, ratios) — snapshot/resume included.

    Every shared-level miss is classified against a per-core *shadow*
    model (the LLC as it would look if the core ran alone): a miss the
    shadow also takes is *self*; a miss the shadow would have hit is
    *contention* — induced by co-runners evicting this core's lines.
    :meth:`finalize` surfaces the classification per (core, object).

    With one core the interleaver is a no-op and the pipeline reduces to
    the single-core stack, so results are bit-identical to
    :class:`SimulationSession` over the same workload and seeds (a test
    pins this; see DESIGN.md section 13).
    """

    def __init__(
        self,
        cores: list[CoreContext],
        shared_level,
        *,
        chunk_size: int,
        cost_model: CostModel,
    ) -> None:
        if not cores:
            raise SimulationError("MultiCoreSession needs at least one core")
        self.cores = cores
        self.shared_level = shared_level
        self.chunk_size = chunk_size
        self.cost_model = cost_model
        self._next = 0
        self._finalized = False

    # ------------------------------------------------------------ creation

    @classmethod
    def start(
        cls,
        workloads: "Sequence[Workload]",
        *,
        llc_config,
        l1_config=None,
        backend: str | None = None,
        seed: int | None = None,
        n_region_counters: int = 10,
        multiplexed_counters: bool = False,
        cost_model: CostModel | None = None,
        chunk_size: int = 1 << 15,
        ground_truth: bool = True,
        series_bucket_cycles: int | None = None,
        max_refs: int | None = None,
        observers: Sequence[SessionObserver] = (),
        ratios: Sequence[int] | None = None,
        compiled: "Sequence[CompiledStream | None] | None" = None,
    ) -> "MultiCoreSession":
        """Open an N-core run over ``workloads`` sharing one LLC.

        Core *i*'s workload is relocated into its own address namespace
        (``i * CORE_STRIDE`` — a power-of-two stride, so line/set index
        bits are unchanged and co-runners genuinely contend for sets),
        gets a private L1 (when ``l1_config`` is set) seeded like the
        single-core two-level stack, and shares the one LLC through a
        per-core port. ``ratios[i]`` chunks of core *i* run per
        round-robin turn (default 1 each). ``compiled[i]`` replays a
        precompiled stream for core *i* — compiled against the *unshifted*
        workload; the relocation is applied here.

        ``max_refs`` bounds each core individually (the same budget the
        single-core session applies), so a 1-core multi-core run stays
        bit-identical to the session it reduces to.
        """
        from repro.cache.config import CacheConfigError
        from repro.cache.hierarchy import make_shared_level, core_pipeline
        from repro.memory.address_space import CORE_STRIDE
        from repro.workloads.compile import offset_stream

        workloads = list(workloads)
        if not workloads:
            raise SimulationError("MultiCoreSession needs at least one workload")
        for cfg in (llc_config, l1_config):
            if cfg is not None and cfg.mechanisms:
                raise CacheConfigError(
                    f"multi-core sessions do not support mechanism "
                    f"decorators yet (config has "
                    f"{'+'.join(m.describe() for m in cfg.mechanisms)}); "
                    "strip `mechanisms` from the shared/private configs"
                )
        if ratios is None:
            ratios = [1] * len(workloads)
        ratios = [int(r) for r in ratios]
        if len(ratios) != len(workloads):
            raise SimulationError(
                f"{len(workloads)} workloads but {len(ratios)} ratios"
            )
        if any(r < 1 for r in ratios):
            raise SimulationError(f"ratios must be >= 1, got {ratios}")
        if compiled is None:
            compiled_list: list["CompiledStream | None"] = [None] * len(workloads)
        else:
            compiled_list = list(compiled)
            if len(compiled_list) != len(workloads):
                raise SimulationError(
                    f"{len(workloads)} workloads but {len(compiled_list)} "
                    "compiled streams"
                )
        cost = cost_model if cost_model is not None else CostModel()

        shared = make_shared_level(llc_config, backend=backend, seed=seed)
        cores: list[CoreContext] = []
        for core_id, workload in enumerate(workloads):
            offset = core_id * CORE_STRIDE
            # Set before start(): prepare() builds the shifted address
            # space, so the object map, ground truth and generated
            # addresses all live in the core's namespace from the start.
            workload.address_offset = offset
            pipeline = core_pipeline(
                shared, core_id, l1=l1_config, backend=backend, seed=seed
            )
            monitor = PerformanceMonitor(
                n_region_counters,
                multiplexed=multiplexed_counters,
                core_id=core_id,
            )
            stream = compiled_list[core_id]
            if stream is not None:
                stream = offset_stream(stream, offset)
            session = SimulationSession.start(
                workload,
                cache=pipeline,
                monitor=monitor,
                cost_model=cost,
                chunk_size=chunk_size,
                ground_truth=ground_truth,
                series_bucket_cycles=series_bucket_cycles,
                max_refs=max_refs,
                observers=observers,
                compiled=stream,
                core_id=core_id,
            )
            port = pipeline.levels[-1]
            session._shared_port = port
            workload.object_map.namespace = f"c{core_id}"
            cores.append(
                CoreContext(
                    core_id=core_id,
                    workload=workload,
                    session=session,
                    port=port,
                    ratio=ratios[core_id],
                    compiled=stream,
                )
            )
        return cls(cores, shared, chunk_size=chunk_size, cost_model=cost)

    # -------------------------------------------------------------- running

    @property
    def name(self) -> str:
        """Joint workload name, e.g. ``"mc(compress+ijpeg)"``."""
        return "mc(" + "+".join(c.workload.name for c in self.cores) + ")"

    @property
    def finished(self) -> bool:
        return all(core.session.finished for core in self.cores)

    def total_app_refs(self) -> int:
        return sum(core.session.stats.app_refs for core in self.cores)

    def attach(self, tools, core: int = 0) -> None:
        """Attach instrumentation tools to one core (default core 0)."""
        self.cores[core].session.attach(tools)

    def step(self) -> bool:
        """Advance the next unfinished core by one scheduling turn.

        A turn is up to ``ratio`` single-core steps (chunks or interrupt
        deliveries) of one core; the interleaver then moves to the next
        core, skipping finished ones. Returns False once every core's
        stream is done.
        """
        if self._finalized:
            raise SimulationError("session already finalized")
        n = len(self.cores)
        for _ in range(n):
            core = self.cores[self._next]
            self._next = (self._next + 1) % n
            progressed = False
            for _ in range(core.ratio):
                if not core.session.step():
                    break
                progressed = True
                self._attribute(core)
            if progressed:
                return True
        return False

    def run(
        self,
        max_steps: int | None = None,
        checkpoint_every_refs: int | None = None,
        on_checkpoint=None,
    ) -> None:
        """Drive :meth:`step` until every core finishes.

        ``checkpoint_every_refs`` invokes ``on_checkpoint(snapshot)``
        each time the *combined* reference count crosses another
        multiple, mirroring the single-core run loop's cadence.
        """
        next_checkpoint: int | None = None
        if checkpoint_every_refs is not None:
            if checkpoint_every_refs <= 0:
                raise SimulationError("checkpoint_every_refs must be positive")
            next_checkpoint = self.total_app_refs() + checkpoint_every_refs
        steps = 0
        while self.step():
            steps += 1
            if max_steps is not None and steps >= max_steps:
                return
            if next_checkpoint is not None and on_checkpoint is not None:
                total = self.total_app_refs()
                if total >= next_checkpoint:
                    on_checkpoint(self.snapshot())
                    next_checkpoint = total + checkpoint_every_refs

    # ---------------------------------------------------------- attribution

    def _attribute(self, core: CoreContext) -> None:
        """Drain the core's classified shared-level misses into per-object
        tallies, against the object map as it stands *now* (the addresses
        were classified at most one chunk ago, so heap churn cannot have
        moved them more than one chunk's worth of allocations)."""
        pending = core.port.drain_classified()
        if not pending:
            return
        object_map = core.workload.object_map
        snap = object_map.snapshot()
        for self_addrs, contention_addrs in pending:
            core.unattributed_self += self._tally(
                snap, object_map, self_addrs, core.self_by_object
            )
            core.unattributed_contention += self._tally(
                snap, object_map, contention_addrs, core.contention_by_object
            )

    @staticmethod
    def _tally(snap, object_map, addrs, dest: dict[str, int]) -> int:
        """Add per-object counts of ``addrs`` into ``dest``; returns the
        number of addresses that matched no live object."""
        if len(addrs) == 0:
            return 0
        counts = snap.count_by_object(addrs)
        attributed = 0
        for obj, count in zip(snap.objects, counts):
            if count:
                name = object_map.qualify(obj.name)
                dest[name] = dest.get(name, 0) + int(count)
                attributed += int(count)
        return int(len(addrs)) - attributed

    def _profile(self, core: CoreContext):
        from repro.cache.contention import ContentionProfile

        return ContentionProfile(
            ledger=core.port.contention.snapshot(),
            self_by_object=dict(core.self_by_object),
            contention_by_object=dict(core.contention_by_object),
            unattributed_self=core.unattributed_self,
            unattributed_contention=core.unattributed_contention,
        )

    # ------------------------------------------------------------- finalize

    def finalize(self):
        """Finalize every core and assemble the aggregate result.

        The aggregate :class:`~repro.sim.engine.RunResult` sums reference
        and miss counts across cores, reports the *makespan* (the slowest
        core's total cycles — per-core clocks advance independently, so
        cycle sums would double-count wall time) in ``stats.app_cycles``,
        carries the shared LLC's aggregate ledger in ``cache_stats`` and
        lists every per-core result (each with its own
        :class:`~repro.cache.contention.ContentionProfile`) in ``cores``.
        """
        from repro.cache.contention import ContentionLedger, ContentionProfile
        from repro.sim.engine import RunResult

        if self._finalized:
            raise SimulationError("session already finalized")
        self._finalized = True
        results = []
        for core in self.cores:
            self._attribute(core)  # drain any classified misses left over
            result = core.session.finalize()
            result.contention = self._profile(core)
            results.append(result)

        merged_ledger = ContentionLedger()
        merged_self: dict[str, int] = {}
        merged_contention: dict[str, int] = {}
        unattr_self = 0
        unattr_contention = 0
        for result in results:
            profile = result.contention
            ledger = profile.ledger
            merged_ledger.self_misses += ledger.self_misses
            merged_ledger.contention_misses += ledger.contention_misses
            merged_ledger.rescued_misses += ledger.rescued_misses
            for tag, n in ledger.self_by_tag.items():
                merged_ledger.self_by_tag[tag] = (
                    merged_ledger.self_by_tag.get(tag, 0) + n
                )
            for tag, n in ledger.contention_by_tag.items():
                merged_ledger.contention_by_tag[tag] = (
                    merged_ledger.contention_by_tag.get(tag, 0) + n
                )
            # Names are namespace-qualified per core, so merges never
            # collide across cores.
            merged_self.update(profile.self_by_object)
            merged_contention.update(profile.contention_by_object)
            unattr_self += profile.unattributed_self
            unattr_contention += profile.unattributed_contention

        stats = RunStats(
            app_refs=sum(r.stats.app_refs for r in results),
            app_misses=sum(r.stats.app_misses for r in results),
            instr_refs=sum(r.stats.instr_refs for r in results),
            instr_misses=sum(r.stats.instr_misses for r in results),
            # Makespan: cores run concurrently, so the aggregate elapsed
            # time is the slowest core's clock, not the sum.
            app_cycles=max(r.stats.app_cycles for r in results),
            instr_cycles=max(r.stats.instr_cycles for r in results),
        )
        component_stats = [("llc", self.shared_level.stats.snapshot())]
        for core, result in zip(self.cores, results):
            if result.component_stats:
                component_stats.extend(
                    (f"c{core.core_id}.{label}", stats_snapshot)
                    for label, stats_snapshot in result.component_stats
                )
        return RunResult(
            workload_name=self.name,
            cache_config=self.shared_level.config,
            stats=stats,
            cache_stats=self.shared_level.stats.snapshot(),
            component_stats=component_stats,
            contention=ContentionProfile(
                ledger=merged_ledger,
                self_by_object=merged_self,
                contention_by_object=merged_contention,
                unattributed_self=unattr_self,
                unattributed_contention=unattr_contention,
            ),
            cores=results,
        )

    # ------------------------------------------------------------- snapshot

    def snapshot(self) -> SessionSnapshot:
        """Serialisable copy of the whole machine's mid-run state.

        One :class:`SessionSnapshot` whose ``cores`` list carries a
        :class:`CoreState` per core, rotated so the next core to run
        comes first (the round-robin pointer is schedule state); the
        top-level fields hold that core's objects so the payload stays
        uniformly typed (and RPL501 keeps pinning it). Pickling
        everything as one graph serialises the shared LLC leaf exactly
        once — unpickling rebuilds it as one object every port
        references, preserving the shared identity.
        """
        if self._finalized:
            raise SimulationError("cannot snapshot a finalized session")
        for core in self.cores:
            if core.session._exhausted:
                raise SimulationError(
                    f"cannot snapshot: core {core.core_id} "
                    f"({core.workload.name}) already exhausted its stream"
                )
            # Classified addresses still pending attribution would be
            # lost by a snapshot (the arrays are drained, not pickled);
            # fold them into the per-object tallies first.
            self._attribute(core)
        core_states = [
            CoreState(
                core_id=core.core_id,
                address_offset=core.workload.address_offset,
                workload_name=core.workload.name,
                blocks_fetched=core.session._blocks_fetched,
                block_pos=(
                    core.session._pos
                    if core.session._block is not None
                    else None
                ),
                cycle_carry=core.session._cycle_carry,
                refs_left=core.session._refs_left,
                chunk_size=core.session.chunk_size,
                cost_model=core.session.cost_model,
                clock=core.session.clock,
                stats=core.session.stats,
                cache=core.session.cache,
                monitor=core.session.monitor,
                ground_truth=core.session.ground_truth,
                dispatcher=core.session.dispatcher,
                ratio=core.ratio,
                self_by_object=dict(core.self_by_object),
                contention_by_object=dict(core.contention_by_object),
                unattributed_self=core.unattributed_self,
                unattributed_contention=core.unattributed_contention,
            )
            for core in (
                self.cores[self._next :] + self.cores[: self._next]
            )
        ]
        first = self.cores[self._next]
        payload = {
            "version": SNAPSHOT_VERSION,
            "workload_name": self.name,
            "blocks_fetched": first.session._blocks_fetched,
            "block_pos": (
                first.session._pos if first.session._block is not None else None
            ),
            "cycle_carry": first.session._cycle_carry,
            "refs_left": first.session._refs_left,
            "chunk_size": self.chunk_size,
            "cost_model": self.cost_model,
            "clock": first.session.clock,
            "stats": first.session.stats,
            "cache": first.session.cache,
            "monitor": first.session.monitor,
            "ground_truth": first.session.ground_truth,
            "dispatcher": first.session.dispatcher,
            "cores": core_states,
        }
        snap = SessionSnapshot(**payload)
        detached: SessionSnapshot = pickle.loads(
            pickle.dumps(snap, protocol=pickle.HIGHEST_PROTOCOL)
        )
        if sanitize.is_active():
            sanitize.snapshot_canary(detached)
        return detached

    @classmethod
    def restore(
        cls,
        snapshot: "SessionSnapshot | str | os.PathLike[str]",
        workloads: "Sequence[Workload]",
        observers: Sequence[SessionObserver] = (),
        compiled: "Sequence[CompiledStream | None] | None" = None,
    ) -> "MultiCoreSession":
        """Rebuild a running multi-core session from a snapshot.

        ``workloads`` must be equivalent instances (same construction
        parameters) of the snapshotted co-runners, in core order.
        ``compiled`` streams, when given, are again the *unshifted*
        compilations; per-core relocation is reapplied here. The round-
        robin pointer is part of the schedule state: the snapshot's
        ``cores`` list is stored in *next-to-run-first* order, so
        restart order matches the interrupted schedule exactly.
        """
        from repro.workloads.compile import offset_stream

        if not isinstance(snapshot, SessionSnapshot):
            snapshot = SessionSnapshot.load(snapshot)
        if snapshot.cores is None:
            raise SimulationError(
                "snapshot holds a single-core session; restore it with "
                "SimulationSession.restore"
            )
        states = snapshot.cores
        workloads = list(workloads)
        if len(workloads) != len(states):
            raise SimulationError(
                f"snapshot has {len(states)} cores but {len(workloads)} "
                "workloads were supplied"
            )
        if compiled is None:
            compiled_list: list["CompiledStream | None"] = [None] * len(states)
        else:
            compiled_list = list(compiled)
            if len(compiled_list) != len(states):
                raise SimulationError(
                    f"snapshot has {len(states)} cores but "
                    f"{len(compiled_list)} compiled streams were supplied"
                )
        # The pickled states list is rotated to encode the scheduler
        # pointer; the caller's workloads/compiled lists are in core_id
        # order. Match them up by core_id.
        if sorted(s.core_id for s in states) != list(range(len(states))):
            raise SimulationError(
                f"snapshot core ids {sorted(s.core_id for s in states)} "
                "are not contiguous"
            )
        cores: list[CoreContext] = [None] * len(states)  # type: ignore[list-item]
        shared = None
        for state in sorted(states, key=lambda s: s.core_id):
            workload = workloads[state.core_id]
            workload.address_offset = state.address_offset
            stream = compiled_list[state.core_id]
            if stream is not None:
                stream = offset_stream(stream, state.address_offset)
            session = SimulationSession._resume(
                state,
                workload,
                observers=observers,
                compiled=stream,
                core_id=state.core_id,
            )
            port = session.cache.levels[-1]
            session._shared_port = port
            workload.object_map.namespace = f"c{state.core_id}"
            if shared is None:
                shared = port.shared_level
            elif port.shared_level is not shared:
                raise SimulationError(
                    "restored cores do not share one LLC; the snapshot "
                    "graph lost the shared identity"
                )
            cores[state.core_id] = CoreContext(
                core_id=state.core_id,
                workload=workload,
                session=session,
                port=port,
                ratio=state.ratio,
                compiled=stream,
                self_by_object=dict(state.self_by_object),
                contention_by_object=dict(state.contention_by_object),
                unattributed_self=state.unattributed_self,
                unattributed_contention=state.unattributed_contention,
            )
        restored = cls(
            cores,
            shared,
            chunk_size=snapshot.chunk_size,
            cost_model=snapshot.cost_model,
        )
        restored._next = states[0].core_id
        return restored
