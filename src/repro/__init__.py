"""repro — data-centric cache profiling via hardware performance monitors.

A from-scratch reproduction of Buck & Hollingsworth, *Using Hardware
Performance Monitors to Isolate Memory Bottlenecks* (SC 2000): two
techniques that attribute cache misses to source-level data structures —
miss-address **sampling** and the **n-way counter search** — evaluated on
a simulated memory hierarchy with simulated HPM support.

Quickstart::

    from repro import Simulator, CacheConfig, SamplingProfiler, workloads

    sim = Simulator(CacheConfig(size="256K", assoc=4))
    result = sim.run(workloads.Tomcatv(), tool=SamplingProfiler(period=2048))
    print(result.actual.table())    # exact, from the simulator's oracle
    print(result.measured.table())  # as the sampling tool estimated it

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro import analysis, workloads
from repro.cache import (
    CacheConfig,
    DirectMappedCache,
    GroundTruth,
    ReplacementPolicy,
    SetAssociativeCache,
)
from repro.core import (
    AdaptiveSamplingProfiler,
    DataProfile,
    GreedySearch,
    NWaySearch,
    ObjectShare,
    PeriodSchedule,
    SamplingProfiler,
    aggregate_by,
    aggregate_heap_by_site,
    comparison_table,
    max_share_error,
    rank_agreement,
    spearman_rank_correlation,
)
from repro.errors import ReproError
from repro.experiments import (
    ExperimentRunner,
    ParallelRunner,
    ResultCache,
    SimSpec,
    TaskSpec,
    ToolSpec,
)
from repro.hpm import CostModel, PerformanceMonitor
from repro.memory import (
    AddressSpace,
    HeapAllocator,
    MemoryObject,
    ObjectMap,
    StackModel,
    SymbolTable,
)
from repro.sim import ReferenceBlock, RunResult, Simulator

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Simulator",
    "RunResult",
    "ReferenceBlock",
    "CacheConfig",
    "SetAssociativeCache",
    "DirectMappedCache",
    "ReplacementPolicy",
    "GroundTruth",
    "PerformanceMonitor",
    "CostModel",
    "SamplingProfiler",
    "AdaptiveSamplingProfiler",
    "PeriodSchedule",
    "NWaySearch",
    "GreedySearch",
    "DataProfile",
    "ObjectShare",
    "comparison_table",
    "rank_agreement",
    "max_share_error",
    "spearman_rank_correlation",
    "aggregate_by",
    "aggregate_heap_by_site",
    "AddressSpace",
    "SymbolTable",
    "HeapAllocator",
    "ObjectMap",
    "StackModel",
    "MemoryObject",
    "ReproError",
    "ExperimentRunner",
    "ParallelRunner",
    "ResultCache",
    "TaskSpec",
    "ToolSpec",
    "SimSpec",
    "workloads",
    "analysis",
]
