"""Red-black tree keyed by integer (start address), with floor lookup.

Used by :class:`repro.memory.object_map.ObjectMap` to track heap blocks: the
block set changes as the simulated application allocates and frees memory,
which is exactly why the paper chose a balanced tree over the sorted array
it uses for static variables.

The tree maps ``key -> value`` and supports:

* ``insert(key, value)`` / ``delete(key)`` — O(log n) with rebalancing,
* ``floor(key)`` — the entry with the largest key <= ``key`` (address
  containment checks look up the floor of an address, then test the block's
  extent),
* in-order iteration, ``min_key``/``max_key``,
* ``probe_count`` accounting so the instrumentation cost model can charge
  virtual cycles per node visited,
* ``check_invariants()`` used by the property-based tests.
"""

from __future__ import annotations

from typing import Any, Iterator

RED = 0
BLACK = 1


class _Node:
    __slots__ = ("key", "value", "color", "left", "right", "parent")

    def __init__(self, key: int, value: Any, color: int, nil: "_Node") -> None:
        self.key = key
        self.value = value
        self.color = color
        self.left = nil
        self.right = nil
        self.parent = nil


class RedBlackTree:
    """A classic CLRS-style red-black tree with a shared sentinel nil node."""

    def __init__(self) -> None:
        self._nil = _Node.__new__(_Node)
        self._nil.key = 0
        self._nil.value = None
        self._nil.color = BLACK
        self._nil.left = self._nil
        self._nil.right = self._nil
        self._nil.parent = self._nil
        self._root = self._nil
        self._size = 0
        #: Number of node visits since the last reset; consumed by the
        #: instrumentation cost model (cycles per probe).
        self.probe_count = 0

    # ------------------------------------------------------------------ size

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def reset_probe_count(self) -> int:
        """Return and clear the accumulated probe count."""
        count = self.probe_count
        self.probe_count = 0
        return count

    # --------------------------------------------------------------- rotation

    def _left_rotate(self, x: _Node) -> None:
        y = x.right
        x.right = y.left
        if y.left is not self._nil:
            y.left.parent = x
        y.parent = x.parent
        if x.parent is self._nil:
            self._root = y
        elif x is x.parent.left:
            x.parent.left = y
        else:
            x.parent.right = y
        y.left = x
        x.parent = y

    def _right_rotate(self, x: _Node) -> None:
        y = x.left
        x.left = y.right
        if y.right is not self._nil:
            y.right.parent = x
        y.parent = x.parent
        if x.parent is self._nil:
            self._root = y
        elif x is x.parent.right:
            x.parent.right = y
        else:
            x.parent.left = y
        y.right = x
        x.parent = y

    # ----------------------------------------------------------------- insert

    def insert(self, key: int, value: Any) -> None:
        """Insert ``key -> value``; an existing key has its value replaced."""
        parent = self._nil
        node = self._root
        while node is not self._nil:
            self.probe_count += 1
            parent = node
            if key == node.key:
                node.value = value
                return
            node = node.left if key < node.key else node.right
        fresh = _Node(key, value, RED, self._nil)
        fresh.parent = parent
        if parent is self._nil:
            self._root = fresh
        elif key < parent.key:
            parent.left = fresh
        else:
            parent.right = fresh
        self._size += 1
        self._insert_fixup(fresh)

    def _insert_fixup(self, z: _Node) -> None:
        while z.parent.color == RED:
            if z.parent is z.parent.parent.left:
                uncle = z.parent.parent.right
                if uncle.color == RED:
                    z.parent.color = BLACK
                    uncle.color = BLACK
                    z.parent.parent.color = RED
                    z = z.parent.parent
                else:
                    if z is z.parent.right:
                        z = z.parent
                        self._left_rotate(z)
                    z.parent.color = BLACK
                    z.parent.parent.color = RED
                    self._right_rotate(z.parent.parent)
            else:
                uncle = z.parent.parent.left
                if uncle.color == RED:
                    z.parent.color = BLACK
                    uncle.color = BLACK
                    z.parent.parent.color = RED
                    z = z.parent.parent
                else:
                    if z is z.parent.left:
                        z = z.parent
                        self._right_rotate(z)
                    z.parent.color = BLACK
                    z.parent.parent.color = RED
                    self._left_rotate(z.parent.parent)
        self._root.color = BLACK

    # ----------------------------------------------------------------- delete

    def _find(self, key: int) -> _Node:
        node = self._root
        while node is not self._nil:
            self.probe_count += 1
            if key == node.key:
                return node
            node = node.left if key < node.key else node.right
        return self._nil

    def _transplant(self, u: _Node, v: _Node) -> None:
        if u.parent is self._nil:
            self._root = v
        elif u is u.parent.left:
            u.parent.left = v
        else:
            u.parent.right = v
        v.parent = u.parent

    def _minimum(self, node: _Node) -> _Node:
        while node.left is not self._nil:
            self.probe_count += 1
            node = node.left
        return node

    def delete(self, key: int) -> Any:
        """Remove ``key`` and return its value; KeyError if absent."""
        z = self._find(key)
        if z is self._nil:
            raise KeyError(key)
        removed_value = z.value
        y = z
        y_original_color = y.color
        if z.left is self._nil:
            x = z.right
            self._transplant(z, z.right)
        elif z.right is self._nil:
            x = z.left
            self._transplant(z, z.left)
        else:
            y = self._minimum(z.right)
            y_original_color = y.color
            x = y.right
            if y.parent is z:
                x.parent = y
            else:
                self._transplant(y, y.right)
                y.right = z.right
                y.right.parent = y
            self._transplant(z, y)
            y.left = z.left
            y.left.parent = y
            y.color = z.color
        if y_original_color == BLACK:
            self._delete_fixup(x)
        self._size -= 1
        return removed_value

    def _delete_fixup(self, x: _Node) -> None:
        while x is not self._root and x.color == BLACK:
            if x is x.parent.left:
                w = x.parent.right
                if w.color == RED:
                    w.color = BLACK
                    x.parent.color = RED
                    self._left_rotate(x.parent)
                    w = x.parent.right
                if w.left.color == BLACK and w.right.color == BLACK:
                    w.color = RED
                    x = x.parent
                else:
                    if w.right.color == BLACK:
                        w.left.color = BLACK
                        w.color = RED
                        self._right_rotate(w)
                        w = x.parent.right
                    w.color = x.parent.color
                    x.parent.color = BLACK
                    w.right.color = BLACK
                    self._left_rotate(x.parent)
                    x = self._root
            else:
                w = x.parent.left
                if w.color == RED:
                    w.color = BLACK
                    x.parent.color = RED
                    self._right_rotate(x.parent)
                    w = x.parent.left
                if w.right.color == BLACK and w.left.color == BLACK:
                    w.color = RED
                    x = x.parent
                else:
                    if w.left.color == BLACK:
                        w.right.color = BLACK
                        w.color = RED
                        self._left_rotate(w)
                        w = x.parent.left
                    w.color = x.parent.color
                    x.parent.color = BLACK
                    w.left.color = BLACK
                    self._right_rotate(x.parent)
                    x = self._root
        x.color = BLACK

    # ---------------------------------------------------------------- queries

    def get(self, key: int, default: Any = None) -> Any:
        """Exact-key lookup."""
        node = self._find(key)
        return default if node is self._nil else node.value

    def __contains__(self, key: int) -> bool:
        return self._find(key) is not self._nil

    def floor(self, key: int) -> tuple[int, Any] | None:
        """Entry with the largest key <= ``key``, or None.

        This is the primitive behind address->heap-block containment: look up
        ``floor(addr)`` and then check whether the block extends past ``addr``.
        """
        node = self._root
        best: _Node | None = None
        while node is not self._nil:
            self.probe_count += 1
            if node.key == key:
                return (node.key, node.value)
            if node.key < key:
                best = node
                node = node.right
            else:
                node = node.left
        if best is None:
            return None
        return (best.key, best.value)

    def ceiling(self, key: int) -> tuple[int, Any] | None:
        """Entry with the smallest key >= ``key``, or None."""
        node = self._root
        best: _Node | None = None
        while node is not self._nil:
            self.probe_count += 1
            if node.key == key:
                return (node.key, node.value)
            if node.key > key:
                best = node
                node = node.left
            else:
                node = node.right
        if best is None:
            return None
        return (best.key, best.value)

    def min_key(self) -> int | None:
        if self._root is self._nil:
            return None
        return self._minimum(self._root).key

    def max_key(self) -> int | None:
        node = self._root
        if node is self._nil:
            return None
        while node.right is not self._nil:
            node = node.right
        return node.key

    def items(self) -> Iterator[tuple[int, Any]]:
        """In-order (sorted by key) iteration over ``(key, value)`` pairs."""
        stack: list[_Node] = []
        node = self._root
        while stack or node is not self._nil:
            while node is not self._nil:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield (node.key, node.value)
            node = node.right

    def keys(self) -> list[int]:
        return [k for k, _ in self.items()]

    def values(self) -> list[Any]:
        return [v for _, v in self.items()]

    def range_items(self, lo: int, hi: int) -> Iterator[tuple[int, Any]]:
        """Entries with ``lo <= key < hi`` in sorted order."""
        for key, value in self.items():
            if key >= hi:
                break
            if key >= lo:
                yield (key, value)

    # ------------------------------------------------------------- validation

    def check_invariants(self) -> None:
        """Raise AssertionError if any red-black invariant is violated.

        Checked: root is black; no red node has a red child; every
        root-to-leaf path has the same black height; keys are in BST order.
        Used heavily by the hypothesis test-suite.
        """
        assert self._root.color == BLACK, "root must be black"
        assert self._nil.color == BLACK, "sentinel must be black"

        def walk(node: _Node, lo: int | None, hi: int | None) -> int:
            if node is self._nil:
                return 1
            if lo is not None:
                assert node.key > lo, "BST order violated (left bound)"
            if hi is not None:
                assert node.key < hi, "BST order violated (right bound)"
            if node.color == RED:
                assert node.left.color == BLACK and node.right.color == BLACK, (
                    "red node with red child"
                )
            left_black = walk(node.left, lo, node.key)
            right_black = walk(node.right, node.key, hi)
            assert left_black == right_black, "black-height mismatch"
            return left_black + (1 if node.color == BLACK else 0)

        walk(self._root, None, None)
        assert self._size == sum(1 for _ in self.items()), "size mismatch"
