"""Fenwick (binary-indexed) tree: prefix sums over a mutable array.

The MRC engine's reference stack-distance pass is Olken's algorithm — a
Fenwick tree counts the still-live last-access timestamps, so "distinct
lines touched since this line's previous access" is one prefix-sum query
per reference (see :mod:`repro.cache.mrc.distances`). The reuse-distance
analysis in :mod:`repro.analysis.reuse` shares this structure.

All operations are integer-exact; indices are 0-based externally and
1-based internally (the classic lowbit layout).
"""

from __future__ import annotations


class FenwickTree:
    """Prefix-summable integer array of fixed size ``n``.

    ``add`` and ``prefix_sum`` are O(log n); construction is O(n).
    """

    __slots__ = ("size", "tree")

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError(f"FenwickTree size must be non-negative, got {n}")
        self.size = n
        self.tree = [0] * (n + 1)

    def add(self, idx: int, delta: int) -> None:
        """Add ``delta`` at 0-based index ``idx``."""
        if not 0 <= idx < self.size:
            raise IndexError(f"index {idx} out of range for size {self.size}")
        idx += 1
        tree = self.tree
        size = self.size
        while idx <= size:
            tree[idx] += delta
            idx += idx & (-idx)

    def prefix_sum(self, idx: int) -> int:
        """Sum of entries at 0-based indices ``[0, idx]`` (clamped)."""
        if idx >= self.size:
            idx = self.size - 1
        idx += 1
        tree = self.tree
        total = 0
        while idx > 0:
            total += tree[idx]
            idx -= idx & (-idx)
        return total

    def range_sum(self, lo: int, hi: int) -> int:
        """Sum of entries at 0-based indices ``[lo, hi]``."""
        if hi < lo:
            return 0
        return self.prefix_sum(hi) - (self.prefix_sum(lo - 1) if lo > 0 else 0)

    def total(self) -> int:
        """Sum of the whole array."""
        return self.prefix_sum(self.size - 1) if self.size else 0
