"""Core data structures used by the profiling runtime.

The paper (section 2.2) keeps object-extent information "in a sorted array
for variables and a red-black tree for heap blocks (since this data will
change as allocations and deallocations take place)"; the search keeps
measured regions in a priority queue ranked by miss percentage. These are
implemented from scratch here so the instrumentation cost model can charge
cycles per probe/rotation/heap operation.
"""

from repro.datastructs.fenwick import FenwickTree
from repro.datastructs.rbtree import RedBlackTree
from repro.datastructs.sorted_table import SortedTable
from repro.datastructs.heap_pq import MaxPriorityQueue

__all__ = ["FenwickTree", "RedBlackTree", "SortedTable", "MaxPriorityQueue"]
