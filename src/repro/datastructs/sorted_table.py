"""Sorted-array map for static/global variable extents.

The paper keeps variable extents "in a sorted array" because the set of
globals and statics is fixed once the binary is loaded, so O(n) insertion
during startup is paid once and every lookup afterwards is a cheap binary
search. Lookups count probes so the instrumentation cost model can convert
them into virtual cycles and cache references.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator


class SortedTable:
    """A sorted ``key -> value`` table with floor/ceiling binary search."""

    def __init__(self) -> None:
        self._keys: list[int] = []
        self._values: list[Any] = []
        self._frozen = False
        #: Binary-search probes since last reset (for the cost model).
        self.probe_count = 0

    def __len__(self) -> int:
        return len(self._keys)

    def __bool__(self) -> bool:
        return bool(self._keys)

    def reset_probe_count(self) -> int:
        count = self.probe_count
        self.probe_count = 0
        return count

    def freeze(self) -> None:
        """Forbid further insertion (the variable set is fixed after load)."""
        self._frozen = True

    @property
    def frozen(self) -> bool:
        return self._frozen

    def insert(self, key: int, value: Any) -> None:
        """Insert an entry; replaces the value of an existing key."""
        if self._frozen:
            raise RuntimeError("table is frozen; static variables cannot be added at runtime")
        idx = bisect.bisect_left(self._keys, key)
        if idx < len(self._keys) and self._keys[idx] == key:
            self._values[idx] = value
        else:
            self._keys.insert(idx, key)
            self._values.insert(idx, value)

    def delete(self, key: int) -> Any:
        if self._frozen:
            raise RuntimeError("table is frozen")
        idx = bisect.bisect_left(self._keys, key)
        if idx >= len(self._keys) or self._keys[idx] != key:
            raise KeyError(key)
        self._keys.pop(idx)
        return self._values.pop(idx)

    def get(self, key: int, default: Any = None) -> Any:
        idx = self._bisect(key)
        if idx < len(self._keys) and self._keys[idx] == key:
            return self._values[idx]
        return default

    def __contains__(self, key: int) -> bool:
        idx = self._bisect(key)
        return idx < len(self._keys) and self._keys[idx] == key

    def _bisect(self, key: int) -> int:
        # Count ~log2(n) probes, matching what real binary-search
        # instrumentation code would touch.
        n = len(self._keys)
        probes = 0
        while (1 << probes) < n + 1:
            probes += 1
        self.probe_count += max(1, probes)
        return bisect.bisect_left(self._keys, key)

    def floor(self, key: int) -> tuple[int, Any] | None:
        """Entry with the largest key <= ``key``, or None."""
        idx = self._bisect(key)
        if idx < len(self._keys) and self._keys[idx] == key:
            return (self._keys[idx], self._values[idx])
        if idx == 0:
            return None
        return (self._keys[idx - 1], self._values[idx - 1])

    def ceiling(self, key: int) -> tuple[int, Any] | None:
        """Entry with the smallest key >= ``key``, or None."""
        idx = self._bisect(key)
        if idx >= len(self._keys):
            return None
        return (self._keys[idx], self._values[idx])

    def min_key(self) -> int | None:
        return self._keys[0] if self._keys else None

    def max_key(self) -> int | None:
        return self._keys[-1] if self._keys else None

    def items(self) -> Iterator[tuple[int, Any]]:
        return iter(zip(self._keys, self._values))

    def keys(self) -> list[int]:
        return list(self._keys)

    def values(self) -> list[Any]:
        return list(self._values)

    def range_items(self, lo: int, hi: int) -> Iterator[tuple[int, Any]]:
        """Entries with ``lo <= key < hi`` in sorted order."""
        start = bisect.bisect_left(self._keys, lo)
        stop = bisect.bisect_left(self._keys, hi)
        for idx in range(start, stop):
            yield (self._keys[idx], self._values[idx])
