"""Indexed max-priority queue for the n-way search.

The search algorithm (paper section 2.2) pushes every measured region into a
priority queue ranked by the percentage of total cache misses it caused, and
pops the best regions each iteration — the queue is what lets the search
"back up" to a previously measured region (Figure 2). The queue must also
support membership tests and in-place priority updates for the phase
heuristic (a region kept despite zero misses retains its old priority).

Implemented as a binary max-heap with a position index; operation counts
are tracked so the instrumentation cost model can charge virtual cycles.
"""

from __future__ import annotations

from typing import Hashable, Iterator


class MaxPriorityQueue:
    """Max-heap keyed by float priority over hashable items."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Hashable]] = []
        self._pos: dict[Hashable, int] = {}
        self._tiebreak = 0
        #: Heap sift steps since last reset (for the cost model).
        self.op_count = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._pos

    def reset_op_count(self) -> int:
        count = self.op_count
        self.op_count = 0
        return count

    # --------------------------------------------------------------- internal

    def _swap(self, i: int, j: int) -> None:
        self._heap[i], self._heap[j] = self._heap[j], self._heap[i]
        self._pos[self._heap[i][2]] = i
        self._pos[self._heap[j][2]] = j

    def _less(self, i: int, j: int) -> bool:
        # Max-heap: "less" means lower priority; ties broken by insertion
        # order (older entries win) so results are deterministic.
        pi, ti, _ = self._heap[i]
        pj, tj, _ = self._heap[j]
        if pi != pj:
            return pi < pj
        return ti > tj

    def _sift_up(self, idx: int) -> None:
        while idx > 0:
            parent = (idx - 1) // 2
            self.op_count += 1
            if self._less(parent, idx):
                self._swap(parent, idx)
                idx = parent
            else:
                break

    def _sift_down(self, idx: int) -> None:
        n = len(self._heap)
        while True:
            left = 2 * idx + 1
            right = left + 1
            largest = idx
            self.op_count += 1
            if left < n and self._less(largest, left):
                largest = left
            if right < n and self._less(largest, right):
                largest = right
            if largest == idx:
                break
            self._swap(idx, largest)
            idx = largest

    # -------------------------------------------------------------------- api

    def push(self, item: Hashable, priority: float) -> None:
        """Insert ``item`` with ``priority``; re-pushing updates the priority."""
        if item in self._pos:
            self.update(item, priority)
            return
        self._tiebreak += 1
        self._heap.append((float(priority), self._tiebreak, item))
        idx = len(self._heap) - 1
        self._pos[item] = idx
        self._sift_up(idx)

    def update(self, item: Hashable, priority: float) -> None:
        """Change the priority of an item already in the queue."""
        idx = self._pos[item]
        old_priority, tiebreak, _ = self._heap[idx]
        self._heap[idx] = (float(priority), tiebreak, item)
        if priority > old_priority:
            self._sift_up(idx)
        else:
            self._sift_down(idx)

    def pop(self) -> tuple[Hashable, float]:
        """Remove and return ``(item, priority)`` with the highest priority."""
        if not self._heap:
            raise IndexError("pop from empty priority queue")
        priority, _, item = self._heap[0]
        last = self._heap.pop()
        del self._pos[item]
        if self._heap:
            self._heap[0] = last
            self._pos[last[2]] = 0
            self._sift_down(0)
        return (item, priority)

    def peek(self) -> tuple[Hashable, float]:
        if not self._heap:
            raise IndexError("peek at empty priority queue")
        priority, _, item = self._heap[0]
        return (item, priority)

    def peek_top(self, k: int) -> list[tuple[Hashable, float]]:
        """The ``k`` highest-priority entries, best first, without removal."""
        ordered = sorted(self._heap, key=lambda e: (-e[0], e[1]))
        return [(item, priority) for priority, _, item in ordered[:k]]

    def remove(self, item: Hashable) -> float:
        """Remove an arbitrary item, returning its priority."""
        idx = self._pos.pop(item)
        priority = self._heap[idx][0]
        last = self._heap.pop()
        if idx < len(self._heap):
            self._heap[idx] = last
            self._pos[last[2]] = idx
            self._sift_down(idx)
            self._sift_up(idx)
        return priority

    def priority_of(self, item: Hashable) -> float:
        return self._heap[self._pos[item]][0]

    def items(self) -> Iterator[tuple[Hashable, float]]:
        """All entries in descending priority order (non-destructive)."""
        ordered = sorted(self._heap, key=lambda e: (-e[0], e[1]))
        for priority, _, item in ordered:
            yield (item, priority)

    def total_priority(self) -> float:
        """Sum of all priorities (used for the unsearched-share termination test)."""
        return sum(p for p, _, _ in self._heap)

    def check_invariants(self) -> None:
        """Assert heap order and index consistency (for property tests)."""
        for idx in range(1, len(self._heap)):
            parent = (idx - 1) // 2
            assert not self._less(parent, idx), "heap property violated"
        assert len(self._pos) == len(self._heap), "index size mismatch"
        for item, idx in self._pos.items():
            assert self._heap[idx][2] == item, "index points at wrong slot"
