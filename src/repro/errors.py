"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch library failures without masking programming errors
(``TypeError``/``ValueError`` raised by misuse are still plain built-ins
where that is the idiomatic choice).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class AddressSpaceError(ReproError):
    """Raised for invalid segment layouts or out-of-segment addresses."""


class AllocationError(AddressSpaceError):
    """Raised when the simulated heap cannot satisfy an allocation."""


class ObjectMapError(ReproError):
    """Raised for inconsistent object registrations (overlaps, unknown frees)."""


class CacheConfigError(ReproError):
    """Raised for invalid cache geometries (non-power-of-two sizes, etc.)."""


class CounterError(ReproError):
    """Raised for invalid hardware-counter programming."""


class SimulationError(ReproError):
    """Raised when the simulation engine reaches an inconsistent state."""


class SearchError(ReproError):
    """Raised when the n-way search is configured or driven incorrectly."""


class WorkloadError(ReproError):
    """Raised for invalid workload parameters."""


class TraceError(ReproError):
    """Raised for malformed trace files."""
