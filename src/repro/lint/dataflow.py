"""Intraprocedural dataflow analysis for ``reprolint`` (v2 engine).

The v1 rules are single-expression pattern matches: they see
``addr / 2`` but not ``tmp = addr; tmp / 2``. This module gives rules
real flow information, still as a pure AST pass (no imports of checked
code):

* :func:`build_cfg` — a control-flow graph over one statement list
  (function body or module body). Compound statements contribute
  *header atoms* (the ``if``/``while`` test, the ``for`` iterable) to
  blocks; their bodies become successor blocks, so every simple
  statement lands in exactly one block and branch/loop/exception edges
  are explicit.
* :class:`ReachingDefinitions` — the classic gen/kill worklist over the
  CFG. A :class:`Definition` is one binding occurrence of a name
  (assignment, loop target, ``with ... as``, import, parameter, ...).
* :meth:`ReachingDefinitions.use_defs` — use-def chains: for every
  ``Name``/``self.attr`` *load* in the region, the set of definitions
  that may reach it.
* :class:`TaintAnalysis` — a two-point taint lattice propagated to a
  fixpoint over the def-use graph. Rules provide a *seed* predicate
  (which expressions introduce taint) and the analysis answers whether
  a given use may carry a tainted value through any chain of
  assignments and aliases.

Names are tracked as plain identifiers plus ``self.attr`` pseudo-names
(the same convention RPL104 established); attribute/subscript stores on
anything else are mutations of an object, not bindings, and are ignored.
The analysis is deliberately intraprocedural and may-reaching
(conservative over branches); calls neither transfer nor remove taint
unless the rule's seed/sanitiser predicates say so.
"""

from __future__ import annotations

import ast
import itertools
from collections.abc import Callable, Iterable, Iterator
from dataclasses import dataclass, field

__all__ = [
    "Definition",
    "BasicBlock",
    "CFG",
    "build_cfg",
    "ReachingDefinitions",
    "TaintAnalysis",
    "binding_names",
    "target_key",
    "load_names",
    "use_exprs",
]


# ----------------------------------------------------------------- names

def target_key(node: ast.AST) -> str | None:
    """Trackable key for a binding/use site: ``name`` or ``self.attr``."""
    if isinstance(node, ast.Name):
        return node.id
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return f"self.{node.attr}"
    return None


def _pattern_names(pattern: ast.pattern) -> Iterator[str]:
    """Capture names bound by a ``match`` case pattern."""
    for sub in ast.walk(pattern):
        if isinstance(sub, (ast.MatchAs, ast.MatchStar)) and sub.name:
            yield sub.name
        elif isinstance(sub, ast.MatchMapping) and sub.rest:
            yield sub.rest


def _target_names(node: ast.AST) -> Iterator[str]:
    """Names bound by one assignment target (tuples/lists/starred flatten)."""
    if isinstance(node, (ast.Tuple, ast.List)):
        for elt in node.elts:
            yield from _target_names(elt)
    elif isinstance(node, ast.Starred):
        yield from _target_names(node.value)
    else:
        key = target_key(node)
        if key is not None:
            yield key


def use_exprs(atom: ast.AST) -> list[ast.AST]:
    """The expression subtrees an atom *evaluates in its own block*.

    Header atoms (``For``, ``withitem``, handlers) contribute only their
    header expressions — their bodies live in successor blocks — and
    nested function/class definitions are opaque (their bodies run in a
    different scope, later).
    """
    if isinstance(atom, (ast.For, ast.AsyncFor)):
        return [atom.iter]
    if isinstance(atom, ast.withitem):
        return [atom.context_expr]
    if isinstance(atom, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return []
    if isinstance(atom, ast.ExceptHandler):
        return [atom.type] if atom.type is not None else []
    if isinstance(atom, ast.match_case):
        return []
    return [atom]


def binding_names(stmt: ast.AST) -> list[str]:
    """Every name an *atom* binds (its gen set, before kill semantics)."""
    names: list[str] = []
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            names.extend(_target_names(target))
    elif isinstance(stmt, ast.AugAssign):
        names.extend(_target_names(stmt.target))
    elif isinstance(stmt, ast.AnnAssign):
        if stmt.value is not None or isinstance(stmt.target, ast.Name):
            names.extend(_target_names(stmt.target))
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        # Header atom: binds the loop target each trip.
        names.extend(_target_names(stmt.target))
    elif isinstance(stmt, ast.withitem):
        if stmt.optional_vars is not None:
            names.extend(_target_names(stmt.optional_vars))
    elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
        for alias in stmt.names:
            bound = alias.asname or alias.name.split(".")[0]
            if bound != "*":
                names.append(bound)
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        names.append(stmt.name)
    elif isinstance(stmt, ast.ExceptHandler):
        if stmt.name:
            names.append(stmt.name)
    elif isinstance(stmt, ast.match_case):
        names.extend(_pattern_names(stmt.pattern))
    # Walrus targets bind wherever the atom's own expressions appear.
    for expr in use_exprs(stmt):
        for sub in ast.walk(expr):
            if isinstance(sub, ast.NamedExpr):
                names.extend(_target_names(sub.target))
    return names


def _value_exprs(stmt: ast.AST) -> list[ast.AST]:
    """The right-hand-side expression(s) an atom evaluates (for taint)."""
    if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
        return [stmt.value] if stmt.value is not None else []
    if isinstance(stmt, ast.For):
        return [stmt.iter]
    if isinstance(stmt, ast.withitem):
        return [stmt.context_expr]
    if isinstance(stmt, ast.match_case):
        return []
    return []


def load_names(expr: ast.AST) -> set[str]:
    """Trackable names *read* inside ``expr`` (Name loads + self.attr)."""
    out: set[str] = set()
    for sub in ast.walk(expr):
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
            out.add(sub.id)
        elif isinstance(sub, ast.Attribute) and isinstance(sub.ctx, ast.Load):
            key = target_key(sub)
            if key is not None:
                out.add(key)
    return out


# ------------------------------------------------------------------- CFG

class Definition:
    """One binding occurrence of a name (identity-hashed)."""

    __slots__ = ("name", "node", "lineno", "index")

    def __init__(self, name: str, node: ast.AST, index: int) -> None:
        self.name = name
        self.node = node
        self.lineno = getattr(node, "lineno", 0)
        self.index = index

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Definition({self.name!r}, line {self.lineno})"


@dataclass
class BasicBlock:
    """Straight-line sequence of atoms with explicit successor edges."""

    bid: int
    atoms: list[ast.AST] = field(default_factory=list)
    succs: set[int] = field(default_factory=set)
    preds: set[int] = field(default_factory=set)


class CFG:
    """Control-flow graph over one statement region."""

    def __init__(self) -> None:
        self.blocks: dict[int, BasicBlock] = {}
        self.entry: int = self._new_block().bid
        self.exit: int = self._new_block().bid

    def _new_block(self) -> BasicBlock:
        block = BasicBlock(len(self.blocks))
        self.blocks[block.bid] = block
        return block

    def add_edge(self, src: int, dst: int) -> None:
        self.blocks[src].succs.add(dst)
        self.blocks[dst].preds.add(src)

    def reachable(self) -> list[int]:
        """Block ids reachable from entry, in a stable BFS order."""
        seen = [self.entry]
        seen_set = {self.entry}
        cursor = 0
        while cursor < len(seen):
            for succ in sorted(self.blocks[seen[cursor]].succs):
                if succ not in seen_set:
                    seen_set.add(succ)
                    seen.append(succ)
            cursor += 1
        return seen

    def atoms(self) -> Iterator[tuple[int, ast.AST]]:
        """(block id, atom) over reachable blocks, in flow order."""
        for bid in self.reachable():
            for atom in self.blocks[bid].atoms:
                yield bid, atom


class _CFGBuilder:
    """Recursive-descent CFG construction over a statement list."""

    def __init__(self) -> None:
        self.cfg = CFG()
        #: (loop-header block, loop-exit block) stack for break/continue.
        self._loops: list[tuple[int, int]] = []

    def build(self, body: list[ast.stmt]) -> CFG:
        start = self.cfg._new_block()
        self.cfg.add_edge(self.cfg.entry, start.bid)
        end = self._body(body, start.bid)
        if end is not None:
            self.cfg.add_edge(end, self.cfg.exit)
        return self.cfg

    # ``cur`` is the open block statements append to; a handler returns
    # the block falling through to the next statement, or None when
    # control cannot fall through (return/raise/break/continue).

    def _body(self, stmts: list[ast.stmt], cur: int | None) -> int | None:
        for stmt in stmts:
            if cur is None:
                # Unreachable code after a terminator: park it in a
                # fresh, never-linked block so its atoms still exist
                # (reachability queries then classify them correctly).
                cur = self.cfg._new_block().bid
                self._statement(stmt, cur)
                cur = None
                continue
            cur = self._statement(stmt, cur)
        return cur

    def _statement(self, stmt: ast.stmt, cur: int) -> int | None:
        cfg = self.cfg
        if isinstance(stmt, ast.If):
            cfg.blocks[cur].atoms.append(stmt.test)
            join = cfg._new_block().bid
            then_entry = cfg._new_block().bid
            cfg.add_edge(cur, then_entry)
            then_end = self._body(stmt.body, then_entry)
            if then_end is not None:
                cfg.add_edge(then_end, join)
            if stmt.orelse:
                else_entry = cfg._new_block().bid
                cfg.add_edge(cur, else_entry)
                else_end = self._body(stmt.orelse, else_entry)
                if else_end is not None:
                    cfg.add_edge(else_end, join)
            else:
                cfg.add_edge(cur, join)
            return join if cfg.blocks[join].preds else None
        if isinstance(stmt, ast.While):
            header = cfg._new_block().bid
            cfg.add_edge(cur, header)
            cfg.blocks[header].atoms.append(stmt.test)
            exit_blk = cfg._new_block().bid
            body_entry = cfg._new_block().bid
            cfg.add_edge(header, body_entry)
            is_infinite = (
                isinstance(stmt.test, ast.Constant) and bool(stmt.test.value)
            )
            if not is_infinite:
                cfg.add_edge(header, exit_blk)
            self._loops.append((header, exit_blk))
            body_end = self._body(stmt.body, body_entry)
            self._loops.pop()
            if body_end is not None:
                cfg.add_edge(body_end, header)
            if stmt.orelse and cfg.blocks[exit_blk].preds:
                else_end = self._body(stmt.orelse, exit_blk)
                if else_end is None:
                    return None
                return else_end
            return exit_blk if cfg.blocks[exit_blk].preds else None
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            header = cfg._new_block().bid
            cfg.add_edge(cur, header)
            # The For node itself is the header atom: it evaluates
            # ``iter`` and binds ``target`` each trip.
            cfg.blocks[header].atoms.append(stmt)
            exit_blk = cfg._new_block().bid
            body_entry = cfg._new_block().bid
            cfg.add_edge(header, body_entry)
            cfg.add_edge(header, exit_blk)
            self._loops.append((header, exit_blk))
            body_end = self._body(stmt.body, body_entry)
            self._loops.pop()
            if body_end is not None:
                cfg.add_edge(body_end, header)
            if stmt.orelse:
                return self._body(stmt.orelse, exit_blk)
            return exit_blk
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                cfg.blocks[cur].atoms.append(item)
            return self._body(stmt.body, cur)
        if isinstance(stmt, (ast.Try, getattr(ast, "TryStar", ast.Try))):
            return self._try(stmt, cur)
        if isinstance(stmt, ast.Match):
            cfg.blocks[cur].atoms.append(stmt.subject)
            join = cfg._new_block().bid
            any_fall = False
            for case in stmt.cases:
                case_entry = cfg._new_block().bid
                cfg.add_edge(cur, case_entry)
                cfg.blocks[case_entry].atoms.append(case)
                case_end = self._body(case.body, case_entry)
                if case_end is not None:
                    cfg.add_edge(case_end, join)
                    any_fall = True
            # No case may match: control continues past the statement.
            cfg.add_edge(cur, join)
            any_fall = True
            return join if any_fall else None
        if isinstance(stmt, (ast.Return, ast.Raise)):
            cfg.blocks[cur].atoms.append(stmt)
            cfg.add_edge(cur, cfg.exit)
            return None
        if isinstance(stmt, ast.Break):
            cfg.blocks[cur].atoms.append(stmt)
            if self._loops:
                cfg.add_edge(cur, self._loops[-1][1])
            return None
        if isinstance(stmt, ast.Continue):
            cfg.blocks[cur].atoms.append(stmt)
            if self._loops:
                cfg.add_edge(cur, self._loops[-1][0])
            return None
        # Simple statement (incl. nested function/class defs, which are
        # opaque single atoms binding their name).
        cfg.blocks[cur].atoms.append(stmt)
        return cur

    def _try(self, stmt: ast.Try, cur: int) -> int | None:
        cfg = self.cfg
        body_entry = cfg._new_block().bid
        cfg.add_edge(cur, body_entry)
        body_end = self._body(stmt.body, body_entry)
        after = cfg._new_block().bid
        # Conservative exception model: any block of the try body may
        # raise into any handler, so each handler is a successor of
        # every body block (definitions before the failing point reach
        # the handler; later ones may not — may-analysis keeps both).
        body_blocks = self._blocks_between(body_entry, body_end)
        handler_falls = False
        for handler in stmt.handlers:
            h_entry = cfg._new_block().bid
            cfg.blocks[h_entry].atoms.append(handler)
            for bid in body_blocks:
                cfg.add_edge(bid, h_entry)
            h_end = self._body(handler.body, h_entry)
            if h_end is not None:
                cfg.add_edge(h_end, after)
                handler_falls = True
        else_end = body_end
        if stmt.orelse and body_end is not None:
            else_end = self._body(stmt.orelse, body_end)
        if else_end is not None:
            cfg.add_edge(else_end, after)
        if not cfg.blocks[after].preds and not handler_falls:
            fall: int | None = None
        else:
            fall = after
        if stmt.finalbody:
            if fall is None:
                fall = after  # finally runs on every path that continues
            return self._body(stmt.finalbody, fall)
        return fall

    def _blocks_between(self, entry: int, end: int | None) -> list[int]:
        """Blocks reachable from ``entry`` (the try body's blocks)."""
        seen = [entry]
        seen_set = {entry}
        cursor = 0
        while cursor < len(seen):
            for succ in sorted(self.cfg.blocks[seen[cursor]].succs):
                if succ not in seen_set and succ != self.cfg.exit:
                    seen_set.add(succ)
                    seen.append(succ)
            cursor += 1
        return seen


def build_cfg(body: list[ast.stmt] | ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """CFG for a function body (or any statement list)."""
    if isinstance(body, (ast.FunctionDef, ast.AsyncFunctionDef)):
        body = body.body
    return _CFGBuilder().build(body)


# ------------------------------------------------- reaching definitions

class ReachingDefinitions:
    """Reaching-definitions worklist over a :class:`CFG`.

    ``params`` names are synthetic entry definitions (a function's
    arguments). After :meth:`compute`, :attr:`block_in` maps each block
    id to ``{name: frozenset[Definition]}`` at block entry.
    """

    def __init__(self, cfg: CFG, params: Iterable[str] = ()) -> None:
        self.cfg = cfg
        self._counter = itertools.count()
        self.param_defs: dict[str, Definition] = {}
        self.block_in: dict[int, dict[str, frozenset[Definition]]] = {}
        self._atom_defs: dict[int, list[Definition]] = {}
        self._params = list(params)
        self.compute()

    def atom_definitions(self, atom: ast.AST) -> list[Definition]:
        """The :class:`Definition` objects one atom creates (cached)."""
        found = self._atom_defs.get(id(atom))
        if found is None:
            found = [
                Definition(name, atom, next(self._counter))
                for name in binding_names(atom)
            ]
            self._atom_defs[id(atom)] = found
        return found

    def compute(self) -> None:
        cfg = self.cfg
        entry_env: dict[str, frozenset[Definition]] = {}
        for name in self._params:
            definition = Definition(name, ast.arg(arg=name), next(self._counter))
            self.param_defs[name] = definition
            entry_env[name] = frozenset({definition})
        out: dict[int, dict[str, frozenset[Definition]]] = {
            bid: {} for bid in cfg.blocks
        }
        self.block_in = {bid: {} for bid in cfg.blocks}
        self.block_in[cfg.entry] = dict(entry_env)
        out[cfg.entry] = dict(entry_env)
        work = list(cfg.reachable())
        while work:
            bid = work.pop(0)
            if bid != cfg.entry:
                merged: dict[str, set[Definition]] = {}
                for pred in self.cfg.blocks[bid].preds:
                    for name, defs in out[pred].items():
                        merged.setdefault(name, set()).update(defs)
                self.block_in[bid] = {
                    name: frozenset(defs) for name, defs in merged.items()
                }
            env = dict(self.block_in[bid])
            for atom in cfg.blocks[bid].atoms:
                for definition in self.atom_definitions(atom):
                    env[definition.name] = frozenset({definition})
            if env != out[bid]:
                out[bid] = env
                for succ in sorted(cfg.blocks[bid].succs):
                    if succ not in work:
                        work.append(succ)

    def defs_before(self, bid: int, atom: ast.AST) -> dict[str, frozenset[Definition]]:
        """The reaching-definition environment just before ``atom``."""
        env = dict(self.block_in.get(bid, {}))
        for candidate in self.cfg.blocks[bid].atoms:
            if candidate is atom:
                return env
            for definition in self.atom_definitions(candidate):
                env[definition.name] = frozenset({definition})
        return env

    def use_defs(self) -> dict[int, tuple[ast.AST, frozenset[Definition]]]:
        """Use-def chains: ``id(load node) -> (node, reaching defs)``.

        Covers ``Name`` loads and ``self.attr`` loads inside every
        reachable atom's value expressions.
        """
        chains: dict[int, tuple[ast.AST, frozenset[Definition]]] = {}
        for bid, atom in self.cfg.atoms():
            env = self.defs_before(bid, atom)
            for expr in use_exprs(atom):
                for sub in ast.walk(expr):
                    key: str | None = None
                    if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                        key = sub.id
                    elif isinstance(sub, ast.Attribute) and isinstance(
                        sub.ctx, ast.Load
                    ):
                        key = target_key(sub)
                    if key is not None and key in env:
                        chains[id(sub)] = (sub, env[key])
        return chains


# ------------------------------------------------------------------ taint

class TaintAnalysis:
    """Two-point taint lattice over one function's dataflow.

    ``seed`` decides whether an *expression node* introduces taint by
    itself (e.g. an address-shaped identifier); ``declassify`` marks
    expression nodes whose subtree stops propagating (e.g. ``len(x)``
    — a count derived from an address array is not an address). Taint
    flows through assignments, aliases, subscripts of tainted
    containers, arithmetic and tuple packing, to a fixpoint over the
    definitions' dependency graph.
    """

    def __init__(
        self,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        seed: Callable[[ast.AST], bool],
        declassify: Callable[[ast.AST], bool] | None = None,
    ) -> None:
        self.func = func
        self.seed = seed
        self.declassify = declassify or (lambda node: False)
        self.cfg = build_cfg(func)
        params = [a.arg for a in (
            *func.args.posonlyargs, *func.args.args, *func.args.kwonlyargs
        )]
        if func.args.vararg:
            params.append(func.args.vararg.arg)
        if func.args.kwarg:
            params.append(func.args.kwarg.arg)
        self.rd = ReachingDefinitions(self.cfg, params=params)
        self.tainted_defs: set[Definition] = set()
        self._compute()

    # A definition's taint comes from its atom's value expression(s).

    def _expr_tainted(
        self, expr: ast.AST, env: dict[str, frozenset[Definition]]
    ) -> bool:
        """Whether ``expr`` may evaluate to a tainted value."""
        if self.declassify(expr):
            return False
        if self.seed(expr):
            return True
        if isinstance(expr, (ast.Name, ast.Attribute)):
            key = target_key(expr)
            if key is not None:
                defs = env.get(key, frozenset())
                return any(d in self.tainted_defs for d in defs)
            if isinstance(expr, ast.Attribute):
                # ``obj.attr`` of a tainted object stays tainted.
                return self._expr_tainted(expr.value, env)
            return False
        if isinstance(expr, ast.Subscript):
            return self._expr_tainted(expr.value, env)
        if isinstance(expr, ast.BinOp):
            return self._expr_tainted(expr.left, env) or self._expr_tainted(
                expr.right, env
            )
        if isinstance(expr, ast.UnaryOp):
            return self._expr_tainted(expr.operand, env)
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            return any(self._expr_tainted(e, env) for e in expr.elts)
        if isinstance(expr, ast.Starred):
            return self._expr_tainted(expr.value, env)
        if isinstance(expr, ast.IfExp):
            return self._expr_tainted(expr.body, env) or self._expr_tainted(
                expr.orelse, env
            )
        if isinstance(expr, ast.NamedExpr):
            return self._expr_tainted(expr.value, env)
        if isinstance(expr, ast.Call):
            # Method calls on a tainted receiver (e.g. ``lines.tolist()``,
            # ``addrs.astype(...)``) keep the taint; other calls are
            # boundaries (the rule's declassify covers count-reductions,
            # and unknown calls are assumed clean to avoid fp storms).
            if isinstance(expr.func, ast.Attribute):
                return self._expr_tainted(expr.func.value, env)
            return False
        # Compare/BoolOp results are booleans — never address-like.
        return False

    def _compute(self) -> None:
        changed = True
        while changed:
            changed = False
            for bid, atom in self.cfg.atoms():
                env = self.rd.defs_before(bid, atom)
                values = _value_exprs(atom)
                if not values:
                    continue
                tainted = any(self._expr_tainted(v, env) for v in values)
                if not tainted:
                    continue
                for definition in self.rd.atom_definitions(atom):
                    if definition not in self.tainted_defs:
                        self.tainted_defs.add(definition)
                        changed = True

    def expr_tainted(
        self, expr: ast.AST, env: dict[str, frozenset[Definition]]
    ) -> bool:
        """Whether an arbitrary expression may evaluate tainted (public
        entry point for rules checking call arguments and the like)."""
        return self._expr_tainted(expr, env)

    def tainted_use(
        self, node: ast.AST, env: dict[str, frozenset[Definition]]
    ) -> bool:
        """Whether one use-site expression carries taint *via dataflow*
        (i.e. through at least one definition, not just syntactically)."""
        if isinstance(node, (ast.Name, ast.Attribute)):
            key = target_key(node)
            if key is not None:
                defs = env.get(key, frozenset())
                return any(d in self.tainted_defs for d in defs)
        return False

    def iter_atoms_with_env(
        self,
    ) -> Iterator[tuple[ast.AST, dict[str, frozenset[Definition]]]]:
        """(atom, reaching environment) for every reachable atom."""
        for bid, atom in self.cfg.atoms():
            yield atom, self.rd.defs_before(bid, atom)
