"""Baseline snapshots: land new rule families without a flag-day.

A baseline is a JSON snapshot of the violations a tree is *known* to
have. ``repro lint --write-baseline lint-baseline.json`` records them;
``repro lint --baseline lint-baseline.json`` then reports only findings
**not** in the snapshot, so a new rule family can gate CI immediately
while the pre-existing debt is burned down incrementally.

Violations are matched by a *fingerprint* of ``(path, code, message)``
deliberately excluding the line number — unrelated edits move code
around, and a baseline that decays on every reflow would train people
to regenerate (and silently re-absorb regressions) instead of fixing.
Identical violations are counted: if the baseline holds two instances
of a fingerprint and a third appears, the third is reported.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from pathlib import Path
from typing import Sequence

from repro.lint.framework import Violation

__all__ = ["fingerprint", "write_baseline", "load_baseline", "apply_baseline"]

_BASELINE_VERSION = 1


def fingerprint(violation: Violation) -> str:
    """Stable identity of a violation, independent of its line number."""
    raw = f"{violation.path}\x00{violation.code}\x00{violation.message}"
    return hashlib.sha256(raw.encode()).hexdigest()[:16]


def write_baseline(
    violations: Sequence[Violation], path: str | Path
) -> int:
    """Snapshot ``violations`` to ``path``; returns the entry count."""
    counts = Counter(fingerprint(v) for v in violations)
    detail: dict[str, dict[str, object]] = {}
    for violation in violations:
        fp = fingerprint(violation)
        detail.setdefault(
            fp,
            {
                "path": violation.path,
                "code": violation.code,
                "message": violation.message,
                "count": counts[fp],
            },
        )
    payload = {"version": _BASELINE_VERSION, "entries": detail}
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return len(detail)


def load_baseline(path: str | Path) -> dict[str, int]:
    """Fingerprint -> allowed count, from a baseline file."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if payload.get("version") != _BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline version {payload.get('version')!r} "
            f"in {path} (expected {_BASELINE_VERSION})"
        )
    entries = payload.get("entries", {})
    return {fp: int(entry.get("count", 1)) for fp, entry in entries.items()}


def apply_baseline(
    violations: Sequence[Violation], allowed: dict[str, int]
) -> tuple[list[Violation], int]:
    """Drop baselined violations; return (new violations, matched count).

    Each baseline entry absorbs at most its recorded count, so *extra*
    instances of a known defect still fail the run.
    """
    budget = dict(allowed)
    fresh: list[Violation] = []
    matched = 0
    for violation in violations:
        fp = fingerprint(violation)
        if budget.get(fp, 0) > 0:
            budget[fp] -= 1
            matched += 1
        else:
            fresh.append(violation)
    return fresh, matched
