"""Command-line entry point for ``reprolint``.

Invoked as ``python -m repro.lint <paths>`` or ``repro lint <paths>``.
Exit status: 0 clean, 1 violations found, 2 usage error.

Scoping and adoption aids::

    repro lint --changed                 # only files changed vs HEAD
    repro lint --changed --diff-base origin/main
    repro lint --write-baseline lint-baseline.json src/
    repro lint --baseline lint-baseline.json src/   # only NEW findings
    repro lint --format sarif src/       # GitHub code-scanning upload
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path

from repro.lint.baseline import apply_baseline, load_baseline, write_baseline
from repro.lint.framework import (
    all_rules,
    collect_files,
    format_human,
    format_json,
    format_sarif,
    run_lint_report,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "AST-based invariant linter: determinism (RPL1xx), cache-key "
            "completeness (RPL2xx), kernel-contract parity (RPL3xx), "
            "stats purity (RPL4xx), snapshot parity (RPL5xx), stream "
            "fingerprints (RPL6xx), process/fork safety (RPL7xx), "
            "dataflow taint (RPL8xx)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the src/ tree this "
        "installation runs from)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        nargs="+",
        metavar="CODE",
        default=None,
        help="only report codes with these prefixes, e.g. RPL1 RPL203",
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help="lint only files changed versus --diff-base (plus untracked "
        "files), intersected with the given paths",
    )
    parser.add_argument(
        "--diff-base",
        default="HEAD",
        metavar="REF",
        help="git ref --changed diffs against (default: HEAD)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="suppress violations recorded in this baseline snapshot; "
        "only new findings are reported",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        default=None,
        help="write the current violations to FILE as a baseline "
        "snapshot and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule and exit",
    )
    return parser


def _default_paths() -> list[str]:
    # The package's own source tree: src/repro/lint/cli.py -> src/
    src_root = Path(__file__).resolve().parent.parent.parent
    return [str(src_root)]


def _changed_files(diff_base: str) -> list[Path] | None:
    """Python files changed vs ``diff_base`` plus untracked, or None on
    git failure (caller reports the usage error)."""
    try:
        diff = subprocess.run(
            ["git", "diff", "--name-only", "-z", diff_base, "--"],
            capture_output=True,
            text=True,
            check=True,
        )
        untracked = subprocess.run(
            ["git", "ls-files", "--others", "--exclude-standard", "-z"],
            capture_output=True,
            text=True,
            check=True,
        )
        toplevel = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True,
            text=True,
            check=True,
        )
    except (OSError, subprocess.CalledProcessError):
        return None
    root = Path(toplevel.stdout.strip())
    names = [
        n
        for n in (diff.stdout + "\0" + untracked.stdout).split("\0")
        if n.endswith(".py")
    ]
    return [root / n for n in dict.fromkeys(names) if (root / n).exists()]


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.name}: {rule.description}")
        return 0
    paths = args.paths or _default_paths()
    if args.changed:
        changed = _changed_files(args.diff_base)
        if changed is None:
            print(
                f"repro lint: git diff against {args.diff_base!r} failed "
                "(not a git checkout?)",
                file=sys.stderr,
            )
            return 2
        scope = {f.resolve() for f in collect_files(paths)}
        files = [f for f in changed if f.resolve() in scope]
        if not files:
            print("clean: 0 changed file(s), 0 violations")
            return 0
        paths = [str(f) for f in files]
    files = collect_files(paths)
    if not files:
        print(f"repro lint: no Python files under {' '.join(paths)}", file=sys.stderr)
        return 2
    report = run_lint_report(paths, select=args.select)
    violations = report.violations
    if args.write_baseline:
        entries = write_baseline(violations, args.write_baseline)
        print(
            f"wrote baseline {args.write_baseline}: {entries} entr"
            f"{'y' if entries == 1 else 'ies'} "
            f"({len(violations)} violation(s))"
        )
        return 0
    baseline_note = ""
    if args.baseline:
        try:
            allowed = load_baseline(args.baseline)
        except (OSError, ValueError, KeyError) as exc:
            print(f"repro lint: cannot read baseline: {exc}", file=sys.stderr)
            return 2
        violations, matched = apply_baseline(violations, allowed)
        baseline_note = f" ({matched} baselined finding(s) suppressed)"
    if args.format == "json":
        print(format_json(violations, report.files_checked, report.suppressions))
    elif args.format == "sarif":
        print(format_sarif(violations, report.files_checked))
    else:
        print(format_human(violations, report.files_checked) + baseline_note)
    return 1 if violations else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
