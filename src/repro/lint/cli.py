"""Command-line entry point for ``reprolint``.

Invoked as ``python -m repro.lint <paths>`` or ``repro lint <paths>``.
Exit status: 0 clean, 1 violations found, 2 usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.lint.framework import (
    all_rules,
    collect_files,
    format_human,
    format_json,
    run_lint,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "AST-based invariant linter: determinism (RPL1xx), cache-key "
            "completeness (RPL2xx), kernel-contract parity (RPL3xx), "
            "stats purity (RPL4xx)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the src/ tree this "
        "installation runs from)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        nargs="+",
        metavar="CODE",
        default=None,
        help="only report codes with these prefixes, e.g. RPL1 RPL203",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule and exit",
    )
    return parser


def _default_paths() -> list[str]:
    # The package's own source tree: src/repro/lint/cli.py -> src/
    src_root = Path(__file__).resolve().parent.parent.parent
    return [str(src_root)]


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.name}: {rule.description}")
        return 0
    paths = args.paths or _default_paths()
    files = collect_files(paths)
    if not files:
        print(f"repro lint: no Python files under {' '.join(paths)}", file=sys.stderr)
        return 2
    violations = run_lint(paths, select=args.select)
    formatter = format_json if args.format == "json" else format_human
    print(formatter(violations, len(files)))
    return 1 if violations else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
