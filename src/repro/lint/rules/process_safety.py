"""Process/concurrency safety rules (RPL7xx).

The parallel runner fans grid cells out over ``ProcessPoolExecutor``
workers and asserts that every cell is a *pure function of its spec*.
The failure modes that break that promise are flow-sensitive — state
that looks innocent at its definition site becomes a hazard when a
worker touches it after the fork:

* ``RPL701`` — module-level mutable state written by worker-executed
  code. A dict/list/set at module scope mutated inside a function that
  a pool executes (directly, or through intra-module calls) diverges
  between parent and workers; so does the hidden memo of an
  ``lru_cache``-decorated function in the experiments package — the
  parent's warm cache is fork-copied and silently goes stale.
* ``RPL702`` — live RNG/cache/simulator objects crossing the fork
  boundary: submitting a lambda/closure, or passing an argument whose
  reaching definitions bind ``make_rng(...)`` / ``make_cache(...)`` /
  ``Simulator(...)`` and friends. Pickling a live Generator forks its
  stream; workers must rebuild from specs and seeds.
* ``RPL703`` — ``os.environ`` / ``os.getenv`` reads in result-scoped
  packages: environment state is inherited per process and invisible to
  the result-cache key, so two workers can compute different "cached"
  results for one key.
* ``RPL704`` — global registries mutated at call time (import-time
  population is the sanctioned pattern), and — the ``sys.modules``
  special case — ``import`` statements inside worker-executed function
  bodies, which re-enter the import machinery concurrently in every
  worker instead of once before the fork.

The submit graph is intra-module: functions named in ``pool.submit`` /
``pool.map`` calls plus everything they reach through same-module calls
(by simple name, methods included — conservative but auditable).
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from repro.lint.dataflow import TaintAnalysis
from repro.lint.framework import (
    ParsedModule,
    Rule,
    Violation,
    dotted_name,
    iter_calls,
    register,
)
from repro.lint.rules.determinism import RESULT_SCOPE

#: Mutating method names on builtin containers.
_MUTATORS = {
    "append", "add", "update", "setdefault", "extend", "insert",
    "pop", "popitem", "clear", "remove", "discard",
}

#: Constructors whose instances hold live per-process state that must
#: not be pickled across the fork boundary (rebuild from spec + seed).
_LIVE_STATE_CTORS = {
    "make_rng", "spawn_rng", "default_rng", "Generator", "RandomState",
    "make_cache", "SetAssociativeCache", "DirectMappedCache",
    "TwoLevelCache", "Simulator", "SimulationSession", "PerformanceMonitor",
}


def _is_mutable_literal(node: ast.AST) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.ListComp,
                         ast.SetComp, ast.DictComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name is not None and name.split(".")[-1] in (
            "dict", "list", "set", "defaultdict", "OrderedDict", "Counter",
            "deque",
        ):
            return True
    return False


def _is_cache_decorator(node: ast.AST) -> bool:
    target = node.func if isinstance(node, ast.Call) else node
    name = dotted_name(target)
    return name is not None and name.split(".")[-1] in ("lru_cache", "cache")


def _functions(tree: ast.Module) -> Iterator[ast.FunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


class _ModuleModel:
    """Shared per-module facts the RPL7xx rules query."""

    def __init__(self, module: ParsedModule) -> None:
        tree = module.tree
        #: Module-level mutable container names -> their binding lineno.
        self.mutable_globals: dict[str, int] = {}
        for stmt in tree.body:
            targets: list[ast.expr] = []
            value: ast.AST | None = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None or not _is_mutable_literal(value):
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    self.mutable_globals[target.id] = stmt.lineno

        #: Every function/method in the module by simple name. Methods
        #: share the namespace, and several classes may define the same
        #: method name — keep them all; the call-closure walk below is
        #: name-based and must stay conservative.
        self.functions: dict[str, list[ast.FunctionDef]] = {}
        for func in _functions(tree):
            self.functions.setdefault(func.name, []).append(func)

        #: Names bound to ProcessPoolExecutor instances.
        executors: set[str] = set()
        for node in ast.walk(tree):
            value = None
            bound: str | None = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                if isinstance(node.targets[0], ast.Name):
                    bound, value = node.targets[0].id, node.value
            elif isinstance(node, ast.withitem):
                if isinstance(node.optional_vars, ast.Name):
                    bound, value = node.optional_vars.id, node.context_expr
            if bound is None or not isinstance(value, ast.Call):
                continue
            name = dotted_name(value.func)
            if name is not None and name.split(".")[-1] == "ProcessPoolExecutor":
                executors.add(bound)

        #: submit/map calls on an executor, and the submitted callables.
        self.submissions: list[tuple[ast.Call, ast.expr]] = []
        for call in iter_calls(tree):
            func = call.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in ("submit", "map"):
                continue
            receiver_ok = (
                isinstance(func.value, ast.Name) and func.value.id in executors
            )
            if not receiver_ok and isinstance(func.value, ast.Call):
                name = dotted_name(func.value.func)
                receiver_ok = (
                    name is not None
                    and name.split(".")[-1] == "ProcessPoolExecutor"
                )
            if receiver_ok and call.args:
                self.submissions.append((call, call.args[0]))

        #: Worker-executed functions: submitted names + same-module call
        #: closure (simple names and method attrs, conservatively).
        entries = {
            target.id
            for _, target in self.submissions
            if isinstance(target, ast.Name)
        } | {
            target.attr
            for _, target in self.submissions
            if isinstance(target, ast.Attribute)
        }
        self.worker_closure: set[str] = set()
        work = [name for name in entries if name in self.functions]
        while work:
            name = work.pop()
            if name in self.worker_closure:
                continue
            self.worker_closure.add(name)
            for func in self.functions[name]:
                for call in iter_calls(func):
                    callee: str | None = None
                    if isinstance(call.func, ast.Name):
                        callee = call.func.id
                    elif isinstance(call.func, ast.Attribute):
                        callee = call.func.attr
                    if (
                        callee in self.functions
                        and callee not in self.worker_closure
                    ):
                        work.append(callee)

    def global_mutations(self, func: ast.FunctionDef) -> Iterator[tuple[ast.AST, str]]:
        """(site, name) for each write to a module-level mutable global."""
        declared_global: set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
        for node in ast.walk(func):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    # X[...] = ... or X.attr = ... mutates the global; a
                    # bare `X = ...` only rebinds unless declared global.
                    if isinstance(target, (ast.Subscript, ast.Attribute)):
                        base = target.value
                        if (
                            isinstance(base, ast.Name)
                            and base.id in self.mutable_globals
                        ):
                            yield node, base.id
                    elif (
                        isinstance(target, ast.Name)
                        and target.id in declared_global
                        and target.id in self.mutable_globals
                    ):
                        yield node, target.id
            elif isinstance(node, ast.Call):
                func_expr = node.func
                if (
                    isinstance(func_expr, ast.Attribute)
                    and func_expr.attr in _MUTATORS
                    and isinstance(func_expr.value, ast.Name)
                    and func_expr.value.id in self.mutable_globals
                ):
                    yield node, func_expr.value.id
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, ast.Subscript) and isinstance(
                        target.value, ast.Name
                    ):
                        if target.value.id in self.mutable_globals:
                            yield node, target.value.id


class _ProcessRule(Rule):
    """Base: builds one :class:`_ModuleModel` per module, shared via cache."""

    _models: dict[int, _ModuleModel] = {}

    @classmethod
    def model(cls, module: ParsedModule) -> _ModuleModel:
        key = id(module)
        found = _ProcessRule._models.get(key)
        if found is None:
            found = _ModuleModel(module)
            # Tiny cache, keyed by object identity; one entry per module
            # is enough because run_lint visits files sequentially.
            _ProcessRule._models.clear()
            _ProcessRule._models[key] = found
        return found


@register
class WorkerGlobalMutationRule(_ProcessRule):
    code = "RPL701"
    name = "worker-global-mutation"
    description = (
        "module-level mutable state written by worker-executed code "
        "(pool-submitted functions or lru_cache memos in experiments)"
    )

    def check_module(self, module: ParsedModule) -> Iterable[Violation]:
        model = self.model(module)
        for name in sorted(model.worker_closure):
            for func in model.functions[name]:
                for site, global_name in model.global_mutations(func):
                    yield module.violation(
                        site,
                        self.code,
                        f"worker-executed function '{name}' mutates "
                        f"module-level mutable '{global_name}' (bound at "
                        f"line {model.mutable_globals[global_name]}); "
                        "workers fork a copy, so writes diverge between "
                        "processes — pass state through the task spec or "
                        "compute at import time",
                    )
        if not module.in_packages("experiments"):
            return
        for func in _functions(module.tree):
            for decorator in func.decorator_list:
                if _is_cache_decorator(decorator):
                    yield module.violation(
                        decorator,
                        self.code,
                        f"'{func.name}' carries an lru_cache/cache memo — "
                        "module-level mutable state in a package executed by "
                        "pool workers; a fork-copied warm memo silently "
                        "serves stale values. Compute the value eagerly at "
                        "import time instead",
                    )


@register
class ForkCaptureRule(_ProcessRule):
    code = "RPL702"
    name = "live-object-across-fork"
    description = (
        "closure or live RNG/cache/simulator object submitted across the "
        "ProcessPoolExecutor fork boundary; pass specs and seeds instead"
    )

    def check_module(self, module: ParsedModule) -> Iterable[Violation]:
        model = self.model(module)
        if not model.submissions:
            return
        # Map each submission to its enclosing function for dataflow.
        for func in _functions(module.tree):
            local_calls = [
                (call, target)
                for call, target in model.submissions
                if self._encloses(func, call)
            ]
            if not local_calls:
                continue
            analysis: TaintAnalysis | None = None
            env_by_atom = None
            for call, target in local_calls:
                if isinstance(target, ast.Lambda):
                    yield module.violation(
                        call,
                        self.code,
                        "lambda submitted to a process pool: closures "
                        "capture live parent-process state (RNGs, caches) "
                        "that pickling silently snapshots; submit a "
                        "module-level function of plain data",
                    )
                    continue
                if isinstance(target, ast.Name) and self._is_local_def(
                    func, target.id
                ):
                    yield module.violation(
                        call,
                        self.code,
                        f"locally-defined function '{target.id}' submitted "
                        "to a process pool: its closure crosses the fork "
                        "boundary; submit a module-level function",
                    )
                if analysis is None:
                    analysis = TaintAnalysis(func, self._live_seed)
                    env_by_atom = list(analysis.iter_atoms_with_env())
                env = self._env_for(env_by_atom, call)
                if env is None:
                    continue
                for arg in [*call.args[1:], *[kw.value for kw in call.keywords]]:
                    if analysis.expr_tainted(arg, env):
                        yield module.violation(
                            arg,
                            self.code,
                            f"argument `{ast.unparse(arg)}` carries a live "
                            "RNG/cache/simulator object into a pool worker; "
                            "pickling snapshots its state at submit time — "
                            "pass the spec/seed and rebuild in the worker",
                        )

    @staticmethod
    def _live_seed(node: ast.AST) -> bool:
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            return (
                name is not None
                and name.split(".")[-1] in _LIVE_STATE_CTORS
            )
        return False

    @staticmethod
    def _encloses(func: ast.FunctionDef, node: ast.AST) -> bool:
        return any(sub is node for sub in ast.walk(func))

    @staticmethod
    def _is_local_def(func: ast.FunctionDef, name: str) -> bool:
        for node in ast.walk(func):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node is not func
                and node.name == name
            ):
                return True
        return False

    @staticmethod
    def _env_for(env_by_atom, call: ast.AST):
        for atom, env in env_by_atom:
            if any(sub is call for sub in ast.walk(atom)):
                return env
        return None


@register
class EnvReadRule(_ProcessRule):
    code = "RPL703"
    name = "env-read-in-result-path"
    description = (
        "os.environ / os.getenv read inside result-scoped code; "
        "environment state is invisible to the result-cache key"
    )

    def check_module(self, module: ParsedModule) -> Iterable[Violation]:
        if not module.in_packages(*RESULT_SCOPE):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute):
                name = dotted_name(node)
                if name == "os.environ":
                    yield module.violation(
                        node,
                        self.code,
                        "os.environ read in a result path: workers inherit "
                        "arbitrary parent environment, and the result-cache "
                        "key cannot see it — thread the value through the "
                        "task spec instead",
                    )
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name in ("os.getenv", "getenv"):
                    yield module.violation(
                        node,
                        self.code,
                        f"{name}() read in a result path: environment state "
                        "is per-process and unkeyed; thread the value "
                        "through the task spec instead",
                    )


@register
class CallTimeRegistryRule(_ProcessRule):
    code = "RPL704"
    name = "call-time-registry-mutation"
    description = (
        "global registry mutated at call time (import-time population is "
        "the pattern), or import statements inside worker-executed "
        "functions"
    )

    def check_module(self, module: ParsedModule) -> Iterable[Violation]:
        model = self.model(module)
        # Prong 1: call-time mutation of module registries in result
        # scope, outside the worker closure (inside it RPL701 already
        # reports the sharper finding).
        if module.in_packages(*RESULT_SCOPE):
            for func in _functions(module.tree):
                if func.name in model.worker_closure:
                    continue
                for site, global_name in model.global_mutations(func):
                    yield module.violation(
                        site,
                        self.code,
                        f"module-level registry '{global_name}' mutated at "
                        f"call time in '{func.name}'; registries must be "
                        "fully populated at import time so every process "
                        "(and fork) observes the same mapping",
                    )
        # Prong 2: call-time imports anywhere in the worker closure.
        for name in sorted(model.worker_closure):
            for func in model.functions[name]:
                yield from self._call_time_imports(module, name, func)

    def _call_time_imports(
        self, module: ParsedModule, name: str, func: ast.FunctionDef
    ) -> Iterator[Violation]:
        for node in ast.walk(func):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                modname = (
                    node.module
                    if isinstance(node, ast.ImportFrom)
                    else ", ".join(a.name for a in node.names)
                )
                yield module.violation(
                    node,
                    self.code,
                    f"import of '{modname}' inside worker-executed "
                    f"function '{name}': call-time imports mutate the "
                    "process-global module registry in every worker; "
                    "import at module scope so interpreter state is "
                    "identical before the fork",
                )
