"""Dataflow taint rules (RPL8xx): address values laundered through aliases.

RPL302/303 are single-expression pattern matches — they flag
``addr / 2`` but not::

    tmp = addr          # alias: 'tmp' carries an address now
    ratio = tmp / 2     # float64 coercion, invisible to RPL302

These rules close that known alias false-negative with the
:mod:`repro.lint.dataflow` engine: identifiers matching the
address/line/tag shape (:data:`repro.lint.rules.kernels._ADDRY`) seed a
taint lattice, taint flows through assignments/aliases/arithmetic to a
fixpoint, and the *sinks* are the same operations the v1 rules ban:

* ``RPL801`` — true division or ``float()`` applied to a value whose
  reaching definitions trace back to an address/line/tag, even though
  the operand's own name looks innocent.
* ``RPL802`` — a narrowing NumPy integer dtype applied to such a value
  in a kernel.

Count-style reductions (``len``, ``.sum()``, ``.mean()``, ``.size``,
comparisons) declassify: a miss *count* derived from an address array is
an ordinary integer. Sinks whose operand is itself address-shaped are
deliberately left to RPL302/303 — the families partition the findings,
so one defect never reports twice.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from repro.lint.dataflow import TaintAnalysis, use_exprs
from repro.lint.framework import ParsedModule, Rule, Violation, register
from repro.lint.rules.kernels import _ADDRY, _NARROW_INT, _addry

#: Call names whose result is a count/aggregate, not an address.
_DECLASSIFY_FUNCS = {"len", "sum", "min", "max", "bool", "abs"}
_DECLASSIFY_METHODS = {"sum", "mean", "count", "index", "nbytes", "item"}


def _seed(node: ast.AST) -> bool:
    """Does this expression introduce address taint by itself?"""
    if isinstance(node, ast.Name):
        return bool(_ADDRY.search(node.id))
    if isinstance(node, ast.Attribute):
        return bool(_ADDRY.search(node.attr))
    return False


def _declassify(node: ast.AST) -> bool:
    """Expression subtrees whose value is a count, not an address."""
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name):
            return node.func.id in _DECLASSIFY_FUNCS
        if isinstance(node.func, ast.Attribute):
            return node.func.attr in _DECLASSIFY_METHODS
    return isinstance(node, (ast.Compare, ast.BoolOp))


def _functions(tree: ast.Module) -> Iterator[ast.FunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


class _TaintRule(Rule):
    """Shared driver: run the taint analysis, dispatch to sink checks."""

    packages: tuple[str, ...] = ()

    def check_module(self, module: ParsedModule) -> Iterable[Violation]:
        if not module.in_packages(*self.packages):
            return
        for func in _functions(module.tree):
            analysis = TaintAnalysis(func, _seed, _declassify)
            if not analysis.tainted_defs:
                continue
            for atom, env in analysis.iter_atoms_with_env():
                for expr in use_exprs(atom):
                    for sub in ast.walk(expr):
                        yield from self._check_sink(module, sub, analysis, env)

    def _check_sink(self, module, node, analysis, env) -> Iterable[Violation]:
        raise NotImplementedError

    @staticmethod
    def _tainted_alias(node: ast.AST, analysis: TaintAnalysis, env) -> bool:
        """Tainted via dataflow but *not* syntactically address-shaped —
        syntactic hits belong to RPL302/303."""
        return not _addry(node) and analysis.tainted_use(node, env)

    @staticmethod
    def _origin(node: ast.AST, analysis: TaintAnalysis, env) -> str:
        """Describe where the taint came from (the alias chain's root)."""
        from repro.lint.dataflow import target_key

        key = target_key(node)
        defs = env.get(key, frozenset()) if key is not None else frozenset()
        lines = sorted(
            d.lineno for d in defs if d in analysis.tainted_defs
        )
        where = f" (tainted at line {lines[0]})" if lines else ""
        return f"`{ast.unparse(node)}`{where}"


@register
class AliasedFloatOnAddressRule(_TaintRule):
    code = "RPL801"
    name = "aliased-float-on-address"
    description = (
        "float arithmetic on a value that carries an address/line/tag "
        "through assignments or aliases (dataflow upgrade of RPL302)"
    )
    packages = ("kernels", "cache")

    def _check_sink(self, module, node, analysis, env) -> Iterable[Violation]:
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
            for operand in (node.left, node.right):
                if self._tainted_alias(operand, analysis, env):
                    yield module.violation(
                        node,
                        self.code,
                        f"true division on {self._origin(operand, analysis, env)}, "
                        "which carries an address/line/tag value through "
                        "aliasing; use // to stay in exact integer arithmetic",
                    )
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "float"
            and node.args
        ):
            if self._tainted_alias(node.args[0], analysis, env):
                yield module.violation(
                    node,
                    self.code,
                    f"float() applied to {self._origin(node.args[0], analysis, env)}, "
                    "which carries an address/line/tag value through aliasing",
                )


@register
class AliasedNarrowDtypeRule(_TaintRule):
    code = "RPL802"
    name = "aliased-narrow-dtype"
    description = (
        "narrowing NumPy integer dtype applied to a value that carries "
        "an address/line/tag through aliases (dataflow upgrade of RPL303)"
    )
    packages = ("kernels",)

    def _check_sink(self, module, node, analysis, env) -> Iterable[Violation]:
        if not isinstance(node, ast.Call):
            return
        from repro.lint.framework import dotted_name

        narrow = {
            name.split(".")[-1]
            for sub in ast.walk(node)
            if isinstance(sub, ast.Attribute)
            and (name := dotted_name(sub)) is not None
            and name.split(".")[0] in ("np", "numpy")
            and name.split(".")[-1] in _NARROW_INT
        }
        if not narrow:
            return
        operands = [*node.args, *[kw.value for kw in node.keywords]]
        if isinstance(node.func, ast.Attribute):
            operands.append(node.func.value)
        for operand in operands:
            if self._tainted_alias(operand, analysis, env):
                yield module.violation(
                    node,
                    self.code,
                    f"narrow dtype {sorted(narrow)} applied to "
                    f"{self._origin(operand, analysis, env)}, which carries "
                    "an address/line/tag value through aliasing; line/tag "
                    "state must stay int64/uint64",
                )
