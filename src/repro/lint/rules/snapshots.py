"""Snapshot payload completeness (RPL5xx).

Checkpoint/resume is only sound if a snapshot captures *every* piece of
mid-run session state: a field added to :class:`SessionSnapshot` but
never written by ``snapshot()`` silently restores to its default, and a
run resumed from such a snapshot diverges from the uninterrupted run —
the exact bit-identity bug the session tests exist to prevent, except
surfacing only for crashed-and-resumed cells.

``RPL501`` therefore cross-references, statically, the literal payload
dict built inside ``snapshot()`` (the ``payload = {...}`` passed as
``SessionSnapshot(**payload)``, or direct keyword arguments) against the
``SessionSnapshot`` dataclass fields:

* every dataclass field must appear as a payload key (state written);
* every payload key must be a dataclass field (no dead keys that mask a
  renamed field);
* the dataclass must carry a ``version`` field, the format stamp that
  lets :meth:`SessionSnapshot.load` and the experiment checkpoint layer
  refuse snapshots from incompatible code.

Like the RPL2xx cache-key rules, the check is structural rather than
path-bound: any module *defining* a ``SessionSnapshot`` class is
checked, which lets fixtures exercise the failure modes without
touching the real tree.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.lint.framework import (
    ParsedModule,
    Rule,
    Violation,
    dotted_name,
    iter_calls,
    register,
)
from repro.lint.rules.cachekey import dataclass_fields

SNAPSHOT_CLASS = "SessionSnapshot"


def _class_def(tree: ast.Module, name: str) -> ast.ClassDef | None:
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def _snapshot_methods(tree: ast.Module) -> list[ast.FunctionDef]:
    """Every ``snapshot()`` method of every top-level class."""
    methods = []
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, ast.FunctionDef) and item.name == "snapshot":
                    methods.append(item)
    return methods


def _payload_keys(func: ast.FunctionDef) -> tuple[set[str], ast.AST] | None:
    """Keys the ``SessionSnapshot(...)`` construction in ``func`` writes.

    Handles both the ``payload = {...}; SessionSnapshot(**payload)``
    shape (the real tree, which keeps the payload dict literal precisely
    so this rule can read it) and direct keyword construction.
    """
    dict_bindings: dict[str, ast.Dict] = {}
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Dict)
        ):
            dict_bindings[node.targets[0].id] = node.value
    for call in iter_calls(func):
        name = dotted_name(call.func)
        if name is None or name.split(".")[-1] != SNAPSHOT_CLASS:
            continue
        for kw in call.keywords:
            if (
                kw.arg is None
                and isinstance(kw.value, ast.Name)
                and kw.value.id in dict_bindings
            ):
                payload = dict_bindings[kw.value.id]
                keys = {
                    k.value
                    for k in payload.keys
                    if isinstance(k, ast.Constant) and isinstance(k.value, str)
                }
                return keys, payload
        explicit = {kw.arg for kw in call.keywords if kw.arg is not None}
        if explicit:
            return explicit, call
    return None


@register
class SnapshotPayloadCompletenessRule(Rule):
    code = "RPL501"
    name = "snapshot-payload-completeness"
    description = (
        "SessionSnapshot dataclass fields and the snapshot() payload dict "
        "must match exactly (and include a 'version' stamp)"
    )

    def check_module(self, module: ParsedModule) -> Iterable[Violation]:
        snap_cls = _class_def(module.tree, SNAPSHOT_CLASS)
        if snap_cls is None:
            return
        fields = dict(dataclass_fields(snap_cls))
        if "version" not in fields:
            yield module.violation(
                snap_cls,
                self.code,
                f"{SNAPSHOT_CLASS} lacks a 'version' field; incompatible "
                "snapshot formats could not be rejected on load",
            )
        resolved = None
        for method in _snapshot_methods(module.tree):
            resolved = _payload_keys(method)
            if resolved is not None:
                break
        if resolved is None:
            yield module.violation(
                snap_cls,
                self.code,
                f"no snapshot() method constructs {SNAPSHOT_CLASS} from a "
                "literal payload; completeness cannot be verified statically",
            )
            return
        keys, payload_node = resolved
        for field_name, node in fields.items():
            if field_name not in keys:
                yield module.violation(
                    node,
                    self.code,
                    f"{SNAPSHOT_CLASS} field '{field_name}' is never written "
                    "by the snapshot() payload; restored sessions would get "
                    "its default and diverge from the uninterrupted run",
                )
        for key in sorted(keys - fields.keys()):
            yield module.violation(
                payload_node,
                self.code,
                f"snapshot() payload key '{key}' is not a {SNAPSHOT_CLASS} "
                "field; a renamed or removed field would be silently dropped",
            )
