"""Rule families of ``reprolint``.

Importing this package registers every rule with the framework registry:

* :mod:`repro.lint.rules.determinism` — RPL1xx, bit-for-bit
  reproducibility of simulated results.
* :mod:`repro.lint.rules.cachekey` — RPL2xx, result-cache key covers
  every behaviour-affecting config field.
* :mod:`repro.lint.rules.kernels` — RPL3xx, structural half of the
  reference/array kernel bit-identity contract.
* :mod:`repro.lint.rules.stats` — RPL4xx, CacheStats moves only through
  its own methods.
* :mod:`repro.lint.rules.snapshots` — RPL5xx, the session snapshot
  payload covers every SessionSnapshot field (checkpoint/resume
  bit-identity).
* :mod:`repro.lint.rules.streams` — RPL6xx, the compiled-stream
  fingerprint covers every workload constructor parameter.
* :mod:`repro.lint.rules.process_safety` — RPL7xx, process/concurrency
  safety across the ProcessPoolExecutor fork boundary (dataflow-backed).
* :mod:`repro.lint.rules.dataflow_taint` — RPL8xx, address/tag taint
  flowing through aliases into float math or narrowing dtypes
  (dataflow upgrade of RPL302/303).
"""

from repro.lint.rules import (
    cachekey,
    dataflow_taint,
    determinism,
    kernels,
    process_safety,
    snapshots,
    stats,
    streams,
)

__all__ = [
    "determinism",
    "cachekey",
    "kernels",
    "snapshots",
    "stats",
    "streams",
    "process_safety",
    "dataflow_taint",
]
