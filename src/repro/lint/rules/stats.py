"""Stats-purity rules (RPL4xx).

``CacheStats`` is the ledger every experiment ultimately reads; the
paper's overhead and perturbation numbers are differences between these
counters, so they must only move through the class's own audited methods
(``record``, ``merge``). An ad-hoc ``stats.misses += ...`` scattered in
engine or tool code bypasses the per-tag bookkeeping (app vs instr
attribution — the heart of the paper's accounting) and breaks the
``snapshot``/``merge`` invariants the hierarchy relies on.

* ``RPL401`` — assignment or augmented assignment to a ``CacheStats``
  counter field (or a write into its per-tag dicts) from outside the
  ``CacheStats`` class itself.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from repro.lint.framework import ParsedModule, Rule, Violation, register

#: CacheStats counter fields that may only move via its methods.
_STAT_FIELDS = {
    "accesses",
    "misses",
    "writebacks",
    "prefetches",
    "accesses_by_tag",
    "misses_by_tag",
    "mechanism",
}
_DICT_FIELDS = {"accesses_by_tag", "misses_by_tag", "mechanism"}


def _is_stats_object(node: ast.AST) -> bool:
    """Whether an expression plausibly denotes a CacheStats instance."""
    if isinstance(node, ast.Name):
        return node.id == "stats" or node.id.endswith("_stats")
    if isinstance(node, ast.Attribute):
        return node.attr == "stats" or node.attr.endswith("_stats")
    return False


def _walk_outside_cachestats(tree: ast.Module) -> Iterator[ast.AST]:
    """ast.walk, pruning the body of any class named CacheStats."""
    stack: list[ast.AST] = [tree]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef) and child.name == "CacheStats":
                continue
            stack.append(child)


@register
class StatsPurityRule(Rule):
    code = "RPL401"
    name = "stats-purity"
    description = (
        "CacheStats counters mutated outside CacheStats methods; route "
        "updates through record()/merge()"
    )

    def check_module(self, module: ParsedModule) -> Iterable[Violation]:
        for node in _walk_outside_cachestats(module.tree):
            targets: list[ast.expr]
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AugAssign):
                targets = [node.target]
            else:
                continue
            for target in targets:
                field = self._stats_field_written(target)
                if field is not None:
                    yield module.violation(
                        node,
                        self.code,
                        f"direct write to CacheStats.{field} outside "
                        "CacheStats; use record()/merge() so per-tag "
                        "attribution and snapshots stay consistent",
                    )

    @staticmethod
    def _stats_field_written(target: ast.expr) -> str | None:
        # stats.misses = / += ...
        if isinstance(target, ast.Attribute) and target.attr in _STAT_FIELDS:
            if _is_stats_object(target.value):
                return target.attr
        # stats.accesses_by_tag[tag] = ...
        if isinstance(target, ast.Subscript):
            value = target.value
            if (
                isinstance(value, ast.Attribute)
                and value.attr in _DICT_FIELDS
                and _is_stats_object(value.value)
            ):
                return value.attr
        return None
