"""Compiled-stream soundness rules (RPL6xx).

The compiled-stream cache (``repro.workloads.compile``) content-addresses
a workload's frozen reference stream. The address is only sound under
two conventions, both easy to break silently:

* ``RPL601`` — the ``stream_fingerprint`` payload must pin the full key
  contract: ``kind`` (namespacing against other cached artifacts),
  ``format`` (the on-disk layout version), ``workload`` and ``class``
  (which stream this is), ``params`` (every constructor parameter) and
  ``version`` (the source-code tag that invalidates streams on edits).
  Dropping any of these serves stale or foreign streams for new
  configurations — the exact failure mode RPL201 guards for results.
* ``RPL602`` — ``params`` is read back off the instance by
  ``workload_params``, which requires every ``Workload`` subclass to
  store each ``__init__`` parameter under an attribute of the same name
  (directly, or by forwarding to ``super().__init__``). A parameter
  that is consumed without being stored leaves the fingerprint blind to
  it: two *different* streams would share one cache entry. ``*args`` /
  ``**kwargs`` cannot be content-addressed at all and are flagged too.

Like the RPL2xx family, the rules are structural rather than path-bound:
any module defining a ``stream_fingerprint`` function (or a class whose
base is named ``Workload``) is checked, which lets the test fixtures
exercise the failure modes without touching the real tree.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from repro.lint.framework import (
    ParsedModule,
    Rule,
    Violation,
    dotted_name,
    register,
)
from repro.lint.rules.cachekey import _stable_hash_payload, _string_keys

#: The pinned top-level keys of the stream-fingerprint payload.
FINGERPRINT_KEYS = ("kind", "format", "workload", "class", "params", "version")


@register
class StreamFingerprintKeysRule(Rule):
    code = "RPL601"
    name = "stream-fingerprint-keys"
    description = (
        "the stream_fingerprint payload must pin kind/format/workload/"
        "class/params/version so compiled streams are fully "
        "content-addressed"
    )

    def check_module(self, module: ParsedModule) -> Iterable[Violation]:
        for node in module.tree.body:
            if isinstance(node, ast.FunctionDef) and node.name == "stream_fingerprint":
                yield from self._check_fingerprint(module, node)

    def _check_fingerprint(
        self, module: ParsedModule, func: ast.FunctionDef
    ) -> Iterator[Violation]:
        payload = _stable_hash_payload(func)
        if payload is None:
            yield module.violation(
                func,
                self.code,
                "stream_fingerprint() does not hash a literal dict via "
                "stable_hash({...}); key completeness cannot be verified "
                "statically",
            )
            return
        keys = _string_keys(payload, recurse=False)
        for required in FINGERPRINT_KEYS:
            if required not in keys:
                yield module.violation(
                    payload,
                    self.code,
                    f"stream-fingerprint payload lacks the {required!r} "
                    "key; compiled streams would not be invalidated when "
                    "it changes",
                )


@register
class WorkloadParamRoundTripRule(Rule):
    code = "RPL602"
    name = "workload-param-round-trip"
    description = (
        "every Workload __init__ parameter must be stored under an "
        "attribute of the same name (or forwarded to super().__init__) "
        "so stream fingerprints can read it back"
    )

    def check_module(self, module: ParsedModule) -> Iterable[Violation]:
        for node in module.tree.body:
            if (
                isinstance(node, ast.ClassDef)
                and self._is_workload(node)
                and not self._opted_out(node)
            ):
                init = self._init_method(node)
                if init is not None:
                    yield from self._check_init(module, node, init)

    @staticmethod
    def _is_workload(cls: ast.ClassDef) -> bool:
        for base in cls.bases:
            name = dotted_name(base)
            if name is not None and name.split(".")[-1] == "Workload":
                return True
        return False

    @staticmethod
    def _opted_out(cls: ast.ClassDef) -> bool:
        """True for ``compiled_stream_safe = False`` classes: they are
        never fingerprinted, so the round-trip convention does not
        apply to them."""
        for node in cls.body:
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == "compiled_stream_safe"
                    and isinstance(node.value, ast.Constant)
                    and node.value.value is False
                ):
                    return True
        return False

    @staticmethod
    def _init_method(cls: ast.ClassDef) -> ast.FunctionDef | None:
        for node in cls.body:
            if isinstance(node, ast.FunctionDef) and node.name == "__init__":
                return node
        return None

    def _check_init(
        self, module: ParsedModule, cls: ast.ClassDef, init: ast.FunctionDef
    ) -> Iterator[Violation]:
        if init.args.vararg is not None or init.args.kwarg is not None:
            yield module.violation(
                init,
                self.code,
                f"{cls.name}.__init__ takes *args/**kwargs; its streams "
                "cannot be content-addressed by parameters",
            )
        stored = self._stored_names(init)
        params = [
            arg.arg
            for arg in (
                init.args.posonlyargs + init.args.args + init.args.kwonlyargs
            )
            if arg.arg != "self"
        ]
        for param in params:
            if param not in stored:
                yield module.violation(
                    init,
                    self.code,
                    f"{cls.name}.__init__ parameter {param!r} is never "
                    f"stored as self.{param} (or forwarded to "
                    "super().__init__); stream fingerprints would not "
                    "see it (RPL602)",
                )

    @staticmethod
    def _stored_names(init: ast.FunctionDef) -> set[str]:
        """Names satisfying the round-trip: ``self.X = ...`` assignment
        targets, plus everything forwarded to ``super().__init__``."""
        stored: set[str] = set()
        for node in ast.walk(init):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    stored.add(target.attr)
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "__init__"
            ):
                    for arg in node.args:
                        if isinstance(arg, ast.Name):
                            stored.add(arg.id)
                    for kw in node.keywords:
                        if kw.arg is not None:
                            stored.add(kw.arg)
        return stored
