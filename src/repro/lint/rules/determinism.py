"""Determinism rules (RPL1xx).

The paper's sampled-vs-full comparisons (and this repo's result cache,
parallel runner and golden tests) assume a simulation is a pure function
of its seed. These rules ban the constructs that silently break that:

* ``RPL101`` — the process-global ``random`` module (and NumPy's legacy
  global equivalents): unseeded, shared, and irreproducible across
  processes. All randomness must flow through seeded ``Generator``
  objects from :mod:`repro.util.rng`.
* ``RPL102`` — builtin ``hash()``: ``PYTHONHASHSEED`` randomises str and
  bytes hashes per process, so any counter index, cache key or memory
  layout derived from it differs run to run (the exact bug PR 1 fixed in
  the sampling handler by switching to ``zlib.crc32``).
* ``RPL103`` — wall-clock reads (``time.time``, ``datetime.now``/
  ``utcnow``/``today``) inside simulation-result paths. Virtual time
  comes from the simulated clock; host time may only appear in
  telemetry (manifests, progress printing), which lives outside the
  scoped packages or carries an explicit suppression.
* ``RPL104`` — iterating a ``set`` (or ``dict.keys()``) without
  ``sorted()`` in those same paths: set iteration order depends on hash
  seeds and insertion history, so anything accumulated from it can
  differ between processes.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator
from typing import ClassVar

from repro.lint.framework import (
    ParsedModule,
    Rule,
    Violation,
    dotted_name,
    iter_calls,
    register,
)

#: Packages whose code feeds simulated results, seeds or cache keys.
RESULT_SCOPE = (
    "sim",
    "cache",
    "hpm",
    "core",
    "memory",
    "workloads",
    "datastructs",
    "experiments",
    # The MRC engine sits under repro/cache/ (so the "cache" entry already
    # scopes it), but its determinism contract — SHARDS sampling must be a
    # pure function of (stream, rate, seed) — is load-bearing enough that
    # the scope is named explicitly: moving the package out from under
    # cache/ must not silently drop it from these rules.
    "mrc",
)

#: Legacy NumPy global-state RNG entry points (np.random.<fn>).
_NP_LEGACY = {
    "seed",
    "rand",
    "randn",
    "randint",
    "random",
    "random_sample",
    "choice",
    "shuffle",
    "permutation",
    "uniform",
    "normal",
}


@register
class UnseededRandomRule(Rule):
    code = "RPL101"
    name = "unseeded-random"
    description = (
        "stdlib `random` / NumPy legacy global RNG: use a seeded "
        "Generator from repro.util.rng instead"
    )

    def check_module(self, module: ParsedModule) -> Iterable[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        yield module.violation(
                            node,
                            self.code,
                            "import of the process-global `random` module; "
                            "use repro.util.rng.make_rng/spawn_rng",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield module.violation(
                        node,
                        self.code,
                        "import from the process-global `random` module; "
                        "use repro.util.rng.make_rng/spawn_rng",
                    )
        for call in iter_calls(module.tree):
            name = dotted_name(call.func)
            if name is None:
                continue
            parts = name.split(".")
            if len(parts) == 2 and parts[0] == "random":
                yield module.violation(
                    call,
                    self.code,
                    f"call to process-global `{name}()`; "
                    "use a seeded numpy Generator",
                )
            elif (
                len(parts) >= 2
                and parts[-2] == "random"
                and parts[0] in ("np", "numpy")
                and parts[-1] in _NP_LEGACY
            ):
                yield module.violation(
                    call,
                    self.code,
                    f"call to NumPy legacy global RNG `{name}()`; "
                    "use np.random.default_rng(seed)",
                )
            elif parts[-1] == "default_rng" and not call.args and not call.keywords:
                yield module.violation(
                    call,
                    self.code,
                    "`default_rng()` without a seed is entropy-seeded and "
                    "irreproducible; pass an explicit seed",
                )


@register
class BuiltinHashRule(Rule):
    code = "RPL102"
    name = "builtin-hash"
    description = (
        "builtin hash() is randomised per process for str/bytes "
        "(PYTHONHASHSEED); use zlib.crc32 or cache_store.stable_hash"
    )

    def check_module(self, module: ParsedModule) -> Iterable[Violation]:
        for call in iter_calls(module.tree):
            if isinstance(call.func, ast.Name) and call.func.id == "hash":
                yield module.violation(
                    call,
                    self.code,
                    "builtin hash() is not stable across processes; use "
                    "zlib.crc32 (indices) or stable_hash (content keys)",
                )


@register
class WallClockRule(Rule):
    code = "RPL103"
    name = "wall-clock"
    description = (
        "host wall-clock read inside a simulation-result path; simulated "
        "behaviour must depend only on virtual time"
    )

    #: Exact dotted names whose *reference* already injects wall-clock.
    _BANNED_REFS: ClassVar[set[str]] = {"time.time", "time.time_ns"}
    _BANNED_METHODS: ClassVar[set[str]] = {"now", "utcnow", "today"}

    def check_module(self, module: ParsedModule) -> Iterable[Violation]:
        if not module.in_packages(*RESULT_SCOPE):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute):
                name = dotted_name(node)
                if name in self._BANNED_REFS:
                    yield module.violation(
                        node,
                        self.code,
                        f"wall-clock `{name}` in a result path; results must "
                        "be a function of config + seed (telemetry needs an "
                        "explicit suppression)",
                    )
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is None:
                    continue
                parts = name.split(".")
                if parts[-1] in self._BANNED_METHODS and any(
                    p in ("datetime", "date") for p in parts[:-1]
                ):
                    yield module.violation(
                        node,
                        self.code,
                        f"wall-clock `{name}()` in a result path",
                    )


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


def _target_key(node: ast.AST) -> str | None:
    """A trackable key for assignment targets: `name` or `self.attr`."""
    if isinstance(node, ast.Name):
        return node.id
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return f"self.{node.attr}"
    return None


def _ann_is_set(annotation: ast.AST) -> bool:
    text = ast.unparse(annotation)
    return (
        text in ("set", "frozenset")
        or text.startswith(("set[", "frozenset[", "Set[", "FrozenSet["))
    )


@register
class UnsortedSetIterationRule(Rule):
    code = "RPL104"
    name = "unsorted-set-iteration"
    description = (
        "iteration over a set (or .keys()) without sorted() in code that "
        "feeds results, seeds or cache keys"
    )

    def check_module(self, module: ParsedModule) -> Iterable[Violation]:
        if not module.in_packages(*RESULT_SCOPE):
            return
        tainted = self._tainted_names(module.tree)
        for iter_node in self._iteration_sites(module.tree):
            yield from self._check_iter(module, iter_node, tainted)

    # ------------------------------------------------------------ internals

    def _tainted_names(self, tree: ast.Module) -> set[str]:
        """Names/self-attributes bound to set values anywhere in the module.

        Deliberately scope-insensitive (one namespace for the whole file):
        conservative, but simple enough to audit, and precise enough for
        this codebase's shapes.
        """
        tainted: set[str] = set()
        # Iterate to a fixed point so aliases of aliases are caught.
        for _ in range(4):
            grew = False
            for node in ast.walk(tree):
                key: str | None = None
                value: ast.AST | None = None
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    key, value = _target_key(node.targets[0]), node.value
                elif isinstance(node, ast.AnnAssign):
                    key = _target_key(node.target)
                    if key is not None and _ann_is_set(node.annotation):
                        if key not in tainted:
                            tainted.add(key)
                            grew = True
                    value = node.value
                if key is None or value is None:
                    continue
                is_set = _is_set_expr(value)
                if not is_set:
                    alias = _target_key(value)
                    is_set = alias is not None and alias in tainted
                if is_set and key not in tainted:
                    tainted.add(key)
                    grew = True
            if not grew:
                break
        return tainted

    def _iteration_sites(self, tree: ast.Module) -> Iterator[ast.AST]:
        for node in ast.walk(tree):
            if isinstance(node, ast.For):
                yield node.iter
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
            ):
                for gen in node.generators:
                    yield gen.iter

    def _check_iter(
        self, module: ParsedModule, node: ast.AST, tainted: set[str]
    ) -> Iterator[Violation]:
        # sorted(...) (or min/max/sum reductions) normalise the order.
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in ("sorted", "min", "max", "sum", "enumerate"):
                if node.func.id == "enumerate" and node.args:
                    yield from self._check_iter(module, node.args[0], tainted)
                return
        if _is_set_expr(node):
            yield module.violation(
                node,
                self.code,
                "iterating a set literal/constructor; wrap in sorted() for a "
                "deterministic order",
            )
            return
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr == "keys" and not node.args:
                yield module.violation(
                    node,
                    self.code,
                    "iterating .keys(); iterate the mapping directly "
                    "(insertion order) or wrap in sorted()",
                )
                return
        key = _target_key(node)
        if key is not None and key in tainted:
            yield module.violation(
                node,
                self.code,
                f"iterating set-typed `{key}` without sorted(); set order "
                "varies with hash seed and insertion history",
            )
