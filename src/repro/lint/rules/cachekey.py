"""Cache-key completeness rules (RPL2xx).

The on-disk result cache is only sound if the key hash covers *every*
behaviour-affecting input: a dataclass field added to the task/sim specs
but left out of the hash silently serves stale results for new
configurations. These rules cross-reference the spec dataclasses against
the key construction, statically:

* ``RPL201`` — every ``TaskSpec`` field appears as a top-level key of
  the ``stable_hash({...})`` payload in ``TaskSpec.key()``, unless the
  module's ``_KEY_EXEMPT_FIELDS`` names it as deliberately excluded
  (display-only fields like ``label``).
* ``RPL202`` — every ``ToolSpec`` field appears somewhere in that
  payload (the tool sub-dict), since tools are hashed by explicit
  enumeration rather than dataclass recursion.
* ``RPL203`` — ``canonical()`` (the hash encoder) recurses dataclasses
  via ``dataclasses.fields``, which is what makes ``SimSpec`` /
  ``CacheConfig`` fields — present and future — participate in the key
  automatically. An encoder that enumerated field names by hand would
  drop newly-added fields without failing.
* ``RPL204`` — the key payload includes a ``"version"`` entry (the
  source-code version tag) so edited simulation code invalidates old
  entries.

The rules are structural, not path-bound: any module defining a
``TaskSpec`` with a ``key()`` method (or a ``canonical()`` function) is
checked, which is what lets the test fixtures exercise the failure
modes without touching the real tree.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from repro.lint.framework import (
    ParsedModule,
    Rule,
    Violation,
    dotted_name,
    iter_calls,
    register,
)

#: Name of the module-level constant listing deliberately-unhashed fields.
EXEMPT_CONSTANT = "_KEY_EXEMPT_FIELDS"


def _class_def(tree: ast.Module, name: str) -> ast.ClassDef | None:
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def dataclass_fields(cls: ast.ClassDef) -> list[tuple[str, ast.AnnAssign]]:
    """(name, node) of every annotated field in a dataclass body."""
    fields: list[tuple[str, ast.AnnAssign]] = []
    for node in cls.body:
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            annotation = ast.unparse(node.annotation)
            if annotation.startswith("ClassVar"):
                continue
            fields.append((node.target.id, node))
    return fields


def _method(cls: ast.ClassDef, name: str) -> ast.FunctionDef | None:
    for node in cls.body:
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    return None


def _stable_hash_payload(func: ast.FunctionDef) -> ast.Dict | None:
    """The literal dict passed to stable_hash(...) inside ``func``.

    Handles both ``stable_hash({...})`` and the two-step
    ``payload = {...}; stable_hash(payload)`` shape.
    """
    dict_bindings: dict[str, ast.Dict] = {}
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Dict)
        ):
            dict_bindings[node.targets[0].id] = node.value
    for call in iter_calls(func):
        name = dotted_name(call.func)
        if name is not None and name.split(".")[-1] == "stable_hash" and call.args:
            arg = call.args[0]
            if isinstance(arg, ast.Dict):
                return arg
            if isinstance(arg, ast.Name) and arg.id in dict_bindings:
                return dict_bindings[arg.id]
    return None


def _string_keys(payload: ast.Dict, *, recurse: bool) -> set[str]:
    keys: set[str] = set()
    for key_node, value in zip(payload.keys, payload.values):
        if isinstance(key_node, ast.Constant) and isinstance(key_node.value, str):
            keys.add(key_node.value)
        if recurse:
            for sub in ast.walk(value):
                if isinstance(sub, ast.Dict):
                    keys |= _string_keys(sub, recurse=False)
    return keys


def exempt_fields(tree: ast.Module) -> set[str]:
    """String constants of the module-level ``_KEY_EXEMPT_FIELDS``."""
    for node in tree.body:
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == EXEMPT_CONSTANT:
                value = node.value
                assert value is not None
                return {
                    n.value
                    for n in ast.walk(value)
                    if isinstance(n, ast.Constant) and isinstance(n.value, str)
                }
    return set()


@register
class CacheKeyCompletenessRule(Rule):
    code = "RPL201"
    name = "cache-key-completeness"
    description = (
        "every TaskSpec/ToolSpec dataclass field must be hashed into the "
        "result-cache key or listed in _KEY_EXEMPT_FIELDS"
    )

    def check_module(self, module: ParsedModule) -> Iterable[Violation]:
        task_cls = _class_def(module.tree, "TaskSpec")
        if task_cls is None:
            return
        key_method = _method(task_cls, "key")
        if key_method is None:
            yield module.violation(
                task_cls,
                "RPL201",
                "TaskSpec defines no key() method; the result cache cannot "
                "address its cells",
            )
            return
        payload = _stable_hash_payload(key_method)
        if payload is None:
            yield module.violation(
                key_method,
                "RPL201",
                "TaskSpec.key() does not hash a literal dict via "
                "stable_hash({...}); completeness cannot be verified "
                "statically",
            )
            return
        exempt = exempt_fields(module.tree)
        top_keys = _string_keys(payload, recurse=False)
        for field_name, node in dataclass_fields(task_cls):
            if field_name not in top_keys and field_name not in exempt:
                yield module.violation(
                    node,
                    "RPL201",
                    f"TaskSpec field '{field_name}' is not part of the "
                    f"cache-key hash and not listed in {EXEMPT_CONSTANT}; "
                    "stale cached results would be served for new values",
                )
        yield from self._check_toolspec(module, payload)
        if "version" not in top_keys:
            yield module.violation(
                payload,
                "RPL204",
                "cache-key payload lacks the 'version' source-code tag; "
                "edited simulation code would not invalidate old entries",
            )

    def _check_toolspec(
        self, module: ParsedModule, payload: ast.Dict
    ) -> Iterator[Violation]:
        tool_cls = _class_def(module.tree, "ToolSpec")
        if tool_cls is None:
            return
        all_keys = _string_keys(payload, recurse=True)
        exempt = exempt_fields(module.tree)
        for field_name, node in dataclass_fields(tool_cls):
            if field_name not in all_keys and field_name not in exempt:
                yield module.violation(
                    node,
                    "RPL202",
                    f"ToolSpec field '{field_name}' never appears in the "
                    "cache-key payload; tool configuration would not "
                    "invalidate cached results",
                )


@register
class CanonicalRecursionRule(Rule):
    code = "RPL203"
    name = "canonical-dataclass-recursion"
    description = (
        "canonical() must recurse dataclasses via dataclasses.fields so "
        "new SimSpec/CacheConfig fields hash automatically"
    )

    def check_module(self, module: ParsedModule) -> Iterable[Violation]:
        for node in module.tree.body:
            if isinstance(node, ast.FunctionDef) and node.name == "canonical":
                if not self._uses_dataclass_fields(node):
                    yield module.violation(
                        node,
                        self.code,
                        "canonical() does not iterate dataclasses.fields(); "
                        "hand-enumerated fields silently drop additions from "
                        "the cache key",
                    )

    @staticmethod
    def _uses_dataclass_fields(func: ast.FunctionDef) -> bool:
        for call in iter_calls(func):
            name = dotted_name(call.func)
            if name is not None and name.split(".")[-1] == "fields":
                return True
        return False
