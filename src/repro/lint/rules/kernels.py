"""Kernel-contract parity rules (RPL3xx).

The ``array`` kernel is only usable because it is *bit-identical* to the
``reference`` kernel; the differential tests prove behavioural equality,
and these rules enforce the structural half of the contract before
anything runs:

* ``RPL301`` — every concrete ``SetKernel`` implementation exposes the
  same public method names with the same signatures. A method added to
  one backend only (or a signature drift) splits the API the cache
  models program against.
* ``RPL302`` — no float arithmetic on address/line/tag values in the
  cache layer: true division coerces to float64, which silently loses
  integer exactness above 2**53 and makes hit/miss classification
  depend on rounding. Address math is shifts, masks and floor division.
* ``RPL303`` — no narrowing NumPy integer dtypes applied to
  address/line/tag arrays in the kernels: byte addresses are uint64;
  an int32/uint32 cast wraps silently on large traces.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable

from repro.lint.framework import (
    ParsedModule,
    Rule,
    Violation,
    dotted_name,
    register,
)

#: Identifier shapes that carry addresses, line numbers or tags.
#: Count-style names (n_lines, num_tags, ...) are scalars, not addresses.
_ADDRY = re.compile(
    r"^(?!n_|num_|count_)"
    r"((addr|addrs|line|lines|tag|tags|nxt|victim)$"
    r"|(addr|line|tag)_"
    r"|.*_(addr|addrs|line|lines|tag|tags)$)"
)

_NARROW_INT = {"int8", "int16", "int32", "uint8", "uint16", "uint32"}


def _identifiers(node: ast.AST) -> set[str]:
    out: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            out.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            out.add(sub.attr)
    return out


def _addry(node: ast.AST) -> set[str]:
    return {name for name in _identifiers(node) if _ADDRY.search(name)}


def _signature(func: ast.FunctionDef) -> tuple:
    """Comparable shape of a method signature (names, defaults, types)."""
    args = func.args

    def ann(a: ast.arg) -> str:
        return ast.unparse(a.annotation) if a.annotation is not None else ""

    return (
        tuple((a.arg, ann(a)) for a in args.posonlyargs),
        tuple((a.arg, ann(a)) for a in args.args),
        len(args.defaults),
        (args.vararg.arg if args.vararg else None),
        tuple((a.arg, ann(a)) for a in args.kwonlyargs),
        tuple(d is not None for d in args.kw_defaults),
        (args.kwarg.arg if args.kwarg else None),
        ast.unparse(func.returns) if func.returns is not None else "",
    )


class _KernelClass:
    def __init__(self, module: ParsedModule, node: ast.ClassDef) -> None:
        self.module = module
        self.node = node
        self.name = node.name
        self.methods: dict[str, tuple[tuple, ast.FunctionDef]] = {
            item.name: (_signature(item), item)
            for item in node.body
            if isinstance(item, ast.FunctionDef)
            and not item.name.startswith("_")
        }


@register
class KernelParityRule(Rule):
    code = "RPL301"
    name = "kernel-contract-parity"
    description = (
        "all SetKernel backends must expose identical public method "
        "names and signatures"
    )

    def __init__(self) -> None:
        self._impls: list[_KernelClass] = []
        self._base_methods: set[str] = set()

    def check_module(self, module: ParsedModule) -> Iterable[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            base_names = {
                dotted_name(b).split(".")[-1]  # type: ignore[union-attr]
                for b in node.bases
                if dotted_name(b) is not None
            }
            if node.name == "SetKernel":
                self._base_methods |= {
                    item.name
                    for item in node.body
                    if isinstance(item, ast.FunctionDef)
                }
            elif "SetKernel" in base_names:
                self._impls.append(_KernelClass(module, node))
        return ()

    def finalize(self) -> Iterable[Violation]:
        if len(self._impls) < 2:
            return
        public = {name for impl in self._impls for name in impl.methods}
        for name in sorted(public):
            have = [impl for impl in self._impls if name in impl.methods]
            missing = [impl for impl in self._impls if name not in impl.methods]
            # A method defined by one backend only is fine when the shared
            # base provides it (the others inherit); otherwise the public
            # API has diverged.
            if missing and name not in self._base_methods:
                for impl in missing:
                    yield impl.module.violation(
                        impl.node,
                        self.code,
                        f"kernel {impl.name} lacks public method '{name}' "
                        f"defined by "
                        f"{', '.join(i.name for i in have)} and absent from "
                        "the SetKernel base: backend APIs have diverged",
                    )
            reference_sig, _ = have[0].methods[name]
            for impl in have[1:]:
                sig, func = impl.methods[name]
                if sig != reference_sig:
                    yield impl.module.violation(
                        func,
                        self.code,
                        f"kernel {impl.name}.{name} signature differs from "
                        f"{have[0].name}.{name}; backends must be "
                        "drop-in interchangeable",
                    )


@register
class FloatOnAddressRule(Rule):
    code = "RPL302"
    name = "float-on-address"
    description = (
        "float arithmetic on address/line/tag values in the cache layer; "
        "use //, shifts and masks"
    )

    def check_module(self, module: ParsedModule) -> Iterable[Violation]:
        if not module.in_packages("kernels", "cache"):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
                involved = _addry(node.left) | _addry(node.right)
                if involved:
                    yield module.violation(
                        node,
                        self.code,
                        f"true division on address-carrying value(s) "
                        f"{sorted(involved)}; use // to stay in exact "
                        "integer arithmetic",
                    )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "float"
                and node.args
            ):
                involved = _addry(node.args[0])
                if involved:
                    yield module.violation(
                        node,
                        self.code,
                        f"float() applied to address-carrying value(s) "
                        f"{sorted(involved)}",
                    )


@register
class NarrowDtypeRule(Rule):
    code = "RPL303"
    name = "narrow-int-dtype"
    description = (
        "narrowing NumPy integer dtype applied to address/line/tag "
        "arrays in a kernel; addresses are uint64"
    )

    def check_module(self, module: ParsedModule) -> Iterable[Violation]:
        if not module.in_packages("kernels"):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            narrow = {
                name.split(".")[-1]
                for sub in ast.walk(node)
                if isinstance(sub, ast.Attribute)
                and (name := dotted_name(sub)) is not None
                and name.split(".")[0] in ("np", "numpy")
                and name.split(".")[-1] in _NARROW_INT
            }
            if not narrow:
                continue
            involved = set()
            for arg in [*node.args, *[kw.value for kw in node.keywords]]:
                involved |= _addry(arg)
            if isinstance(node.func, ast.Attribute):
                involved |= _addry(node.func.value)
            if involved:
                yield module.violation(
                    node,
                    self.code,
                    f"narrow dtype {sorted(narrow)} applied to "
                    f"address-carrying value(s) {sorted(involved)}; line/tag "
                    "state must stay int64/uint64",
                )
