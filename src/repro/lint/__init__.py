"""``reprolint`` — AST-based invariant linter for this reproduction.

The simulation's correctness rests on invariants the methodology demands
but ordinary tests only probe: bit-for-bit determinism (sampled-vs-full
comparisons are meaningless if reruns drift), content-addressed cache
keys that cover every behaviour-affecting field, the bit-identity
contract between cache-kernel backends, and single-writer statistics.
``reprolint`` enforces the statically-checkable half of each, before
anything runs::

    python -m repro.lint src/            # or: repro lint src/
    python -m repro.lint --format json src/
    python -m repro.lint --list-rules

Rule families: RPL1xx determinism, RPL2xx cache-key completeness,
RPL3xx kernel-contract parity, RPL4xx stats purity, RPL5xx snapshot
parity, RPL6xx stream fingerprints, RPL7xx process/fork safety, RPL8xx
dataflow taint (alias-aware RPL3xx upgrades backed by the
:mod:`repro.lint.dataflow` engine). Suppress a deliberate exception
with ``# reprolint: disable=RPLxxx -- reason`` on the line (or
``# reprolint: disable-file=RPLxxx -- reason`` for a whole file) — see
DESIGN.md sections 7 and 12 for the policy.
"""

from repro.lint.framework import (
    LintReport,
    ParsedModule,
    Rule,
    SuppressionRecord,
    Violation,
    all_rules,
    collect_files,
    format_human,
    format_json,
    format_sarif,
    run_lint,
    run_lint_report,
)

__all__ = [
    "LintReport",
    "ParsedModule",
    "Rule",
    "SuppressionRecord",
    "Violation",
    "all_rules",
    "collect_files",
    "format_human",
    "format_json",
    "format_sarif",
    "run_lint",
    "run_lint_report",
]
