"""Core machinery of ``reprolint``: modules, rules, suppressions, output.

The linter is a plain AST pass — no imports of the checked code, no
runtime reflection — so it can gate CI before anything executes and can
be pointed at fixture snippets in tests. A :class:`Rule` inspects one
:class:`ParsedModule` at a time through :meth:`Rule.check_module`;
rules that need cross-module state (e.g. kernel-contract parity, where
the two kernels live in different files) accumulate during the pass and
emit from :meth:`Rule.finalize`.

Suppressions are source comments, checked per line::

    value = hash(name)  # reprolint: disable=RPL102 -- display-only hash

and per file (anywhere in the file, conventionally at the top)::

    # reprolint: disable-file=RPL103 -- wall-clock is bookkeeping here

Every violation carries its rule code, so suppressions are always
targeted — there is deliberately no blanket ``disable=all``. The text
after ``--`` is the justification; it is carried into the JSON report
(``suppressions`` key) so baselines stay auditable.
"""

from __future__ import annotations

import ast
import dataclasses
import json
import re
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "Violation",
    "SuppressionRecord",
    "ParsedModule",
    "Rule",
    "register",
    "all_rules",
    "collect_files",
    "run_lint",
    "run_lint_report",
    "LintReport",
    "format_human",
    "format_json",
    "format_sarif",
]

#: Rule code for files the linter cannot parse at all.
PARSE_ERROR_CODE = "RPL001"

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*(disable|disable-file)\s*=\s*([A-Z0-9,\s]+?)"
    r"(?:\s*--\s*(.+?)\s*)?$"
)


@dataclass(frozen=True, order=True)
class Violation:
    """One rule hit, addressable by file position and rule code."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def as_dict(self) -> dict[str, object]:
        return dataclasses.asdict(self)


@dataclass(frozen=True, order=True)
class SuppressionRecord:
    """One ``# reprolint: disable[-file]=...`` comment, with its reason.

    Reported alongside violations (JSON ``suppressions`` key) so every
    silenced finding stays visible and auditable in machine output.
    """

    path: str
    line: int
    kind: str  # "line" | "file"
    codes: tuple[str, ...]
    reason: str | None

    def as_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "kind": self.kind,
            "codes": list(self.codes),
            "reason": self.reason,
        }


@dataclass
class ParsedModule:
    """One source file, parsed once and shared by every rule."""

    path: Path
    display_path: str
    source: str
    tree: ast.Module
    #: Line number -> codes suppressed on that line.
    line_suppressions: dict[int, set[str]] = field(default_factory=dict)
    #: Codes suppressed for the whole file.
    file_suppressions: set[str] = field(default_factory=set)
    #: Every suppression comment found, with its ``-- reason`` text.
    suppression_records: list[SuppressionRecord] = field(default_factory=list)

    @classmethod
    def parse(cls, path: Path, display_path: str | None = None) -> "ParsedModule":
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        module = cls(
            path=path,
            display_path=display_path or str(path),
            source=source,
            tree=tree,
        )
        module._scan_suppressions()
        return module

    def _scan_suppressions(self) -> None:
        for lineno, text in enumerate(self.source.splitlines(), start=1):
            match = _SUPPRESS_RE.search(text)
            if not match:
                continue
            kind, codes_text, reason = match.groups()
            codes = {c.strip() for c in codes_text.split(",") if c.strip()}
            if kind == "disable-file":
                self.file_suppressions |= codes
            else:
                self.line_suppressions.setdefault(lineno, set()).update(codes)
            self.suppression_records.append(
                SuppressionRecord(
                    path=self.display_path,
                    line=lineno,
                    kind="file" if kind == "disable-file" else "line",
                    codes=tuple(sorted(codes)),
                    reason=reason,
                )
            )

    # ------------------------------------------------------------- helpers

    @property
    def parts(self) -> tuple[str, ...]:
        """Directory names on the module's path (used for rule scoping)."""
        return tuple(p.name for p in self.path.parents if p.name)

    def in_packages(self, *names: str) -> bool:
        """Whether any ancestor directory is named one of ``names``."""
        return bool(set(names) & set(self.parts))

    def suppressed(self, violation: Violation) -> bool:
        if violation.code in self.file_suppressions:
            return True
        return violation.code in self.line_suppressions.get(violation.line, set())

    def violation(self, node: ast.AST, code: str, message: str) -> Violation:
        return Violation(
            path=self.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=code,
            message=message,
        )


class Rule:
    """Base class for lint rules.

    Subclasses set ``code`` (the family code reported by default),
    ``name`` and ``description``, override :meth:`check_module`, and may
    override :meth:`finalize` for cross-module checks. One instance is
    created per lint run, so instance state accumulates across modules.
    """

    code: str = "RPL000"
    name: str = "?"
    description: str = ""

    def check_module(self, module: ParsedModule) -> Iterable[Violation]:
        return ()

    def finalize(self) -> Iterable[Violation]:
        return ()


_REGISTRY: list[type[Rule]] = []


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the default rule set."""
    _REGISTRY.append(rule_cls)
    return rule_cls


def all_rules() -> list[type[Rule]]:
    """Every registered rule class, import-order stable."""
    # Importing the rules package populates the registry exactly once.
    from repro.lint import rules  # noqa: F401

    return list(_REGISTRY)


def collect_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.extend(
                p
                for p in sorted(path.rglob("*.py"))
                if "__pycache__" not in p.parts
            )
        elif path.suffix == ".py":
            out.append(path)
    # De-duplicate while keeping the sorted-within-argument order stable.
    seen: set[Path] = set()
    unique: list[Path] = []
    for path in out:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(path)
    return unique


def _selected(code: str, select: Sequence[str] | None) -> bool:
    if not select:
        return True
    return any(code.startswith(prefix) for prefix in select)


@dataclass
class LintReport:
    """Everything one lint pass produced, for formatters and baselines."""

    violations: list[Violation]
    files_checked: int
    suppressions: list[SuppressionRecord]


def run_lint_report(
    paths: Sequence[str | Path],
    select: Sequence[str] | None = None,
    rules: Sequence[type[Rule]] | None = None,
) -> LintReport:
    """Lint ``paths`` and return violations plus suppression records.

    ``select`` filters by code prefix (``["RPL1"]`` keeps the whole
    determinism family); suppression comments are honoured before
    selection. Unparseable files yield a single ``RPL001`` violation.
    """
    instances = [cls() for cls in (rules if rules is not None else all_rules())]
    violations: list[Violation] = []
    suppressions: list[SuppressionRecord] = []
    files = collect_files(paths)
    for path in files:
        try:
            module = ParsedModule.parse(path)
        except (SyntaxError, UnicodeDecodeError) as exc:
            line = getattr(exc, "lineno", 1) or 1
            violations.append(
                Violation(
                    path=str(path),
                    line=line,
                    col=0,
                    code=PARSE_ERROR_CODE,
                    message=f"cannot parse file: {exc.msg if hasattr(exc, 'msg') else exc}",
                )
            )
            continue
        suppressions.extend(module.suppression_records)
        for rule in instances:
            for violation in rule.check_module(module):
                if not module.suppressed(violation):
                    violations.append(violation)
    for rule in instances:
        violations.extend(rule.finalize())
    return LintReport(
        violations=sorted(v for v in violations if _selected(v.code, select)),
        files_checked=len(files),
        suppressions=sorted(suppressions),
    )


def run_lint(
    paths: Sequence[str | Path],
    select: Sequence[str] | None = None,
    rules: Sequence[type[Rule]] | None = None,
) -> list[Violation]:
    """Violations only — the original API, kept for rule tests."""
    return run_lint_report(paths, select=select, rules=rules).violations


# ---------------------------------------------------------------- output

def format_human(violations: Sequence[Violation], files_checked: int) -> str:
    lines = [v.render() for v in violations]
    summary = (
        f"{len(violations)} violation(s) in {files_checked} file(s)"
        if violations
        else f"clean: {files_checked} file(s), 0 violations"
    )
    lines.append(summary)
    return "\n".join(lines)


def format_json(
    violations: Sequence[Violation],
    files_checked: int,
    suppressions: Sequence[SuppressionRecord] = (),
) -> str:
    counts: dict[str, int] = {}
    for violation in violations:
        counts[violation.code] = counts.get(violation.code, 0) + 1
    payload = {
        "files_checked": files_checked,
        "violations": [v.as_dict() for v in violations],
        "counts": dict(sorted(counts.items())),
        # Suppressed findings stay auditable: each disable comment is
        # reported with its `-- reason` justification (None if missing).
        "suppressions": [s.as_dict() for s in suppressions],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def format_sarif(
    violations: Sequence[Violation], files_checked: int = 0
) -> str:
    """SARIF 2.1.0 output for GitHub code-scanning annotations."""
    codes = sorted({v.code for v in violations})
    by_code: dict[str, type[Rule]] = {}
    for rule_cls in all_rules():
        by_code.setdefault(rule_cls.code, rule_cls)
    rules_meta = []
    for code in codes:
        rule_cls = by_code.get(code)
        rules_meta.append(
            {
                "id": code,
                "name": rule_cls.name if rule_cls else "parse-error",
                "shortDescription": {
                    "text": rule_cls.description
                    if rule_cls
                    else "file could not be parsed"
                },
            }
        )
    index = {code: i for i, code in enumerate(codes)}
    results = [
        {
            "ruleId": v.code,
            "ruleIndex": index[v.code],
            "level": "error",
            "message": {"text": v.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": v.path.replace("\\", "/")},
                        "region": {
                            "startLine": v.line,
                            # SARIF columns are 1-based; ours are 0-based.
                            "startColumn": v.col + 1,
                        },
                    }
                }
            ],
        }
        for v in violations
    ]
    payload = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "rules": rules_meta,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def iter_calls(tree: ast.AST) -> Iterator[ast.Call]:
    """Every call node in ``tree`` (shared by several rules)."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for Name/Attribute chains, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
