"""Processor-cache simulation substrate.

The paper's evaluation runs applications under a software cache simulator:
"The cache simulated is a single-level set associative cache (2MB in size
for these experiments)". This package provides that simulator in two
flavours — an exact set-associative model with pluggable replacement
(:class:`SetAssociativeCache`) and a fully vectorised direct-mapped model
(:class:`DirectMappedCache`) for large sweeps — plus the ground-truth
per-object miss attribution that produces the paper's "Actual" columns.
"""

from repro.cache.config import CacheConfig, MechanismSpec, parse_mechanisms
from repro.cache.base import AccessResult, CacheModel, CacheStats
from repro.cache.policies import ReplacementPolicy
from repro.cache.kernels import KERNEL_BACKENDS, resolve_backend
from repro.cache.components import (
    CacheComponent,
    LineOutcome,
    MissCache,
    Pipeline,
    StreamBuffers,
    VictimCache,
    wrap_mechanisms,
)
from repro.cache.set_assoc import SetAssociativeCache
from repro.cache.direct_mapped import DirectMappedCache
from repro.cache.hierarchy import TwoLevelCache
from repro.cache.attribution import GroundTruth, MissSeries
from repro.errors import CacheConfigError

__all__ = [
    "CacheConfig",
    "CacheModel",
    "CacheStats",
    "CacheComponent",
    "AccessResult",
    "LineOutcome",
    "MechanismSpec",
    "ReplacementPolicy",
    "KERNEL_BACKENDS",
    "SetAssociativeCache",
    "DirectMappedCache",
    "TwoLevelCache",
    "Pipeline",
    "VictimCache",
    "MissCache",
    "StreamBuffers",
    "GroundTruth",
    "MissSeries",
    "parse_mechanisms",
    "wrap_mechanisms",
]


def make_cache(
    config: CacheConfig,
    seed: int | None = None,
    l1_config: CacheConfig | None = None,
    prefetch_next_line: bool = False,
    backend: str | None = None,
) -> CacheModel:
    """Build the right cache model for ``config``.

    Direct-mapped geometries get the vectorised model automatically unless
    a prefetcher is requested (prefetch needs the sequential model).
    ``l1_config`` puts a filtering L1 in front, returning a
    :class:`TwoLevelCache` whose miss stream (what the counters see) is
    the L2's. ``backend`` selects the kernel executing the access loop
    (see :mod:`repro.cache.kernels`); it defaults to ``config.backend``
    and, for the two-level model, applies to both levels.

    ``config.mechanisms`` wraps the built stack (outermost component
    last-listed) in the requested miss-reduction decorators — see
    :mod:`repro.cache.components`. Decorated stacks need the per-line
    victim protocol, which only the reference kernel's state exposes, so
    ``backend="array"``/``"auto"`` silently fall back to ``reference``
    until a flat decorated path exists (the dispatch tests pin this).
    An empty ``mechanisms`` tuple builds exactly the undecorated model.
    """
    backend = resolve_backend(backend if backend is not None else config.backend)
    if config.mechanisms:
        if prefetch_next_line:
            stack = "+".join(m.describe() for m in config.mechanisms)
            raise CacheConfigError(
                "prefetch_next_line cannot combine with the mechanism "
                f"stack {stack}: both own the miss path. Drop the "
                "prefetcher, or put an sb (stream buffers) entry in the "
                "stack — `repro mechanisms` sweeps those exactly"
            )
        base: CacheModel = (
            TwoLevelCache(l1_config, config, backend="reference", seed=seed)
            if l1_config is not None
            else SetAssociativeCache(config, seed=seed, backend="reference")
        )
        return wrap_mechanisms(base, config.mechanisms)
    if l1_config is not None:
        if prefetch_next_line:
            raise CacheConfigError(
                "prefetch_next_line is not supported on the two-level model"
            )
        return TwoLevelCache(l1_config, config, backend=backend, seed=seed)
    if config.assoc == 1 and not prefetch_next_line:
        # Already fully vectorised and exact for any backend; the miss
        # classification (and its indifference to write masks) must not
        # change with the backend knob, so both selections share it.
        return DirectMappedCache(config, backend=backend)
    return SetAssociativeCache(
        config, seed=seed, prefetch_next_line=prefetch_next_line, backend=backend
    )
