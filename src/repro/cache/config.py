"""Cache geometry configuration and validation."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.kernels import KERNEL_BACKENDS
from repro.cache.policies import ReplacementPolicy
from repro.errors import CacheConfigError
from repro.util.units import fmt_bytes, parse_size


def _log2_exact(n: int, what: str) -> int:
    if n <= 0 or n & (n - 1):
        raise CacheConfigError(f"{what} must be a positive power of two, got {n}")
    return n.bit_length() - 1


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of a single-level set-associative cache.

    Defaults model the scaled experimental cache (256 KiB, 4-way, 64-byte
    lines); :meth:`paper` returns the paper's 2 MB geometry. Sizes accept
    ints (bytes) or strings like ``"256K"``.
    """

    size: int = 256 * 1024
    line_size: int = 64
    assoc: int = 4
    policy: ReplacementPolicy = field(default=ReplacementPolicy.LRU)
    #: Kernel backend executing the access loop ("reference", "array" or
    #: "auto", which picks between them from observed miss density);
    #: backends are bit-identical, so this is purely a speed knob — but it
    #: still participates in result-cache keys (see experiments/) because
    #: the config is hashed field-by-field.
    backend: str = "reference"

    def __post_init__(self) -> None:
        size = parse_size(self.size) if isinstance(self.size, str) else self.size
        object.__setattr__(self, "size", size)
        _log2_exact(self.size, "cache size")
        _log2_exact(self.line_size, "line size")
        if self.assoc <= 0:
            raise CacheConfigError(f"associativity must be positive, got {self.assoc}")
        lines = self.size // self.line_size
        if lines % self.assoc:
            raise CacheConfigError(
                f"{lines} lines not divisible by associativity {self.assoc}"
            )
        if self.n_sets <= 0 or self.n_sets & (self.n_sets - 1):
            raise CacheConfigError(
                f"number of sets ({self.n_sets}) must be a power of two"
            )
        if self.backend not in KERNEL_BACKENDS:
            raise CacheConfigError(
                f"unknown cache kernel backend {self.backend!r}; "
                f"available: {', '.join(KERNEL_BACKENDS)}"
            )

    @property
    def n_lines(self) -> int:
        return self.size // self.line_size

    @property
    def n_sets(self) -> int:
        return self.n_lines // self.assoc

    @property
    def line_bits(self) -> int:
        return self.line_size.bit_length() - 1

    @property
    def set_mask(self) -> int:
        return self.n_sets - 1

    def set_of(self, addr: int) -> int:
        """Set index of an address (index bits above the line offset)."""
        return (addr >> self.line_bits) & self.set_mask

    def line_of(self, addr: int) -> int:
        """Global line number of an address (address >> line bits)."""
        return addr >> self.line_bits

    @classmethod
    def paper(cls) -> "CacheConfig":
        """The paper's experimental geometry: 2 MB set-associative."""
        return cls(size=2 * 1024 * 1024, line_size=64, assoc=4)

    def describe(self) -> str:
        return (
            f"{fmt_bytes(self.size)} {self.assoc}-way, "
            f"{self.line_size}B lines, {self.n_sets} sets, {self.policy.value}"
        )
