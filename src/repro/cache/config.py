"""Cache geometry configuration and validation."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.kernels import KERNEL_BACKENDS
from repro.cache.policies import ReplacementPolicy
from repro.errors import CacheConfigError
from repro.util.units import fmt_bytes, parse_size


def _log2_exact(n: int, what: str) -> int:
    if n <= 0 or n & (n - 1):
        raise CacheConfigError(f"{what} must be a positive power of two, got {n}")
    return n.bit_length() - 1


#: Mechanism kinds understood by :func:`parse_mechanisms` and
#: :mod:`repro.cache.components` (victim cache, miss cache, stream
#: buffers, per Jouppi's classification).
MECHANISM_KINDS = ("vc", "mc", "sb")

#: Default capacity per mechanism kind: victim/miss cache entries, or
#: stream-buffer count (mirrors the {2,4,8,16}-entry sweeps of the
#: VictimCacheMissSimulator design referenced in SNIPPETS.md #3).
_DEFAULT_ENTRIES = {"vc": 8, "mc": 8, "sb": 4}


@dataclass(frozen=True)
class MechanismSpec:
    """One miss-reduction mechanism in a cache's decorator stack.

    ``kind`` is ``"vc"`` (victim cache), ``"mc"`` (miss cache) or
    ``"sb"`` (stream buffers). ``entries`` is the fully-associative
    entry count for vc/mc and the buffer count for sb; ``depth`` is the
    per-buffer prefetch depth (sb only, ignored otherwise). Being a
    frozen dataclass, a spec hashes field-by-field into experiment
    cache keys through ``CacheConfig.mechanisms`` (see
    ``experiments/cache_store.canonical``).
    """

    kind: str
    entries: int = 0  # 0 = the kind's default
    depth: int = 4

    def __post_init__(self) -> None:
        if self.kind not in MECHANISM_KINDS:
            raise CacheConfigError(
                f"unknown mechanism kind {self.kind!r}; "
                f"available: {', '.join(MECHANISM_KINDS)}"
            )
        if self.entries == 0:
            object.__setattr__(self, "entries", _DEFAULT_ENTRIES[self.kind])
        if self.entries < 1:
            raise CacheConfigError(
                f"mechanism {self.kind!r} needs entries >= 1, got {self.entries}"
            )
        if self.depth < 1:
            raise CacheConfigError(
                f"mechanism {self.kind!r} needs depth >= 1, got {self.depth}"
            )

    def describe(self) -> str:
        if self.kind == "sb":
            return f"sb({self.entries}x{self.depth})"
        return f"{self.kind}({self.entries})"


def parse_mechanisms(spec) -> "tuple[MechanismSpec, ...]":
    """Normalise a mechanism spec to a tuple of :class:`MechanismSpec`.

    Accepts ``()``/``None``/``"none"``, an iterable of specs or kind
    strings, or a compact CLI string like ``"vc+sb"`` where each element
    is ``kind[:entries[:depth]]`` (e.g. ``"vc:16"``, ``"sb:4:8"``).
    Listed order is wrap order: each mechanism wraps the stack built so
    far, so the last one listed probes first on a miss path.
    """
    if spec is None or spec == () or spec == "":
        return ()
    if isinstance(spec, str):
        if spec.strip().lower() in ("none", "off"):
            return ()
        parts = [p.strip() for p in spec.split("+") if p.strip()]
        out = []
        for part in parts:
            fields = part.split(":")
            kind = fields[0].lower()
            entries = int(fields[1]) if len(fields) > 1 else 0
            depth = int(fields[2]) if len(fields) > 2 else 4
            out.append(MechanismSpec(kind, entries=entries, depth=depth))
        return tuple(out)
    out = []
    for item in spec:
        if isinstance(item, MechanismSpec):
            out.append(item)
        elif isinstance(item, str):
            out.extend(parse_mechanisms(item))
        else:
            raise CacheConfigError(
                f"mechanism entries must be MechanismSpec or str, got {item!r}"
            )
    return tuple(out)


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of a single-level set-associative cache.

    Defaults model the scaled experimental cache (256 KiB, 4-way, 64-byte
    lines); :meth:`paper` returns the paper's 2 MB geometry. Sizes accept
    ints (bytes) or strings like ``"256K"``.
    """

    size: int = 256 * 1024
    line_size: int = 64
    assoc: int = 4
    policy: ReplacementPolicy = field(default=ReplacementPolicy.LRU)
    #: Kernel backend executing the access loop ("reference", "array" or
    #: "auto", which picks between them from observed miss density);
    #: backends are bit-identical, so this is purely a speed knob — but it
    #: still participates in result-cache keys (see experiments/) because
    #: the config is hashed field-by-field.
    backend: str = "reference"
    #: Declarative miss-reduction decorator stack (victim cache, miss
    #: cache, stream buffers — see :mod:`repro.cache.components`).
    #: Accepts a tuple of :class:`MechanismSpec`, kind strings, or a
    #: compact ``"vc+sb"`` string; normalised to a spec tuple. Unlike
    #: ``backend`` this changes simulated behaviour, and it reaches every
    #: experiment cache key through the same field-by-field hash.
    mechanisms: tuple = ()

    def __post_init__(self) -> None:
        size = parse_size(self.size) if isinstance(self.size, str) else self.size
        object.__setattr__(self, "size", size)
        _log2_exact(self.size, "cache size")
        _log2_exact(self.line_size, "line size")
        if self.assoc <= 0:
            raise CacheConfigError(f"associativity must be positive, got {self.assoc}")
        lines = self.size // self.line_size
        if lines % self.assoc:
            raise CacheConfigError(
                f"{lines} lines not divisible by associativity {self.assoc}"
            )
        if self.n_sets <= 0 or self.n_sets & (self.n_sets - 1):
            raise CacheConfigError(
                f"number of sets ({self.n_sets}) must be a power of two"
            )
        if self.backend not in KERNEL_BACKENDS:
            raise CacheConfigError(
                f"unknown cache kernel backend {self.backend!r}; "
                f"available: {', '.join(KERNEL_BACKENDS)}"
            )
        object.__setattr__(self, "mechanisms", parse_mechanisms(self.mechanisms))

    @property
    def n_lines(self) -> int:
        return self.size // self.line_size

    @property
    def n_sets(self) -> int:
        return self.n_lines // self.assoc

    @property
    def line_bits(self) -> int:
        return self.line_size.bit_length() - 1

    @property
    def set_mask(self) -> int:
        return self.n_sets - 1

    def set_of(self, addr: int) -> int:
        """Set index of an address (index bits above the line offset)."""
        return (addr >> self.line_bits) & self.set_mask

    def line_of(self, addr: int) -> int:
        """Global line number of an address (address >> line bits)."""
        return addr >> self.line_bits

    @classmethod
    def paper(cls) -> "CacheConfig":
        """The paper's experimental geometry: 2 MB set-associative."""
        return cls(size=2 * 1024 * 1024, line_size=64, assoc=4)

    def resized(self, size: "int | str") -> "CacheConfig":
        """This geometry at a different total size (same line size,
        associativity, policy, backend and mechanism stack) — the sweep
        helper experiment grids use to vary capacity alone."""
        import dataclasses

        return dataclasses.replace(self, size=size)

    def describe(self) -> str:
        base = (
            f"{fmt_bytes(self.size)} {self.assoc}-way, "
            f"{self.line_size}B lines, {self.n_sets} sets, {self.policy.value}"
        )
        if self.mechanisms:
            base += " + " + "+".join(m.describe() for m in self.mechanisms)
        return base
