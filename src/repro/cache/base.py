"""Cache-model interface and statistics.

All cache models consume *chunked* NumPy address arrays (never one Python
call per reference — see DESIGN.md section 6) and support a ``miss_budget``
early-exit so the simulation engine can stop exactly at the reference whose
miss overflows a hardware counter, which is what makes interrupt delivery
points exact rather than chunk-granular.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import NamedTuple

import numpy as np

from repro.cache.config import CacheConfig


@dataclass
class CacheStats:
    """Running totals for one cache model."""

    accesses: int = 0
    misses: int = 0
    #: Dirty lines written back to memory on eviction (write-back model).
    writebacks: int = 0
    #: Prefetch fills issued (next-line prefetcher, when enabled).
    prefetches: int = 0
    #: Per-category totals, keyed by the ``tag`` passed to ``access``
    #: ("app" for application references, "instr" for instrumentation).
    accesses_by_tag: dict[str, int] = field(default_factory=dict)
    misses_by_tag: dict[str, int] = field(default_factory=dict)
    #: Per-mechanism event counters for decorator components (see
    #: :mod:`repro.cache.components`): ``vc_hits``/``vc_probes``,
    #: ``mc_hits``/``mc_probes``, ``sb_hits``/``sb_probes``/
    #: ``sb_prefetches``. Empty for plain caches; merged key-wise like
    #: the per-tag dicts.
    mechanism: dict[str, int] = field(default_factory=dict)

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def record(
        self,
        tag: str,
        accesses: int,
        misses: int,
        writebacks: int = 0,
        prefetches: int = 0,
        mechanism: dict[str, int] | None = None,
    ) -> None:
        """Add one chunk's event counts (the only mutation entry point).

        All counter movement goes through here (or :meth:`merge`) so the
        per-tag attribution and :meth:`snapshot` semantics can't be
        bypassed; reprolint's RPL401 enforces this statically.
        """
        self.accesses += accesses
        self.misses += misses
        self.writebacks += writebacks
        self.prefetches += prefetches
        self.accesses_by_tag[tag] = self.accesses_by_tag.get(tag, 0) + accesses
        self.misses_by_tag[tag] = self.misses_by_tag.get(tag, 0) + misses
        if mechanism:
            for event, count in mechanism.items():
                self.mechanism[event] = self.mechanism.get(event, 0) + count

    def snapshot(self) -> "CacheStats":
        """An independent copy of the current totals.

        Consumers that read totals at a known point (e.g. the engine
        freezing instrumentation counts at stream end, before tool
        teardown hooks run) snapshot instead of holding a live reference,
        so later recording can never drift what they observed.
        """
        return CacheStats(
            accesses=self.accesses,
            misses=self.misses,
            writebacks=self.writebacks,
            prefetches=self.prefetches,
            accesses_by_tag=dict(self.accesses_by_tag),
            misses_by_tag=dict(self.misses_by_tag),
            mechanism=dict(self.mechanism),
        )

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Add ``other``'s totals into this object (returns ``self``).

        Used to combine per-level stats of a hierarchy into one view;
        per-tag dicts are merged key-wise.
        """
        self.accesses += other.accesses
        self.misses += other.misses
        self.writebacks += other.writebacks
        self.prefetches += other.prefetches
        for tag, count in other.accesses_by_tag.items():
            self.accesses_by_tag[tag] = self.accesses_by_tag.get(tag, 0) + count
        for tag, count in other.misses_by_tag.items():
            self.misses_by_tag[tag] = self.misses_by_tag.get(tag, 0) + count
        for event, count in other.mechanism.items():
            self.mechanism[event] = self.mechanism.get(event, 0) + count
        return self


class AccessResult(NamedTuple):
    """Result of a (possibly budget-limited) chunk access.

    ``miss_mask`` covers only the ``consumed`` leading references of the
    chunk; references past ``consumed`` were *not* applied to the cache.
    """

    miss_mask: np.ndarray
    consumed: int

    @property
    def n_misses(self) -> int:
        return int(self.miss_mask.sum())


class CacheModel(abc.ABC):
    """Abstract single-level cache."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.stats = CacheStats()

    @abc.abstractmethod
    def access(
        self,
        addrs: np.ndarray,
        miss_budget: int | None = None,
        tag: str = "app",
        writes: np.ndarray | None = None,
    ) -> AccessResult:
        """Run a chunk of byte addresses through the cache.

        ``addrs`` is a uint64 array; references are applied in order. If
        ``miss_budget`` is given, processing stops immediately after the
        budget-th miss and ``consumed`` reports how many references were
        applied (the rest must be resubmitted by the caller). ``writes``
        optionally marks store references (same length as ``addrs``);
        models with write-back semantics use it to track dirty lines.
        """

    @abc.abstractmethod
    def reset(self) -> None:
        """Empty the cache (cold start) without clearing statistics."""

    @abc.abstractmethod
    def contents_line_count(self) -> int:
        """Number of valid lines currently cached (for tests/diagnostics)."""

    def warm_fraction(self) -> float:
        """Fraction of the cache currently holding valid lines."""
        return self.contents_line_count() / self.config.n_lines
