"""Two-level cache hierarchy (extension beyond the paper's single level).

The paper simulates "a single-level set associative cache"; a downstream
user of the techniques on real hardware would monitor the *last-level*
cache, in front of which a small L1 filters most traffic. This model
composes an L1 and an L2 (both LRU set-associative, non-inclusive,
fill-on-miss to both levels) behind the standard :class:`CacheModel`
interface, where:

* ``access`` returns the **L2 (memory) miss mask** — that is what the
  simulated miss counters count, matching what an off-core HPM would see;
* ``miss_budget`` is a budget of L2 misses, honoured exactly (the loop
  walks both levels per reference, so it can stop at the triggering
  reference just like the single-level models);
* ``stats`` tracks L2 activity, and :attr:`l1_stats` the filtered level.

The hierarchy bench shows the profiling techniques still rank the same
objects when an L1 filter removes most hits from the monitored stream.
"""

from __future__ import annotations

import numpy as np

from repro.cache.base import AccessResult, CacheModel, CacheStats
from repro.cache.config import CacheConfig
from repro.errors import CacheConfigError


class TwoLevelCache(CacheModel):
    """Non-inclusive L1 + L2 hierarchy, exact LRU at both levels."""

    def __init__(self, l1: CacheConfig, l2: CacheConfig) -> None:
        if l1.size >= l2.size:
            raise CacheConfigError(
                f"L1 ({l1.size}) must be smaller than L2 ({l2.size})"
            )
        if l1.line_size != l2.line_size:
            raise CacheConfigError("L1 and L2 must share a line size")
        super().__init__(l2)
        self.l1_config = l1
        self.l2_config = l2
        self.l1_stats = CacheStats()
        self._l1_sets: list[list[int]] = [[] for _ in range(l1.n_sets)]
        self._l2_sets: list[list[int]] = [[] for _ in range(l2.n_sets)]

    def reset(self) -> None:
        self._l1_sets = [[] for _ in range(self.l1_config.n_sets)]
        self._l2_sets = [[] for _ in range(self.l2_config.n_sets)]

    def contents_line_count(self) -> int:
        """Valid lines in the monitored (L2) level."""
        return sum(len(s) for s in self._l2_sets)

    def l1_contents_line_count(self) -> int:
        return sum(len(s) for s in self._l1_sets)

    def contains_addr(self, addr: int) -> bool:
        line = addr >> self.config.line_bits
        return line in self._l2_sets[line & self.l2_config.set_mask]

    def access(
        self,
        addrs: np.ndarray,
        miss_budget: int | None = None,
        tag: str = "app",
        writes: np.ndarray | None = None,
    ) -> AccessResult:
        n = len(addrs)
        if n == 0:
            return AccessResult(np.zeros(0, dtype=bool), 0)
        lines = (np.asarray(addrs, dtype=np.uint64) >> self.config.line_bits).tolist()
        l1_sets = self._l1_sets
        l2_sets = self._l2_sets
        l1_mask = self.l1_config.set_mask
        l2_mask = self.l2_config.set_mask
        l1_assoc = self.l1_config.assoc
        l2_assoc = self.l2_config.assoc

        miss_flags = bytearray(n)
        budget = miss_budget if miss_budget is not None else n + 1
        l1_misses = 0
        l2_misses = 0
        consumed = n
        for i in range(n):
            line = lines[i]
            s1 = l1_sets[line & l1_mask]
            if line in s1:
                if s1[-1] != line:
                    s1.remove(line)
                    s1.append(line)
                continue  # L1 hit: invisible to the monitored level
            l1_misses += 1
            # Fill L1.
            if len(s1) >= l1_assoc:
                s1.pop(0)
            s1.append(line)
            # Probe L2.
            s2 = l2_sets[line & l2_mask]
            if line in s2:
                if s2[-1] != line:
                    s2.remove(line)
                    s2.append(line)
            else:
                miss_flags[i] = 1
                l2_misses += 1
                if len(s2) >= l2_assoc:
                    s2.pop(0)
                s2.append(line)
                budget -= 1
                if budget == 0:
                    consumed = i + 1
                    break

        miss_mask = np.frombuffer(bytes(miss_flags[:consumed]), dtype=np.uint8).astype(
            bool
        )
        self.l1_stats.record(tag, consumed, l1_misses)
        self.stats.record(tag, consumed, l2_misses)
        return AccessResult(miss_mask, consumed)

    def describe(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"L1 {self.l1_config.describe()} + L2 {self.l2_config.describe()}"
        )
