"""Two-level cache hierarchy (extension beyond the paper's single level).

The paper simulates "a single-level set associative cache"; a downstream
user of the techniques on real hardware would monitor the *last-level*
cache, in front of which a small L1 filters most traffic. This model is
the two-level specialisation of the generic component
:class:`~repro.cache.components.Pipeline` (non-inclusive, fill-on-miss
to both levels) and keeps the pre-refactor contract bit-for-bit:

* ``access`` returns the **L2 (memory) miss mask** — that is what the
  simulated miss counters count, matching what an off-core HPM would see;
* ``miss_budget`` is a budget of L2 misses, honoured exactly: the L1
  state is snapshotted before a budgeted chunk and, when the budget-th
  L2 miss falls mid-chunk, rolled back and re-applied over the consumed
  prefix only (L1 evolution is independent of L2, so this is
  bit-identical to walking both levels per reference);
* ``stats`` tracks L2 activity, and :attr:`l1_stats` the filtered level.
  Both levels record every consumed reference under the same tag, so per
  tag the two levels' access totals must agree — an invariant the tests
  check via :meth:`CacheStats.snapshot`/:meth:`CacheStats.merge`.

Each level runs on the kernel backend selected by ``backend`` (or, by
default, the L2 config's ``backend`` field) — see
:mod:`repro.cache.kernels`. Write masks are ignored by this model (no
dirty-line tracking across levels).

The hierarchy bench shows the profiling techniques still rank the same
objects when an L1 filter removes most hits from the monitored stream.
"""

from __future__ import annotations

from repro.cache.base import CacheStats
from repro.cache.components import Pipeline, SharedCacheLevel
from repro.cache.config import CacheConfig
from repro.cache.set_assoc import SetAssociativeCache


def make_private_l1(
    l1: CacheConfig,
    backend: str | None = None,
    seed: int | None = None,
    core_id: int = 0,
) -> SetAssociativeCache:
    """Build one core's private L1 exactly as :class:`TwoLevelCache` does.

    Shared between the single-core hierarchy and the multi-core core
    pipelines so the two constructions stay bit-identical: core 0's L1
    draws the same RANDOM-eviction stream as a ``TwoLevelCache`` L1
    (``seed + 1``); later cores shift by their core id.
    """
    return SetAssociativeCache(
        l1,
        seed=None if seed is None else seed + 1 + core_id,
        backend=backend,
    )


def make_shared_level(
    llc: CacheConfig, backend: str | None = None, seed: int | None = None
) -> SharedCacheLevel:
    """Build the shared LLC leaf with :class:`TwoLevelCache`'s L2 seeding."""
    return SharedCacheLevel(SetAssociativeCache(llc, seed=seed, backend=backend))


def core_pipeline(
    shared: SharedCacheLevel,
    core_id: int,
    l1: CacheConfig | None = None,
    backend: str | None = None,
    seed: int | None = None,
) -> Pipeline:
    """One core's hierarchy over a shared level: ``[private L1?, port]``.

    The port's solo *shadow* model reuses the leaf's geometry, backend
    and seed, so with one core it evolves bit-identically to the shared
    leaf and every miss classifies as *self*.
    """
    shadow = SetAssociativeCache(shared.config, seed=seed, backend=backend)
    port = shared.port(core_id, shadow)
    levels = [port] if l1 is None else [
        make_private_l1(l1, backend=backend, seed=seed, core_id=core_id),
        port,
    ]
    return Pipeline(levels)


class TwoLevelCache(Pipeline):
    """Non-inclusive L1 + L2 hierarchy over pluggable kernels."""

    def __init__(
        self,
        l1: CacheConfig,
        l2: CacheConfig,
        backend: str | None = None,
        seed: int | None = None,
    ) -> None:
        # Distinct seeds keep the levels' RANDOM-eviction streams
        # independent while staying deterministic.
        level1 = make_private_l1(l1, backend=backend, seed=seed)
        level2 = SetAssociativeCache(l2, seed=seed, backend=backend)
        super().__init__([level1, level2])
        self.l1_config = l1
        self.l2_config = l2
        self.backend = level2.backend

    @property
    def l1_stats(self) -> CacheStats:
        """The filtered (L1) level's live ledger."""
        return self.levels[0].stats

    @property
    def _l1(self):
        """The L1 kernel (tests and diagnostics)."""
        return self.levels[0]._kernel

    @property
    def _l2(self):
        """The L2 kernel (tests and diagnostics)."""
        return self.levels[1]._kernel

    def l1_contents_line_count(self) -> int:
        return self.levels[0].contents_line_count()

    def describe(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"L1 {self.l1_config.describe()} + L2 {self.l2_config.describe()}"
        )
