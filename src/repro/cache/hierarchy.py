"""Two-level cache hierarchy (extension beyond the paper's single level).

The paper simulates "a single-level set associative cache"; a downstream
user of the techniques on real hardware would monitor the *last-level*
cache, in front of which a small L1 filters most traffic. This model
composes an L1 and an L2 (non-inclusive, fill-on-miss to both levels)
behind the standard :class:`CacheModel` interface, where:

* ``access`` returns the **L2 (memory) miss mask** — that is what the
  simulated miss counters count, matching what an off-core HPM would see;
* ``miss_budget`` is a budget of L2 misses, honoured exactly: the L1
  kernel state is snapshotted before a budgeted chunk and, when the
  budget-th L2 miss falls mid-chunk, rolled back and re-applied over the
  consumed prefix only (L1 evolution is independent of L2, so this is
  bit-identical to walking both levels per reference);
* ``stats`` tracks L2 activity, and :attr:`l1_stats` the filtered level.
  Both levels record every consumed reference under the same tag, so per
  tag the two levels' access totals must agree — an invariant the tests
  check via :meth:`CacheStats.snapshot`/:meth:`CacheStats.merge`.

Each level runs on the kernel backend selected by ``backend`` (or, by
default, the L2 config's ``backend`` field) — see
:mod:`repro.cache.kernels`. Write masks are ignored by this model (no
dirty-line tracking across levels).

The hierarchy bench shows the profiling techniques still rank the same
objects when an L1 filter removes most hits from the monitored stream.
"""

from __future__ import annotations

import numpy as np

from repro.cache.base import AccessResult, CacheModel, CacheStats
from repro.cache.config import CacheConfig
from repro.cache.kernels import kernel_for_config, resolve_backend
from repro.errors import CacheConfigError


class TwoLevelCache(CacheModel):
    """Non-inclusive L1 + L2 hierarchy over pluggable kernels."""

    def __init__(
        self,
        l1: CacheConfig,
        l2: CacheConfig,
        backend: str | None = None,
        seed: int | None = None,
    ) -> None:
        if l1.size >= l2.size:
            raise CacheConfigError(
                f"L1 ({l1.size}) must be smaller than L2 ({l2.size})"
            )
        if l1.line_size != l2.line_size:
            raise CacheConfigError("L1 and L2 must share a line size")
        super().__init__(l2)
        self.l1_config = l1
        self.l2_config = l2
        self.l1_stats = CacheStats()
        self.backend = resolve_backend(
            backend if backend is not None else l2.backend
        )
        # Distinct seeds keep the levels' RANDOM-eviction streams
        # independent while staying deterministic.
        self._l1 = kernel_for_config(
            self.backend, l1, seed=None if seed is None else seed + 1
        )
        self._l2 = kernel_for_config(self.backend, l2, seed=seed)

    def reset(self) -> None:
        self._l1.reset()
        self._l2.reset()

    def contents_line_count(self) -> int:
        """Valid lines in the monitored (L2) level."""
        return self._l2.contents_line_count()

    def l1_contents_line_count(self) -> int:
        return self._l1.contents_line_count()

    def contains_addr(self, addr: int) -> bool:
        return self._l2.contains_line(addr >> self.config.line_bits)

    def combined_stats(self) -> CacheStats:
        """Both levels' totals merged into one fresh :class:`CacheStats`."""
        return self.l1_stats.snapshot().merge(self.stats)

    def access(
        self,
        addrs: np.ndarray,
        miss_budget: int | None = None,
        tag: str = "app",
        writes: np.ndarray | None = None,
    ) -> AccessResult:
        n = len(addrs)
        if n == 0:
            return AccessResult(np.zeros(0, dtype=bool), 0)
        addrs = np.asarray(addrs, dtype=np.uint64)
        l1_snap = self._l1.snapshot() if miss_budget is not None else None
        r1 = self._l1.access(addrs)
        filtered = np.flatnonzero(r1.miss_mask)  # L1 misses probe L2
        r2 = self._l2.access(addrs[filtered], miss_budget=miss_budget)

        consumed = n
        if miss_budget is not None and r2.misses >= miss_budget:
            # Budget exhausted: the chunk ends at the reference whose L1
            # miss produced the budget-th L2 miss. Trailing references —
            # even L1 hits — are not consumed, exactly as a per-reference
            # walk would stop.
            consumed = int(filtered[r2.consumed - 1]) + 1
            filtered = filtered[: r2.consumed]
            if consumed < n:
                self._l1.restore(l1_snap)
                r1 = self._l1.access(addrs[:consumed])

        miss_mask = np.zeros(consumed, dtype=bool)
        miss_mask[filtered[r2.miss_mask]] = True
        self.l1_stats.record(tag, consumed, r1.misses)
        self.stats.record(tag, consumed, r2.misses)
        return AccessResult(miss_mask, consumed)

    def describe(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"L1 {self.l1_config.describe()} + L2 {self.l2_config.describe()}"
        )
