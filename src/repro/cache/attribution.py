"""Ground-truth per-object miss attribution (the paper's "Actual" column).

Table 1's "Actual" percentages were "measured by lower levels of the
simulator, separate from the sampling and search code"; this module is that
lower level. The engine hands it every application miss address; it
classifies them in bulk against the current object-map snapshot
(vectorised searchsorted + bincount) and accumulates exact per-object
totals. It can also bucket misses by virtual time, producing the
per-array time series plotted in Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.memory.object_map import ObjectMap
from repro.memory.objects import MemoryObject


@dataclass
class MissSeries:
    """Time-bucketed per-object miss counts (Figure 5's data)."""

    bucket_cycles: int
    #: name -> {bucket index -> miss count}
    counts: dict[str, dict[int, int]] = field(default_factory=dict)
    max_bucket: int = 0

    def add(self, name: str, bucket: int, count: int) -> None:
        self.counts.setdefault(name, {})[bucket] = (
            self.counts.get(name, {}).get(bucket, 0) + count
        )
        self.max_bucket = max(self.max_bucket, bucket)

    def series_for(self, name: str) -> np.ndarray:
        """Dense per-bucket miss counts for one object name."""
        out = np.zeros(self.max_bucket + 1, dtype=np.int64)
        for bucket, count in self.counts.get(name, {}).items():
            out[bucket] = count
        return out

    def names(self) -> list[str]:
        return sorted(self.counts)


class GroundTruth:
    """Exact per-object miss accounting, outside the measured techniques.

    Counts are keyed by object name so that heap blocks freed and
    reallocated at the same address accumulate under their (address-based)
    name, matching how the paper reports heap objects.
    """

    def __init__(self, object_map: ObjectMap) -> None:
        self.object_map = object_map
        self._counts: dict[str, int] = {}
        self._objects: dict[str, MemoryObject] = {}
        self.total_misses = 0
        self.unattributed = 0
        self._series: MissSeries | None = None

    def enable_series(self, bucket_cycles: int) -> MissSeries:
        """Start recording the Figure-5-style time series."""
        self._series = MissSeries(bucket_cycles=bucket_cycles)
        return self._series

    @property
    def series(self) -> MissSeries | None:
        return self._series

    def observe(self, miss_addrs: np.ndarray, cycle: int | None = None) -> None:
        """Record a block of miss addresses (at virtual time ``cycle``)."""
        if len(miss_addrs) == 0:
            return
        snapshot = self.object_map.snapshot()
        counts = snapshot.count_by_object(miss_addrs)
        attributed = 0
        bucket = None
        if self._series is not None and cycle is not None:
            bucket = int(cycle) // self._series.bucket_cycles
        for obj, count in zip(snapshot.objects, counts):
            if count == 0:
                continue
            count = int(count)
            self._counts[obj.name] = self._counts.get(obj.name, 0) + count
            self._objects[obj.name] = obj
            attributed += count
            if bucket is not None:
                self._series.add(obj.name, bucket, count)
        self.total_misses += len(miss_addrs)
        self.unattributed += len(miss_addrs) - attributed

    def count_for(self, name: str) -> int:
        return self._counts.get(name, 0)

    def share_of(self, name: str) -> float:
        """Fraction of all observed misses attributed to ``name``."""
        if self.total_misses == 0:
            return 0.0
        return self._counts.get(name, 0) / self.total_misses

    def ranked(self) -> list[tuple[MemoryObject, int]]:
        """Objects by descending miss count (name-stable tie-break)."""
        ordered = sorted(self._counts.items(), key=lambda kv: (-kv[1], kv[0]))
        return [(self._objects[name], count) for name, count in ordered]

    def profile(self):
        """The ground truth as a :class:`repro.core.profile.DataProfile`."""
        from repro.core.profile import DataProfile, ObjectShare

        total = self.total_misses
        shares = [
            ObjectShare(
                name=obj.name,
                obj=obj,
                count=count,
                share=(count / total) if total else 0.0,
            )
            for obj, count in self.ranked()
        ]
        return DataProfile(source="actual", shares=shares, total_misses=total)
