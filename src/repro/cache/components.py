"""Composable cache components: pipelines and miss-reduction decorators.

The paper simulates a fixed set-associative hierarchy; this module makes
the hierarchy *compositional* so mechanism × size sweeps can ask which
objects each classic miss-reduction mechanism rescues (ROADMAP item 4,
mirroring the VC/MC/SB experimental design in SNIPPETS.md #3):

* :class:`CacheComponent` — the component protocol. On top of the
  chunked :class:`~repro.cache.base.CacheModel` interface it adds a
  *scalar* per-line path (``begin_stage`` / ``access_line`` /
  ``commit_stage``) plus stats-free state capture
  (``state_snapshot``/``state_restore``). The scalar path exists because
  decorators need each reference's *eviction victim* from the component
  they wrap — information the chunked kernel interface deliberately does
  not expose;
* :class:`Pipeline` — a generic N-level filtering hierarchy
  (:class:`~repro.cache.hierarchy.TwoLevelCache` is its two-level
  specialisation and stays bit-identical to the pre-refactor model);
* :class:`VictimCache` / :class:`MissCache` / :class:`StreamBuffers` —
  decorators wrapping any component, each with its own
  :class:`~repro.cache.base.CacheStats` ledger whose ``mechanism`` dict
  carries the per-mechanism event counts (``vc_hits``, ``mc_hits``,
  ``sb_hits``, ``sb_prefetches``, ...).

Mechanism semantics (Jouppi 1990, adapted to this code base's model):

* **Victim cache** — a small fully-associative buffer holding lines the
  wrapped component evicts. On an inner miss the VC is probed: a hit
  *swaps* (the VC entry is consumed, the inner component's new victim
  takes its slot) and the reference is **not** a memory miss; a VC miss
  forwards the inner victim into the VC (evicting its LRU entry) and
  counts a memory miss. VC contents are exclusive of the wrapped
  component by construction. Dirty victims are written back when the
  wrapped component evicts them (before entering the VC) — a documented
  simplification that keeps write-back accounting at the leaf.
* **Miss cache** — a small fully-associative cache *probed* on inner
  misses; hits rescue the miss, misses insert the demanded line. Unlike
  the VC it duplicates lines the wrapped component also holds, so no
  inclusion/exclusion invariant holds.
* **Stream buffers** — ``entries`` FIFO buffers of ``depth`` next-line
  prefetches. An inner miss that matches a buffer *head* is rescued; the
  buffer shifts and prefetches one more line. A miss matching no head
  allocates the least-recently-used buffer at ``line+1 .. line+depth``.
  Every rescued line was prefetched earlier (``sb_hits`` can never
  exceed ``sb_prefetches``).

Decorated stacks run on the reference kernel only (``make_cache`` forces
the backend; there is no flat/vectorised path for decorators yet), and
the scalar loop stops *exactly* at the budget-th post-mechanism miss —
the same interrupt-precision contract the chunked models honour.
"""

from __future__ import annotations

import abc
from typing import NamedTuple

import numpy as np

from repro import sanitize
from repro.cache.base import AccessResult, CacheModel, CacheStats
from repro.cache.config import CacheConfig, MechanismSpec, parse_mechanisms
from repro.cache.kernels.base import KernelResult
from repro.errors import CacheConfigError


class LineOutcome(NamedTuple):
    """Result of pushing one line through a component's scalar path.

    ``evicted`` is the line number that left the component's *total*
    storage because of this access (None when nothing did) — the handle
    decorators use to capture victims. A victim-cache rescue reports
    ``evicted=None``: the inner victim moved into the VC slot the hit
    freed, so nothing left the decorated component as a whole.
    """

    miss: bool
    evicted: int | None


class CacheComponent(CacheModel):
    """A cache model that can participate in pipelines and decorators.

    Besides the chunked :meth:`~repro.cache.base.CacheModel.access`, a
    component exposes:

    * a **staged** scalar path — :meth:`begin_stage` resets per-chunk
      event counters, :meth:`access_line` applies one line reference and
      reports the victim, :meth:`commit_stage` records the staged counts
      into :attr:`stats` under a tag (cascading to wrapped components),
      keeping every counter movement inside ``CacheStats.record``
      (RPL401);
    * ``_chunk_access`` — the chunked classification *without* stats
      recording, so compositions control when and with what access
      totals each ledger is committed;
    * :meth:`state_snapshot`/:meth:`state_restore` — stats-free state
      capture used for exact ``miss_budget`` rollback.
    """

    # ------------------------------------------------------------ scalar

    @abc.abstractmethod
    def begin_stage(self) -> None:
        """Zero the staged per-chunk counters (cascades to inner)."""

    @abc.abstractmethod
    def access_line(self, line: int, write: bool = False) -> LineOutcome:
        """Apply one line reference; report miss status and the victim."""

    @abc.abstractmethod
    def commit_stage(self, tag: str, accesses: int) -> None:
        """Record staged counts into :attr:`stats` (cascades to inner)."""

    # ----------------------------------------------------------- chunked

    @abc.abstractmethod
    def _chunk_access(
        self,
        addrs: np.ndarray,
        miss_budget: int | None = None,
        writes: np.ndarray | None = None,
    ) -> KernelResult:
        """Classify a chunk, staging (not recording) event counts."""

    # ------------------------------------------------------------- state

    @abc.abstractmethod
    def state_snapshot(self) -> object:
        """Opaque copy of cache state (not statistics)."""

    @abc.abstractmethod
    def state_restore(self, state: object) -> None:
        """Restore a state captured by :meth:`state_snapshot`."""

    # ----------------------------------------------------------- ledgers

    def component_ledgers(self) -> list[tuple[str, CacheStats]]:
        """(label, stats) for every component in this stack, outer first."""
        return [("cache", self.stats)]


class MechanismDecorator(CacheComponent):
    """Base class for miss-reduction decorators wrapping a component.

    The decorator drives the wrapped component through the scalar path
    one line at a time, rescuing (or confirming) each inner miss. Its
    ``access`` therefore reports the *post-mechanism* miss stream — what
    a memory-side hardware counter would see — and honours
    ``miss_budget`` against exactly that stream.
    """

    #: Mechanism kind tag ("vc", "mc", "sb") — prefixes ledger keys.
    kind: str = "?"

    def __init__(self, inner: CacheComponent, entries: int) -> None:
        if entries < 1:
            raise CacheConfigError(
                f"{type(self).__name__} needs entries >= 1, got {entries}"
            )
        super().__init__(inner.config)
        self.inner = inner
        self.entries = entries
        self._staged_misses = 0
        self._staged_hits = 0
        self._staged_probes = 0
        self._staged_prefetches = 0

    # ------------------------------------------------------------ scalar

    def begin_stage(self) -> None:
        self._staged_misses = 0
        self._staged_hits = 0
        self._staged_probes = 0
        self._staged_prefetches = 0
        self.inner.begin_stage()

    def commit_stage(self, tag: str, accesses: int) -> None:
        self.stats.record(
            tag,
            accesses,
            self._staged_misses,
            prefetches=self._staged_prefetches,
            mechanism=self._staged_mechanism(),
        )
        self._staged_misses = 0
        self._staged_hits = 0
        self._staged_probes = 0
        self._staged_prefetches = 0
        self.inner.commit_stage(tag, accesses)
        # After the cascade both ledgers hold this chunk, so the chain
        # identities (probes == inner misses, ...) must hold on totals.
        if sanitize.is_active():
            sanitize.check_component(self, self.kind)

    def _staged_mechanism(self) -> dict[str, int]:
        counts = {
            f"{self.kind}_hits": self._staged_hits,
            f"{self.kind}_probes": self._staged_probes,
        }
        if self.kind == "sb":
            counts["sb_prefetches"] = self._staged_prefetches
        return counts

    # ----------------------------------------------------------- chunked

    def _chunk_access(
        self,
        addrs: np.ndarray,
        miss_budget: int | None = None,
        writes: np.ndarray | None = None,
    ) -> KernelResult:
        self.begin_stage()
        n = len(addrs)
        lines = (
            np.asarray(addrs, dtype=np.uint64)
            >> np.uint64(self.config.line_bits)
        ).tolist()
        write_flags = writes.tolist() if writes is not None else None
        access_line = self.access_line
        miss_flags = bytearray(n)
        budget = miss_budget if miss_budget is not None else n + 1
        misses = 0
        consumed = n
        for i in range(n):
            write = bool(write_flags[i]) if write_flags is not None else False
            if access_line(lines[i], write).miss:
                miss_flags[i] = 1
                misses += 1
                budget -= 1
                if budget == 0:
                    consumed = i + 1
                    break
        miss_mask = np.frombuffer(
            bytes(miss_flags[:consumed]), dtype=np.uint8
        ).astype(bool)
        return KernelResult(miss_mask, consumed, misses, 0, 0)

    def access(
        self,
        addrs: np.ndarray,
        miss_budget: int | None = None,
        tag: str = "app",
        writes: np.ndarray | None = None,
    ) -> AccessResult:
        n = len(addrs)
        if n == 0:
            return AccessResult(np.zeros(0, dtype=bool), 0)
        res = self._chunk_access(addrs, miss_budget=miss_budget, writes=writes)
        self.commit_stage(tag, res.consumed)
        return AccessResult(res.miss_mask, res.consumed)

    # ------------------------------------------------------------- state

    def state_snapshot(self) -> object:
        return (self._own_state(), self.inner.state_snapshot())

    def state_restore(self, state: object) -> None:
        own, inner = state  # type: ignore[misc]
        self._restore_own_state(own)
        self.inner.state_restore(inner)

    @abc.abstractmethod
    def _own_state(self) -> object:
        """Copy of the decorator's own buffer state."""

    @abc.abstractmethod
    def _restore_own_state(self, state: object) -> None:
        """Restore a copy from :meth:`_own_state`."""

    # -------------------------------------------------------- diagnostics

    def reset(self) -> None:
        self._reset_own()
        self.inner.reset()

    @abc.abstractmethod
    def _reset_own(self) -> None:
        """Empty the decorator's own storage."""

    @abc.abstractmethod
    def resident_lines(self) -> set[int]:
        """Lines currently held in the decorator's own storage."""

    def contents_line_count(self) -> int:
        """Valid lines across the whole decorated stack (diagnostics)."""
        return self.inner.contents_line_count() + len(self.resident_lines())

    def contains_addr(self, addr: int) -> bool:
        line = addr >> self.config.line_bits
        inner = getattr(self.inner, "contains_addr", None)
        held = bool(inner(addr)) if inner is not None else False
        return held or line in self.resident_lines()

    def component_ledgers(self) -> list[tuple[str, CacheStats]]:
        return [(self.kind, self.stats), *self.inner.component_ledgers()]

    def describe(self) -> str:
        inner = getattr(self.inner, "describe", None)
        base = inner() if inner is not None else self.config.describe()
        return f"{self.kind}({self.entries}) over {base}"


class VictimCache(MechanismDecorator):
    """Fully-associative spill buffer with swap-on-hit (Jouppi's VC)."""

    kind = "vc"

    def __init__(self, inner: CacheComponent, entries: int = 8) -> None:
        super().__init__(inner, entries)
        #: Insertion-ordered line -> None map; oldest entry first (LRU).
        self._lines: dict[int, None] = {}

    def access_line(self, line: int, write: bool = False) -> LineOutcome:
        out = self.inner.access_line(line, write)
        if not out.miss:
            return LineOutcome(False, None)
        self._staged_probes += 1
        if line in self._lines:
            # Swap: the VC entry is consumed and the inner victim takes
            # its slot, so the VC never overflows here and nothing
            # leaves the decorated stack.
            del self._lines[line]
            if out.evicted is not None:
                self._lines[out.evicted] = None
            self._staged_hits += 1
            return LineOutcome(False, None)
        leaving: int | None = None
        if out.evicted is not None:
            self._lines[out.evicted] = None
            if len(self._lines) > self.entries:
                leaving = next(iter(self._lines))
                del self._lines[leaving]
        self._staged_misses += 1
        return LineOutcome(True, leaving)

    def _own_state(self) -> object:
        return dict(self._lines)

    def _restore_own_state(self, state: object) -> None:
        self._lines = dict(state)  # type: ignore[call-overload]

    def _reset_own(self) -> None:
        self._lines = {}

    def resident_lines(self) -> set[int]:
        return set(self._lines)


class MissCache(MechanismDecorator):
    """Small fully-associative fill cache probed on inner misses."""

    kind = "mc"

    def __init__(self, inner: CacheComponent, entries: int = 8) -> None:
        super().__init__(inner, entries)
        #: Insertion-ordered line -> None map; oldest entry first (LRU).
        self._lines: dict[int, None] = {}

    def access_line(self, line: int, write: bool = False) -> LineOutcome:
        out = self.inner.access_line(line, write)
        if not out.miss:
            return LineOutcome(False, None)
        self._staged_probes += 1
        if line in self._lines:
            # LRU promote; the line stays duplicated in the MC while the
            # inner fill (already applied) also holds it.
            del self._lines[line]
            self._lines[line] = None
            self._staged_hits += 1
            return LineOutcome(False, out.evicted)
        self._lines[line] = None
        leaving = out.evicted
        if len(self._lines) > self.entries:
            dropped = next(iter(self._lines))
            del self._lines[dropped]
            if leaving is None:
                leaving = dropped
        self._staged_misses += 1
        return LineOutcome(True, leaving)

    def _own_state(self) -> object:
        return dict(self._lines)

    def _restore_own_state(self, state: object) -> None:
        self._lines = dict(state)  # type: ignore[call-overload]

    def _reset_own(self) -> None:
        self._lines = {}

    def resident_lines(self) -> set[int]:
        return set(self._lines)


class StreamBuffers(MechanismDecorator):
    """N next-line prefetch buffers with allocate-on-miss."""

    kind = "sb"

    def __init__(
        self, inner: CacheComponent, entries: int = 4, depth: int = 4
    ) -> None:
        super().__init__(inner, entries)
        if depth < 1:
            raise CacheConfigError(f"StreamBuffers needs depth >= 1, got {depth}")
        self.depth = depth
        #: Head line each buffer would serve next; None = unallocated.
        self._heads: list[int | None] = [None] * entries
        #: Buffer indices, least recently used first.
        self._lru: list[int] = list(range(entries))

    def access_line(self, line: int, write: bool = False) -> LineOutcome:
        out = self.inner.access_line(line, write)
        if not out.miss:
            return LineOutcome(False, None)
        self._staged_probes += 1
        for buf in range(self.entries):
            if self._heads[buf] == line:
                # Head hit: the buffer shifts and prefetches one more
                # line to keep its depth, rescuing the miss.
                self._heads[buf] = line + 1
                self._staged_prefetches += 1
                self._staged_hits += 1
                self._lru.remove(buf)
                self._lru.append(buf)
                return LineOutcome(False, out.evicted)
        buf = self._lru.pop(0)
        self._lru.append(buf)
        self._heads[buf] = line + 1
        self._staged_prefetches += self.depth
        self._staged_misses += 1
        return LineOutcome(True, out.evicted)

    def _own_state(self) -> object:
        return (list(self._heads), list(self._lru))

    def _restore_own_state(self, state: object) -> None:
        heads, lru = state  # type: ignore[misc]
        self._heads = list(heads)
        self._lru = list(lru)

    def _reset_own(self) -> None:
        self._heads = [None] * self.entries
        self._lru = list(range(self.entries))

    def resident_lines(self) -> set[int]:
        """Buffered (prefetched) lines: each head's depth-long window."""
        lines: set[int] = set()
        for head in self._heads:
            if head is not None:
                lines.update(range(head, head + self.depth))
        return lines

    def contents_line_count(self) -> int:
        allocated = sum(1 for head in self._heads if head is not None)
        return self.inner.contents_line_count() + allocated * self.depth

    def describe(self) -> str:
        inner = getattr(self.inner, "describe", None)
        base = inner() if inner is not None else self.config.describe()
        return f"sb({self.entries}x{self.depth}) over {base}"


class Pipeline(CacheComponent):
    """Generic N-level filtering hierarchy over cache components.

    Level *i*'s miss stream feeds level *i+1*; ``access`` returns the
    **last level's** miss mask (what a memory-side counter sees) and
    honours ``miss_budget`` against it exactly: upper-level state is
    snapshotted before a budgeted chunk and, when the budget-th miss
    falls mid-chunk, rolled back and re-applied over the consumed prefix
    only. Every level records each consumed reference under the same
    tag, so per tag the levels' access totals agree. ``self.stats`` *is*
    the last level's ledger (one object, not a copy). Write masks are
    ignored (no dirty-line tracking across levels), matching the
    pre-refactor two-level model.
    """

    def __init__(self, levels: "list[CacheComponent]") -> None:
        if not levels:
            raise CacheConfigError("Pipeline needs at least one level")
        for upper, lower in zip(levels, levels[1:]):
            if upper.config.size >= lower.config.size:
                raise CacheConfigError(
                    f"L1 ({upper.config.size}) must be smaller than "
                    f"L2 ({lower.config.size})"
                )
            if upper.config.line_size != lower.config.line_size:
                raise CacheConfigError("L1 and L2 must share a line size")
        super().__init__(levels[-1].config)
        self.levels = list(levels)
        # The pipeline's ledger *is* the monitored (last) level's: one
        # shared object, so model-level consumers and per-component
        # ledgers can never disagree.
        self.stats = self.levels[-1].stats

    # ------------------------------------------------------------ scalar

    def begin_stage(self) -> None:
        for level in self.levels:
            level.begin_stage()

    def access_line(self, line: int, write: bool = False) -> LineOutcome:
        out = LineOutcome(True, None)
        for level in self.levels:
            out = level.access_line(line, False)
            if not out.miss:
                return LineOutcome(False, None)
        return out

    def commit_stage(self, tag: str, accesses: int) -> None:
        for level in self.levels:
            level.commit_stage(tag, accesses)
        if sanitize.is_active():
            sanitize.check_component(self, "pipeline")

    # ----------------------------------------------------------- chunked

    def _chunk_access(
        self,
        addrs: np.ndarray,
        miss_budget: int | None = None,
        writes: np.ndarray | None = None,
    ) -> KernelResult:
        self.begin_stage()
        n = len(addrs)
        addrs = np.asarray(addrs, dtype=np.uint64)
        uppers = self.levels[:-1]
        last = self.levels[-1]
        snaps = (
            [u.state_snapshot() for u in uppers]
            if miss_budget is not None
            else None
        )

        def filter_down(chunk: np.ndarray):
            """Run ``chunk`` through the upper levels; composed index."""
            index: np.ndarray | None = None
            for upper in uppers:
                r = upper._chunk_access(chunk)
                hit_through = np.flatnonzero(r.miss_mask)
                index = (
                    hit_through if index is None else index[hit_through]
                )
                chunk = chunk[hit_through]
            return chunk, index

        cur, index = filter_down(addrs)
        r_last = last._chunk_access(cur, miss_budget=miss_budget)

        consumed = n
        if miss_budget is not None and r_last.misses >= miss_budget:
            # Budget exhausted: the chunk ends at the reference whose
            # upper-level miss produced the budget-th last-level miss.
            # Trailing references — even upper-level hits — are not
            # consumed, exactly as a per-reference walk would stop.
            if index is not None:
                consumed = int(index[r_last.consumed - 1]) + 1
                index = index[: r_last.consumed]
            else:
                consumed = r_last.consumed
            if consumed < n and snaps is not None:
                for upper, snap in zip(uppers, snaps):
                    upper.state_restore(snap)
                    # Discard the staged counts of the full-chunk pass
                    # too: the ledger must see only the consumed prefix
                    # about to be re-applied, or upper levels would
                    # commit misses for references never consumed
                    # (caught by the runtime sanitizer's ledger check).
                    upper.begin_stage()
                filter_down(addrs[:consumed])

        if index is None:
            return r_last
        miss_mask = np.zeros(consumed, dtype=bool)
        miss_mask[index[r_last.miss_mask]] = True
        return KernelResult(miss_mask, consumed, r_last.misses, 0, 0)

    def access(
        self,
        addrs: np.ndarray,
        miss_budget: int | None = None,
        tag: str = "app",
        writes: np.ndarray | None = None,
    ) -> AccessResult:
        n = len(addrs)
        if n == 0:
            return AccessResult(np.zeros(0, dtype=bool), 0)
        res = self._chunk_access(addrs, miss_budget=miss_budget)
        self.commit_stage(tag, res.consumed)
        return AccessResult(res.miss_mask, res.consumed)

    # ------------------------------------------------------------- state

    def state_snapshot(self) -> object:
        return [level.state_snapshot() for level in self.levels]

    def state_restore(self, state: object) -> None:
        for level, snap in zip(self.levels, state):  # type: ignore[call-overload]
            level.state_restore(snap)

    # -------------------------------------------------------- diagnostics

    def reset(self) -> None:
        for level in self.levels:
            level.reset()

    def contents_line_count(self) -> int:
        """Valid lines in the monitored (last) level."""
        return self.levels[-1].contents_line_count()

    def contains_addr(self, addr: int) -> bool:
        last = self.levels[-1]
        contains = getattr(last, "contains_addr", None)
        return bool(contains(addr)) if contains is not None else False

    def combined_stats(self) -> CacheStats:
        """All levels' totals merged into one fresh :class:`CacheStats`."""
        merged = self.levels[0].stats.snapshot()
        for level in self.levels[1:]:
            merged.merge(level.stats)
        return merged

    def component_ledgers(self) -> list[tuple[str, CacheStats]]:
        ledgers: list[tuple[str, CacheStats]] = []
        for i, level in enumerate(self.levels):
            prefix = f"l{i + 1}"
            for name, stats in level.component_ledgers():
                label = prefix if name == "cache" else f"{prefix}.{name}"
                ledgers.append((label, stats))
        return ledgers

    def describe(self) -> str:  # pragma: no cover - cosmetic
        return " + ".join(
            f"L{i + 1} {level.config.describe()}"
            for i, level in enumerate(self.levels)
        )


class SharedCacheLevel:
    """A last-level cache referenced by several cores' pipelines.

    Wraps one leaf component (the physical shared LLC — its ledger is
    the *aggregate* view every core's traffic lands in) and hands out
    one :class:`SharedLevelPort` per core. Each core's hierarchy is then
    ``Pipeline([private L1, port])`` (or ``Pipeline([port])``): the port
    presents the shared leaf through a per-core :class:`CacheStats`
    ledger, so the pipeline chain identities keep holding per core while
    the sanitizer additionally proves the aggregate ledger equals the
    sum of the port ledgers at every commit boundary.

    Cores interleave *sequentially* (the multi-core session steps one
    core at a time), so the leaf's staged counters are only ever owned
    by one port between ``begin_stage`` and ``commit_stage``.
    """

    def __init__(self, leaf: CacheComponent) -> None:
        self.leaf = leaf
        self.ports: list[SharedLevelPort] = []

    @property
    def config(self) -> CacheConfig:
        return self.leaf.config

    @property
    def stats(self) -> CacheStats:
        """The aggregate ledger (the leaf's own)."""
        return self.leaf.stats

    def port(self, core_id: int, shadow: CacheComponent) -> "SharedLevelPort":
        """Create the per-core port; ``shadow`` is the core's solo model.

        The shadow must share the leaf's geometry and replacement seed:
        with one core the shadow then evolves bit-identically to the
        leaf and every miss classifies as *self* — the degenerate case
        the 1-core bit-identity contract relies on.
        """
        if shadow.config != self.leaf.config:
            raise CacheConfigError(
                "shared-level shadow model must match the leaf geometry "
                f"({shadow.config.describe()} != {self.leaf.config.describe()})"
            )
        p = SharedLevelPort(self, core_id, shadow)
        self.ports.append(p)
        return p


class SharedLevelPort(CacheComponent):
    """One core's view of a :class:`SharedCacheLevel`.

    Behaves exactly like the wrapped leaf for classification (every
    access is applied to the shared leaf, budget semantics included) but
    keeps its own ledger, so per-core accounting and the aggregate
    ledger are separate objects related by a conservation identity. On
    top of pass-through, each consumed chunk is replayed against the
    core's solo ``shadow`` model to classify shared-level misses as
    *self* vs *contention* (see :mod:`repro.cache.contention`).

    The attribute is named ``shared_level`` (not ``inner``/``levels``)
    deliberately: the runtime sanitizer duck-types components by those
    attribute names, and the port has its own chain identities.
    """

    def __init__(
        self, shared_level: SharedCacheLevel, core_id: int, shadow: CacheComponent
    ) -> None:
        super().__init__(shared_level.leaf.config)
        self.shared_level = shared_level
        self.core_id = core_id
        self.shadow = shadow
        from repro.cache.contention import ContentionLedger

        self.contention = ContentionLedger()
        self._staged_misses = 0
        self._staged_writebacks = 0
        self._staged_prefetches = 0
        self._staged_shadow_consumed = 0
        self._staged_self = 0
        self._staged_contention = 0
        self._staged_rescued = 0
        #: (self_addrs, contention_addrs) per classified chunk, drained
        #: by the multi-core session after each step for per-object
        #: attribution against the core's live object map.
        self._pending_classified: list[tuple[np.ndarray, np.ndarray]] = []

    # ------------------------------------------------------------ scalar

    def begin_stage(self) -> None:
        self._staged_misses = 0
        self._staged_writebacks = 0
        self._staged_prefetches = 0
        self._staged_shadow_consumed = 0
        self._staged_self = 0
        self._staged_contention = 0
        self._staged_rescued = 0
        self.shared_level.leaf.begin_stage()
        self.shadow.begin_stage()

    def access_line(self, line: int, write: bool = False) -> LineOutcome:
        raise CacheConfigError(
            "mechanism decorators cannot wrap a shared level: the scalar "
            "per-line path would interleave staged victim state across "
            "cores; run mechanism sweeps single-core"
        )

    def commit_stage(self, tag: str, accesses: int) -> None:
        self.stats.record(
            tag,
            accesses,
            self._staged_misses,
            writebacks=self._staged_writebacks,
            prefetches=self._staged_prefetches,
        )
        self.contention.record(
            tag, self._staged_self, self._staged_contention, self._staged_rescued
        )
        # The shadow saw only the consumed post-filter prefix, so its
        # ledger is committed with that count — internally consistent,
        # but not part of the port/aggregate conservation identity.
        self.shadow.commit_stage(tag, self._staged_shadow_consumed)
        self.shared_level.leaf.commit_stage(tag, accesses)
        self._staged_misses = 0
        self._staged_writebacks = 0
        self._staged_prefetches = 0
        self._staged_shadow_consumed = 0
        self._staged_self = 0
        self._staged_contention = 0
        self._staged_rescued = 0
        if sanitize.is_active():
            sanitize.check_component(self, "shared_port")

    # ----------------------------------------------------------- chunked

    def _chunk_access(
        self,
        addrs: np.ndarray,
        miss_budget: int | None = None,
        writes: np.ndarray | None = None,
    ) -> KernelResult:
        res = self.shared_level.leaf._chunk_access(
            addrs, miss_budget=miss_budget, writes=writes
        )
        self._staged_misses += res.misses
        self._staged_writebacks += res.writebacks
        self._staged_prefetches += res.prefetches
        prefix = np.asarray(addrs[: res.consumed], dtype=np.uint64)
        shadow_res = self.shadow._chunk_access(prefix)
        self._staged_shadow_consumed += res.consumed
        shared_miss = res.miss_mask
        shadow_miss = shadow_res.miss_mask
        self_mask = shared_miss & shadow_miss
        contention_mask = shared_miss & ~shadow_miss
        self._staged_self += int(self_mask.sum())
        self._staged_contention += int(contention_mask.sum())
        self._staged_rescued += int((~shared_miss & shadow_miss).sum())
        if self_mask.any() or contention_mask.any():
            self._pending_classified.append(
                (prefix[self_mask], prefix[contention_mask])
            )
        return res

    def access(
        self,
        addrs: np.ndarray,
        miss_budget: int | None = None,
        tag: str = "app",
        writes: np.ndarray | None = None,
    ) -> AccessResult:
        n = len(addrs)
        if n == 0:
            return AccessResult(np.zeros(0, dtype=bool), 0)
        self.begin_stage()
        res = self._chunk_access(addrs, miss_budget=miss_budget, writes=writes)
        self.commit_stage(tag, res.consumed)
        return AccessResult(res.miss_mask, res.consumed)

    def drain_classified(self) -> list[tuple[np.ndarray, np.ndarray]]:
        """Classified (self, contention) address arrays since last drain."""
        pending = self._pending_classified
        self._pending_classified = []
        return pending

    # ------------------------------------------------------------- state

    def state_snapshot(self) -> object:
        return (
            self.shared_level.leaf.state_snapshot(),
            self.shadow.state_snapshot(),
        )

    def state_restore(self, state: object) -> None:
        leaf_state, shadow_state = state  # type: ignore[misc]
        self.shared_level.leaf.state_restore(leaf_state)
        self.shadow.state_restore(shadow_state)

    # -------------------------------------------------------- diagnostics

    def reset(self) -> None:
        self.shared_level.leaf.reset()
        self.shadow.reset()

    def contents_line_count(self) -> int:
        return self.shared_level.leaf.contents_line_count()

    def contains_addr(self, addr: int) -> bool:
        contains = getattr(self.shared_level.leaf, "contains_addr", None)
        return bool(contains(addr)) if contains is not None else False

    def describe(self) -> str:  # pragma: no cover - cosmetic
        return f"port[c{self.core_id}] of shared {self.config.describe()}"


def wrap_mechanisms(
    component: CacheComponent,
    mechanisms: "tuple[MechanismSpec, ...] | str | None",
) -> CacheComponent:
    """Wrap ``component`` with each mechanism in order (outermost last).

    The listed order is wrap order: ``("vc", "sb")`` builds
    ``StreamBuffers(VictimCache(component))`` so the stream buffers probe
    first on the miss path, matching the VC+SB / MC+SB combinations of
    the referenced sweep design.
    """
    for spec in parse_mechanisms(mechanisms):
        if spec.kind == "vc":
            component = VictimCache(component, entries=spec.entries)
        elif spec.kind == "mc":
            component = MissCache(component, entries=spec.entries)
        else:
            component = StreamBuffers(
                component, entries=spec.entries, depth=spec.depth
            )
    return component


def decorated_config(config: CacheConfig) -> bool:
    """Whether ``config`` requests a mechanism decorator stack."""
    return bool(config.mechanisms)
