"""Replacement policies for the set-associative cache model.

The paper's simulator models a generic set-associative cache; the policy
is not specified, so LRU is the default and FIFO/RANDOM are provided for
the replacement-policy ablation (benchmarks/test_ablations.py) to confirm
the profiling techniques' rankings are robust to the policy choice.
"""

from __future__ import annotations

import enum


class ReplacementPolicy(enum.Enum):
    """Which line a set evicts when full."""

    LRU = "lru"        #: evict the least recently used line
    FIFO = "fifo"      #: evict the oldest-inserted line (no hit promotion)
    RANDOM = "random"  #: evict a uniformly random line
