"""The reference kernel: Python list-of-lists set state.

This is the original model the experiments were validated against — set
state is a list of line numbers per set, ordered oldest-first, so LRU
promotion and eviction are O(assoc) list operations; associativities in
practice are 2-16, where a linear scan of a small list beats any fancier
structure. Its access loop *defines* the semantics every other backend
must reproduce bit-for-bit.
"""

from __future__ import annotations

import copy

import numpy as np

from repro.cache.kernels.base import KernelResult, SetKernel
from repro.cache.policies import ReplacementPolicy


class ReferenceKernel(SetKernel):
    """Exact A-way set-associative kernel over per-set Python lists."""

    name = "reference"

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self._sets: list[list[int]] = [[] for _ in range(self.n_sets)]
        #: Line numbers currently dirty (written since fill).
        self._dirty: set[int] = set()

    def reset(self) -> None:
        self._sets = [[] for _ in range(self.n_sets)]
        self._dirty = set()

    def contents_line_count(self) -> int:
        return sum(len(s) for s in self._sets)

    def dirty_line_count(self) -> int:
        return len(self._dirty)

    def lines_in_set(self, set_idx: int) -> list[int]:
        return list(self._sets[set_idx])

    def contains_line(self, line: int) -> bool:
        return line in self._sets[line & self.set_mask]

    def snapshot(self) -> object:
        return (
            [list(s) for s in self._sets],
            set(self._dirty),
            list(self._rand_pool),
            copy.deepcopy(self._rng.bit_generator.state),
            self._rand_draws,
        )

    def restore(self, state: object) -> None:
        sets, dirty, pool, rng_state, rand_draws = state
        self._sets = [list(s) for s in sets]
        self._dirty = set(dirty)
        self._rand_pool = list(pool)
        self._rng.bit_generator.state = copy.deepcopy(rng_state)
        self._rand_draws = rand_draws

    def access(
        self,
        addrs: np.ndarray,
        miss_budget: int | None = None,
        writes: np.ndarray | None = None,
    ) -> KernelResult:
        n = len(addrs)
        if n == 0:
            return KernelResult(np.zeros(0, dtype=bool), 0, 0, 0, 0)
        lines = (np.asarray(addrs, dtype=np.uint64) >> self.line_bits).tolist()
        write_flags = writes.tolist() if writes is not None else None
        set_mask = self.set_mask
        assoc = self.assoc
        sets = self._sets
        dirty = self._dirty
        policy = self.policy
        lru = policy is ReplacementPolicy.LRU
        random_policy = policy is ReplacementPolicy.RANDOM
        prefetch = self.prefetch_next_line
        if random_policy:
            self._ensure_rand_pool(n)
        rand_pool = self._rand_pool

        miss_flags = bytearray(n)
        budget = miss_budget if miss_budget is not None else n + 1
        misses = 0
        writebacks = 0
        prefetches = 0
        consumed = n
        for i in range(n):
            line = lines[i]
            s = sets[line & set_mask]
            if line in s:
                if lru and s[-1] != line:
                    s.remove(line)
                    s.append(line)
                if write_flags is not None and write_flags[i]:
                    dirty.add(line)
            else:
                miss_flags[i] = 1
                misses += 1
                if len(s) >= assoc:
                    if random_policy:
                        victim = s.pop(rand_pool.pop())
                    else:
                        victim = s.pop(0)  # LRU and FIFO both evict the head
                    if victim in dirty:
                        dirty.discard(victim)
                        writebacks += 1
                s.append(line)
                if write_flags is not None and write_flags[i]:
                    dirty.add(line)  # write-allocate: filled dirty
                if prefetch:
                    nxt = line + 1
                    ps = sets[nxt & set_mask]
                    if nxt not in ps:
                        prefetches += 1
                        if len(ps) >= assoc:
                            victim = ps.pop(
                                rand_pool.pop() if random_policy else 0
                            )
                            if victim in dirty:
                                dirty.discard(victim)
                                writebacks += 1
                        ps.append(nxt)
                budget -= 1
                if budget == 0:
                    consumed = i + 1
                    break

        miss_mask = np.frombuffer(bytes(miss_flags[:consumed]), dtype=np.uint8).astype(
            bool
        )
        return KernelResult(miss_mask, consumed, misses, writebacks, prefetches)
