"""The "array" kernel: flat line-tag state with a vectorised fast path.

State is held in preallocated flat arrays instead of per-set Python
lists: a line-tag matrix of shape ``[n_sets, assoc]`` stored flat (slot
``set*assoc + phys``), a per-set circular-buffer ``(head, cnt)`` pair
encoding insertion/recency order, and a dirty bitmask of the same shape.
Logical position ``k`` of a set (0 = oldest, ``cnt-1`` = most recent)
lives at physical slot ``(head + k) % assoc``.  Invariant: ``head`` can
only be non-zero for a *full* set (heads advance on evictions and batch
wraps, both of which require fullness), so non-full sets always store
their lines at physical slots ``0..cnt-1`` with empties after.

The chunk fast path (no writes, no prefetch) layers three optimisations,
all proven equivalent to the reference kernel by the differential and
property tests:

* **follower skip** — a reference whose immediately-preceding reference
  touched the same line is a hit with zero state change (under LRU the
  line is already most-recent; FIFO/RANDOM do nothing on hits).  The
  sequential loop extends this with a per-set *last line* check that
  also skips interleaved repeats (``a, b, a, b`` across sets).
* **certified-hit runs** — a leading run of leaders that are all
  resident must all hit: hits never change membership, so residency
  computed once against the chunk-start tags stays valid for the whole
  run.  FIFO/RANDOM hits are complete no-ops; LRU promotes are applied
  wholesale with one ``argsort`` per touched set (untouched lines keep
  their relative order, touched lines move above them ordered by last
  touch).
* **guaranteed-miss runs** (LRU/FIFO) — a leading run of distinct,
  non-resident lines must all miss: evictions only *remove* lines, so
  nothing processed earlier in the run can turn a later member into a
  hit.  The whole run is applied with NumPy as circular-buffer appends:
  the ``j``-th fill into a set lands at physical slot ``(head + cnt +
  j) % assoc``, evicts iff ``cnt + j >= assoc``, and per-set
  ``head``/``cnt`` advance in closed form.  RANDOM is never batched
  (its eviction stream must consume the shared pool in exact reference
  order).

The two run kinds alternate against live NumPy state until the runs get
too short to amortise.  A final **scattered certified-hit pass** then
handles workloads whose hits are punctured by scattered misses: any
remaining leader that is resident *and* positioned before its own set's
first non-resident leader must hit (other sets' misses cannot evict
it), so those leaders are promoted wholesale and dropped from the
sequential tail.  With a miss budget the LRU variant of this pass is
skipped: a mid-tail budget stop makes the caller replay leaders whose
promotes were already applied.

The sequential tail lazily converts each touched set into a small
logical-order Python list (membership over at most ``assoc`` boxed
ints, ``pop``/``append`` mutations, dirtiness tracked by line value in
a set so LRU promotes never touch it — the same shapes that make the
reference kernel fast) and writes the touched sets back to the flat
state once at the end of the chunk.  The authoritative state between
calls is plain Python lists, converted to arrays only while the
vectorised phases run.

When a write mask or the next-line prefetcher is active the kernel runs
a full sequential mirror of the reference loop (same flat state, no
skips): prefetch fills may touch neighbouring sets mid-chunk and dirty
bits must be set in reference order, so none of the fast paths is sound.
"""

from __future__ import annotations

import copy

import numpy as np

from repro.cache.kernels.base import KernelResult, SetKernel
from repro.cache.policies import ReplacementPolicy

#: Empty-slot sentinel; real line numbers are non-negative.
_EMPTY = -1


class ArrayKernel(SetKernel):
    """Flat-array set-associative kernel, bit-identical to the reference."""

    name = "array"

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        #: Enter the vectorised phases only when a chunk has enough
        #: leaders to amortise converting the flat state to NumPy.
        self._batch_min = max(64, (self.n_sets * self.assoc) // 8)
        self._alloc()

    def _alloc(self) -> None:
        n_slots = self.n_sets * self.assoc
        self._tags: list[int] = [_EMPTY] * n_slots
        self._head: list[int] = [0] * self.n_sets
        self._cnt: list[int] = [0] * self.n_sets
        self._dirty: list[int] = [0] * n_slots
        self._n_dirty = 0

    # ------------------------------------------------------------ state API

    def reset(self) -> None:
        self._alloc()

    def contents_line_count(self) -> int:
        return sum(self._cnt)

    def dirty_line_count(self) -> int:
        return self._n_dirty

    def lines_in_set(self, set_idx: int) -> list[int]:
        assoc = self.assoc
        base = set_idx * assoc
        h = self._head[set_idx]
        tags = self._tags
        return [tags[base + (h + k) % assoc] for k in range(self._cnt[set_idx])]

    def contains_line(self, line: int) -> bool:
        base = (line & self.set_mask) * self.assoc
        return line in self._tags[base : base + self.assoc]

    def snapshot(self) -> object:
        return (
            list(self._tags),
            list(self._head),
            list(self._cnt),
            list(self._dirty),
            self._n_dirty,
            list(self._rand_pool),
            copy.deepcopy(self._rng.bit_generator.state),
        )

    def restore(self, state: object) -> None:
        tags, head, cnt, dirty, n_dirty, pool, rng_state = state
        self._tags = list(tags)
        self._head = list(head)
        self._cnt = list(cnt)
        self._dirty = list(dirty)
        self._n_dirty = n_dirty
        self._rand_pool = list(pool)
        self._rng.bit_generator.state = copy.deepcopy(rng_state)

    # -------------------------------------------------------------- access

    def access(
        self,
        addrs: np.ndarray,
        miss_budget: int | None = None,
        writes: np.ndarray | None = None,
    ) -> KernelResult:
        n = len(addrs)
        if n == 0:
            return KernelResult(np.zeros(0, dtype=bool), 0, 0, 0, 0)
        lines_arr = np.asarray(addrs, dtype=np.uint64) >> self.line_bits
        if self.policy is ReplacementPolicy.RANDOM:
            self._ensure_rand_pool(n)
        if writes is not None or self.prefetch_next_line:
            return self._access_exact(lines_arr, miss_budget, writes)
        return self._access_fast(lines_arr, miss_budget)

    # ----------------------------------------------------- sequential mirror

    def _access_exact(
        self,
        lines_arr: np.ndarray,
        miss_budget: int | None,
        writes: np.ndarray | None,
    ) -> KernelResult:
        """Per-reference mirror of the reference loop on flat state.

        Used whenever writes or prefetching make the fast paths unsound;
        every branch matches the reference kernel's ordering exactly.
        """
        n = len(lines_arr)
        lines = lines_arr.tolist()
        write_flags = writes.tolist() if writes is not None else None
        set_mask = self.set_mask
        assoc = self.assoc
        tags = self._tags
        head = self._head
        cnt = self._cnt
        dirty = self._dirty
        lru = self.policy is ReplacementPolicy.LRU
        random_policy = self.policy is ReplacementPolicy.RANDOM
        prefetch = self.prefetch_next_line
        rand_pool = self._rand_pool

        miss_flags = bytearray(n)
        budget = miss_budget if miss_budget is not None else n + 1
        misses = 0
        writebacks = 0
        prefetches = 0
        n_dirty = self._n_dirty
        consumed = n
        for i in range(n):
            line = lines[i]
            s = line & set_mask
            base = s * assoc
            bend = base + assoc
            seg = tags[base:bend]
            if line in seg:
                p = base + seg.index(line)
                if lru:
                    h = head[s]
                    mru = base + (h + cnt[s] - 1) % assoc
                    if p != mru:
                        k = (p - base - h) % assoc
                        d = dirty[p]
                        for j in range(k, cnt[s] - 1):
                            dst = base + (h + j) % assoc
                            src = base + (h + j + 1) % assoc
                            tags[dst] = tags[src]
                            dirty[dst] = dirty[src]
                        tags[mru] = line
                        dirty[mru] = d
                        p = mru
                if write_flags is not None and write_flags[i] and not dirty[p]:
                    dirty[p] = 1
                    n_dirty += 1
            else:
                miss_flags[i] = 1
                misses += 1
                h = head[s]
                c = cnt[s]
                if c >= assoc:
                    if random_policy:
                        r = rand_pool.pop()
                        if dirty[base + (h + r) % assoc]:
                            writebacks += 1
                            n_dirty -= 1
                        for j in range(r, assoc - 1):
                            dst = base + (h + j) % assoc
                            src = base + (h + j + 1) % assoc
                            tags[dst] = tags[src]
                            dirty[dst] = dirty[src]
                        fp = base + (h + assoc - 1) % assoc
                    else:
                        fp = base + h  # LRU and FIFO both evict the head
                        if dirty[fp]:
                            writebacks += 1
                            n_dirty -= 1
                        head[s] = (h + 1) % assoc
                else:
                    fp = base + (h + c) % assoc
                    cnt[s] = c + 1
                tags[fp] = line
                if write_flags is not None and write_flags[i]:
                    dirty[fp] = 1  # write-allocate: filled dirty
                    n_dirty += 1
                else:
                    dirty[fp] = 0
                if prefetch:
                    nxt = line + 1
                    ps = nxt & set_mask
                    pbase = ps * assoc
                    if nxt not in tags[pbase : pbase + assoc]:
                        prefetches += 1
                        ph = head[ps]
                        pc = cnt[ps]
                        if pc >= assoc:
                            if random_policy:
                                r = rand_pool.pop()
                                if dirty[pbase + (ph + r) % assoc]:
                                    writebacks += 1
                                    n_dirty -= 1
                                for j in range(r, assoc - 1):
                                    dst = pbase + (ph + j) % assoc
                                    src = pbase + (ph + j + 1) % assoc
                                    tags[dst] = tags[src]
                                    dirty[dst] = dirty[src]
                                pp = pbase + (ph + assoc - 1) % assoc
                            else:
                                pp = pbase + ph
                                if dirty[pp]:
                                    writebacks += 1
                                    n_dirty -= 1
                                head[ps] = (ph + 1) % assoc
                        else:
                            pp = pbase + (ph + pc) % assoc
                            cnt[ps] = pc + 1
                        tags[pp] = nxt
                        dirty[pp] = 0
                budget -= 1
                if budget == 0:
                    consumed = i + 1
                    break

        self._n_dirty = n_dirty
        miss_mask = np.frombuffer(bytes(miss_flags[:consumed]), dtype=np.uint8).astype(
            bool
        )
        return KernelResult(miss_mask, consumed, misses, writebacks, prefetches)

    # ------------------------------------------------------------ fast path

    def _access_fast(
        self, lines_arr: np.ndarray, miss_budget: int | None
    ) -> KernelResult:
        """Follower skip + alternating hit/miss runs (no writes/prefetch)."""
        n = len(lines_arr)
        if n > 1:
            leader_pos = np.flatnonzero(
                np.concatenate(([True], lines_arr[1:] != lines_arr[:-1]))
            )
        else:
            leader_pos = np.zeros(1, dtype=np.int64)
        n_lead = len(leader_pos)

        miss_flags = bytearray(n)
        mf = np.frombuffer(miss_flags, dtype=np.uint8)
        budget = miss_budget  # None = unlimited
        misses = 0
        writebacks = 0
        consumed = n
        set_mask = self.set_mask
        assoc = self.assoc
        lru = self.policy is ReplacementPolicy.LRU
        random_policy = self.policy is ReplacementPolicy.RANDOM

        # -------- vectorised phases: alternate certified-hit runs and
        # guaranteed-miss runs against live NumPy state.
        start = 0  # index into leader_pos of the first unprocessed leader
        arrays = None
        if n_lead >= self._batch_min:
            leader_lines = lines_arr[leader_pos].astype(np.int64)
            sets_all = leader_lines & set_mask
            is_dup = None  # computed lazily, once per chunk
            rounds = 0
            while True:
                rem = n_lead - start
                if rem < 64 or rounds >= 8:
                    break
                rounds += 1
                if arrays is None:
                    tags2d = np.asarray(self._tags, dtype=np.int64).reshape(
                        self.n_sets, assoc
                    )
                    dirty2d = np.asarray(self._dirty, dtype=np.int64).reshape(
                        self.n_sets, assoc
                    )
                    head_np = np.asarray(self._head, dtype=np.int64)
                    cnt_np = np.asarray(self._cnt, dtype=np.int64)
                    arrays = (tags2d, dirty2d, head_np, cnt_np)
                ll = leader_lines[start:]
                ss = sets_all[start:]
                resident = (tags2d[ss] == ll[:, None]).any(axis=1)
                min_run = 64 if rem < 4096 else rem >> 6
                if resident[0]:
                    run = rem if resident.all() else int(np.argmin(resident))
                    if run < min_run:
                        break
                    if lru:
                        self._promote_run(arrays, ss[:run], ll[:run])
                    start += run
                else:
                    if random_policy:
                        break  # RANDOM misses must pop the pool in order
                    stop = (
                        int(np.argmax(resident)) if resident.any() else rem
                    )
                    if is_dup is None:
                        # A leader repeating ANY earlier in-chunk leader
                        # line may have been filled since chunk start, so
                        # its fate is state-dependent: stop runs there.
                        # (Chunk-global and so slightly conservative —
                        # one sort per chunk instead of one per run.)
                        sidx = np.argsort(leader_lines, kind="stable")
                        slv = leader_lines[sidx]
                        is_dup = np.zeros(n_lead, dtype=bool)
                        is_dup[sidx[1:][slv[1:] == slv[:-1]]] = True
                    dup_slice = is_dup[start : start + stop]
                    m = (
                        min(stop, int(np.argmax(dup_slice)))
                        if dup_slice.any()
                        else stop
                    )
                    if budget is not None:
                        m = min(m, budget)
                    if m < min_run:
                        break
                    wb = self._fill_run(arrays, ss[:m], ll[:m])
                    mf[leader_pos[start : start + m]] = 1
                    misses += m
                    writebacks += wb
                    self._n_dirty -= wb
                    if budget is not None:
                        budget -= m
                        if budget == 0:
                            consumed = int(leader_pos[start + m - 1]) + 1
                            self._flush_arrays(arrays)
                            miss_mask = np.frombuffer(
                                bytes(miss_flags[:consumed]), dtype=np.uint8
                            ).astype(bool)
                            return KernelResult(
                                miss_mask, consumed, misses, writebacks, 0
                            )
                    start += m
            # Scattered certified-hit pass: after the contiguous runs
            # stall, any remaining leader that is resident AND precedes
            # its own set's first non-resident leader must hit — other
            # sets' misses can't evict it. Promote those wholesale and
            # drop them from the sequential tail. With a budget the LRU
            # variant is unsound: a mid-tail stop makes the caller
            # replay leaders whose promotes were already applied.
            seq_leaders = None
            rem = n_lead - start
            if (
                arrays is not None
                and rem >= 256
                and (budget is None or not lru)
            ):
                ll = leader_lines[start:]
                ss = sets_all[start:]
                resident = (tags2d[ss] == ll[:, None]).any(axis=1)
                nonres = np.flatnonzero(~resident)
                if nonres.size:
                    first_miss = np.full(self.n_sets, rem, dtype=np.int64)
                    np.minimum.at(first_miss, ss[nonres], nonres)
                    certified = resident & (
                        np.arange(rem) < first_miss[ss]
                    )
                else:
                    certified = resident  # every remaining leader hits
                if certified.any():
                    if lru:
                        self._promote_run(arrays, ss[certified], ll[certified])
                    seq_leaders = (
                        np.flatnonzero(~certified) + start
                    ).tolist()
            if arrays is not None:
                self._flush_arrays(arrays)
        else:
            seq_leaders = None

        if seq_leaders is None:
            seq_leaders = range(start, n_lead)
        if not seq_leaders:
            miss_mask = np.frombuffer(
                bytes(miss_flags[:consumed]), dtype=np.uint8
            ).astype(bool)
            return KernelResult(miss_mask, consumed, misses, writebacks, 0)

        # -------- sequential tail: lazily materialise touched sets as
        # small logical-order Python lists (membership over <= assoc
        # boxed ints, pop/append mutations) with dirtiness tracked by
        # line value — the same shapes the reference kernel uses, which
        # beat flat-slice arithmetic ~3x on miss-heavy streams. Only
        # touched sets pay conversion, and they are written back to the
        # flat state once at the end of the chunk.
        lines = lines_arr.tolist()
        lp = leader_pos.tolist()
        tags = self._tags
        head = self._head
        cnt = self._cnt
        dirty = self._dirty
        rand_pool = self._rand_pool
        n_dirty = self._n_dirty
        had_dirty = n_dirty > 0
        last = [-1] * self.n_sets  # chunk-local; conservative and sound
        slists = [None] * self.n_sets
        touched = []  # set indices materialised in ``slists``
        dirty_set = set()  # dirty line values of touched sets

        for li in seq_leaders:
            i = lp[li]
            line = lines[i]
            s_idx = line & set_mask
            if last[s_idx] == line:
                continue  # repeat of the set's most recent line: pure hit
            last[s_idx] = line
            s = slists[s_idx]
            if s is None:
                base = s_idx * assoc
                h = head[s_idx]
                if h:  # head != 0 implies a full set
                    s = tags[base + h : base + assoc] + tags[base : base + h]
                else:
                    s = tags[base : base + cnt[s_idx]]
                slists[s_idx] = s
                touched.append(s_idx)
                if had_dirty:
                    for j in range(base, base + assoc):
                        if dirty[j]:
                            dirty_set.add(tags[j])
            if line in s:
                if lru and s[-1] != line:
                    s.remove(line)
                    s.append(line)
            else:
                miss_flags[i] = 1
                misses += 1
                if len(s) >= assoc:
                    victim = s.pop(rand_pool.pop()) if random_policy else s.pop(0)
                    if n_dirty and victim in dirty_set:
                        writebacks += 1
                        dirty_set.discard(victim)
                        n_dirty -= 1
                s.append(line)
                if budget is not None:
                    budget -= 1
                    if budget == 0:
                        consumed = i + 1
                        break

        # Write the touched sets back to the flat state (head normalised
        # to 0, empty ways cleared and clean).
        for s_idx in touched:
            s = slists[s_idx]
            base = s_idx * assoc
            c = len(s)
            tags[base : base + c] = s
            for j in range(base + c, base + assoc):
                tags[j] = _EMPTY
            cnt[s_idx] = c
            head[s_idx] = 0
            if had_dirty:
                for j, ln in enumerate(s):
                    dirty[base + j] = 1 if ln in dirty_set else 0
                for j in range(base + c, base + assoc):
                    dirty[j] = 0

        self._n_dirty = n_dirty
        miss_mask = np.frombuffer(bytes(miss_flags[:consumed]), dtype=np.uint8).astype(
            bool
        )
        return KernelResult(miss_mask, consumed, misses, writebacks, 0)

    # --------------------------------------------------- vectorised phases

    def _flush_arrays(self, arrays) -> None:
        tags2d, dirty2d, head_np, cnt_np = arrays
        self._tags = tags2d.ravel().tolist()
        self._dirty = dirty2d.ravel().tolist()
        self._head = head_np.tolist()
        self._cnt = cnt_np.tolist()

    def _promote_run(self, arrays, run_sets: np.ndarray, run_lines: np.ndarray) -> None:
        """Apply a certified-hit run's LRU promotes wholesale.

        After a sequence of hits, lines never hit keep their relative
        recency order at the bottom and hit lines stack above them
        ordered by *last* hit — so one stable argsort per touched set
        reproduces the per-reference promote loop exactly. Last-touch
        ranks come from a scatter (later writes win), so no sort over
        the run itself is needed — only tiny per-set argsorts.
        """
        tags2d, dirty2d, head_np, _ = arrays
        assoc = self.assoc
        n_r = len(run_lines)
        if n_r == 0:
            return
        phys = (tags2d[run_sets] == run_lines[:, None]).argmax(axis=1)
        last_touch = np.full(self.n_sets * assoc, -1, dtype=np.int64)
        last_touch[run_sets * assoc + phys] = np.arange(n_r)
        touched = np.zeros(self.n_sets, dtype=bool)
        touched[run_sets] = True
        rows = np.flatnonzero(touched)
        sub = tags2d[rows]
        # Sort key per slot: untouched lines keep logical position,
        # touched lines rank above by last touch, empties stay last.
        key = (np.arange(assoc)[None, :] - head_np[rows][:, None]) % assoc
        lt = last_touch.reshape(self.n_sets, assoc)[rows]
        hitm = lt >= 0
        key[hitm] = assoc + lt[hitm]
        key[sub == _EMPTY] = assoc + n_r + 1
        order = np.argsort(key, axis=1, kind="stable")
        tags2d[rows] = np.take_along_axis(sub, order, axis=1)
        dirty2d[rows] = np.take_along_axis(dirty2d[rows], order, axis=1)
        head_np[rows] = 0

    def _fill_run(self, arrays, cs: np.ndarray, cl: np.ndarray) -> int:
        """Apply a guaranteed-miss run as vectorised circular appends.

        ``cs``/``cl`` are the run's sets and (distinct, non-resident)
        lines in chunk order; returns the number of dirty victims
        written back. Only called for LRU/FIFO.
        """
        tags2d, dirty2d, head_np, cnt_np = arrays
        assoc = self.assoc
        m = len(cl)
        order = np.argsort(cs, kind="stable")
        s_sets = cs[order]
        s_lines = cl[order]
        # Per-set fill sequence number: position within the set's group.
        first = np.ones(m, dtype=bool)
        first[1:] = s_sets[1:] != s_sets[:-1]
        grp_start = np.flatnonzero(first)
        grp_sizes = np.diff(np.append(grp_start, m))
        seq = np.arange(m, dtype=np.int64) - np.repeat(grp_start, grp_sizes)

        c0s = cnt_np[s_sets]
        t = c0s + seq  # logical tail index of each fill
        phys = (head_np[s_sets] + t) % assoc
        flat = s_sets * assoc + phys

        # A fill evicts iff its set was full at fill time (t >= assoc);
        # the victim predates the run — and so can be dirty — iff it
        # was not itself filled by an earlier wrap (t < cnt0 + assoc).
        dirty_flat = dirty2d.reshape(-1)
        evict_pre = (t >= assoc) & (t < c0s + assoc)
        wb = int(dirty_flat[flat[evict_pre]].sum())

        # Only a set's last `assoc` fills survive, and together they hit
        # every slot the set's earlier fills touched (same phys modulo
        # assoc) — so scattering just those gives last-write-wins with
        # unique slot indices, no sort needed.
        fills = np.repeat(grp_sizes, grp_sizes)
        final = seq >= fills - assoc
        tags2d.reshape(-1)[flat[final]] = s_lines[final]
        dirty_flat[flat[final]] = 0

        fill_sets = s_sets[grp_start]
        c0 = cnt_np[fill_sets]
        cnt_np[fill_sets] = np.minimum(assoc, c0 + grp_sizes)
        head_np[fill_sets] = (
            head_np[fill_sets] + np.maximum(0, c0 + grp_sizes - assoc)
        ) % assoc
        return wb
