"""The "array" kernel: NumPy-resident state with a vectorised fast path.

State lives permanently in preallocated NumPy arrays: a line-tag matrix
of shape ``[n_sets, assoc]``, a per-set circular-buffer ``(head, cnt)``
pair encoding insertion/recency order, and a dirty bitmask of the same
shape.  Logical position ``k`` of a set (0 = oldest, ``cnt-1`` = most
recent) lives at physical slot ``(head + k) % assoc``.  Invariant:
``head`` can only be non-zero for a *full* set (heads advance on
evictions and batch wraps, both of which require fullness), so non-full
sets always store their lines at physical slots ``0..cnt-1`` with
empties after.  Keeping the authoritative state in arrays — rather than
converting Python lists to arrays per chunk — is what lets small
per-block chunks use the vectorised phases without paying a conversion
that used to dominate their runtime.

The chunk fast path (no writes, no prefetch) layers three optimisations,
all proven equivalent to the reference kernel by the differential and
property tests:

* **follower skip** — a reference whose immediately-preceding reference
  touched the same line is a hit with zero state change (under LRU the
  line is already most-recent; FIFO/RANDOM do nothing on hits).
* **certified-hit / guaranteed-miss runs** — a leading run of leaders
  that are all resident must all hit (hits never change membership), and
  a leading run of distinct non-resident lines must all miss (evictions
  only remove lines).  Hit runs apply LRU promotes wholesale with one
  ``argsort`` per touched set; miss runs apply as closed-form circular
  appends.  RANDOM misses are never batched (the eviction stream must
  consume the shared pool in exact reference order).
* **per-set rounds** — once the contiguous runs stall, the remaining
  leaders are grouped by set and replayed round by round: round ``r``
  applies every touched set's ``r``-th remaining reference in one
  gather/hit-test/scatter pass over ``[k, assoc]`` sub-matrices.  Sets
  are independent, so reordering *across* sets while preserving order
  *within* each set is exact — this replaces the old sequential
  per-set Python tail for LRU/FIFO whole-chunk calls and is what fixed
  the scattered-miss regression on conflict-heavy streams.

The rounds pass cannot express a global miss-budget cut (the cut point
depends on the interleaved global miss order) or RANDOM eviction (pool
pops happen in global miss order), so those cases fall back to the
sequential tail: touched sets are materialised lazily as small
logical-order Python lists and written back to the arrays at the end of
the chunk.

When a write mask or the next-line prefetcher is active the kernel runs
a full sequential mirror of the reference loop over a flat list copy of
the state: prefetch fills may touch neighbouring sets mid-chunk and
dirty bits must be set in reference order, so none of the fast paths is
sound.
"""

from __future__ import annotations

import copy

import numpy as np

from repro.cache.kernels.base import KernelResult, SetKernel
from repro.cache.policies import ReplacementPolicy

#: Empty-slot sentinel; real line numbers are non-negative.
_EMPTY = -1

#: The chunk-scoped mutable state bundle threaded through the fast
#: paths: (tags2d, dirty2d, head, cnt).
_Arrays = tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]


def _radix_key(values: np.ndarray, maxval: int) -> np.ndarray:
    """Narrow a non-negative grouping key so stable argsort picks radix.

    NumPy's ``kind="stable"`` sort is radix for <= 16-bit integers but
    timsort for wider ones — several times slower on the chunk-sized set
    and sequence keys sorted here. The key is only used for ordering, so
    narrowing is safe whenever the value range fits.
    """
    if maxval < 1 << 16:
        return values.astype(np.uint16)
    return values


class ArrayKernel(SetKernel):
    """Flat-array set-associative kernel, bit-identical to the reference."""

    name = "array"

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        #: Leaders needed before the vectorised run phases are attempted
        #: (below this, per-round NumPy overhead exceeds the win).
        self._batch_min = 64
        #: Leaders needed before the rounds tail beats the Python tail.
        self._rounds_min = 32
        #: True when ``assoc`` is a power of two, enabling mask modulo.
        self._way_mask = self.assoc & (self.assoc - 1) == 0
        self._alloc()

    def _alloc(self) -> None:
        self._tags2d = np.full((self.n_sets, self.assoc), _EMPTY, dtype=np.int64)
        self._dirty2d = np.zeros((self.n_sets, self.assoc), dtype=np.int64)
        self._head_np = np.zeros(self.n_sets, dtype=np.int64)
        self._cnt_np = np.zeros(self.n_sets, dtype=np.int64)
        self._n_dirty = 0

    # ------------------------------------------------------------ state API

    def reset(self) -> None:
        self._alloc()

    def contents_line_count(self) -> int:
        return int(self._cnt_np.sum())

    def dirty_line_count(self) -> int:
        return self._n_dirty

    def lines_in_set(self, set_idx: int) -> list[int]:
        h = int(self._head_np[set_idx])
        c = int(self._cnt_np[set_idx])
        row = self._tags2d[set_idx].tolist()
        ordered = row[h:] + row[:h] if h else row
        return ordered[:c]

    def contains_line(self, line: int) -> bool:
        return bool((self._tags2d[line & self.set_mask] == line).any())

    def snapshot(self) -> object:
        return (
            self._tags2d.copy(),
            self._head_np.copy(),
            self._cnt_np.copy(),
            self._dirty2d.copy(),
            self._n_dirty,
            list(self._rand_pool),
            copy.deepcopy(self._rng.bit_generator.state),
            self._rand_draws,
        )

    def restore(self, state: object) -> None:
        tags, head, cnt, dirty, n_dirty, pool, rng_state, rand_draws = state
        self._tags2d = np.array(tags, dtype=np.int64).reshape(
            self.n_sets, self.assoc
        )
        self._head_np = np.array(head, dtype=np.int64)
        self._cnt_np = np.array(cnt, dtype=np.int64)
        self._dirty2d = np.array(dirty, dtype=np.int64).reshape(
            self.n_sets, self.assoc
        )
        self._n_dirty = n_dirty
        self._rand_pool = list(pool)
        self._rng.bit_generator.state = copy.deepcopy(rng_state)
        self._rand_draws = rand_draws

    # -------------------------------------------------------------- access

    def access(
        self,
        addrs: np.ndarray,
        miss_budget: int | None = None,
        writes: np.ndarray | None = None,
    ) -> KernelResult:
        n = len(addrs)
        if n == 0:
            return KernelResult(np.zeros(0, dtype=bool), 0, 0, 0, 0)
        lines_arr = np.asarray(addrs, dtype=np.uint64) >> self.line_bits
        if self.policy is ReplacementPolicy.RANDOM:
            self._ensure_rand_pool(n)
        if writes is not None or self.prefetch_next_line:
            return self._access_exact(lines_arr, miss_budget, writes)
        return self._access_fast(lines_arr, miss_budget)

    # ----------------------------------------------------- sequential mirror

    def _access_exact(
        self,
        lines_arr: np.ndarray,
        miss_budget: int | None,
        writes: np.ndarray | None,
    ) -> KernelResult:
        """Per-reference mirror of the reference loop on flat list state.

        Used whenever writes or prefetching make the fast paths unsound;
        every branch matches the reference kernel's ordering exactly. The
        array state is copied to flat lists for the duration of the chunk
        (the loop is per-reference Python either way, so the conversion
        is a small constant next to it).
        """
        n = len(lines_arr)
        lines = lines_arr.tolist()
        write_flags = writes.tolist() if writes is not None else None
        set_mask = self.set_mask
        assoc = self.assoc
        tags = self._tags2d.reshape(-1).tolist()
        head = self._head_np.tolist()
        cnt = self._cnt_np.tolist()
        dirty = self._dirty2d.reshape(-1).tolist()
        lru = self.policy is ReplacementPolicy.LRU
        random_policy = self.policy is ReplacementPolicy.RANDOM
        prefetch = self.prefetch_next_line
        rand_pool = self._rand_pool

        miss_flags = bytearray(n)
        budget = miss_budget if miss_budget is not None else n + 1
        misses = 0
        writebacks = 0
        prefetches = 0
        n_dirty = self._n_dirty
        consumed = n
        for i in range(n):
            line = lines[i]
            s = line & set_mask
            base = s * assoc
            bend = base + assoc
            seg = tags[base:bend]
            if line in seg:
                p = base + seg.index(line)
                if lru:
                    h = head[s]
                    mru = base + (h + cnt[s] - 1) % assoc
                    if p != mru:
                        k = (p - base - h) % assoc
                        d = dirty[p]
                        for j in range(k, cnt[s] - 1):
                            dst = base + (h + j) % assoc
                            src = base + (h + j + 1) % assoc
                            tags[dst] = tags[src]
                            dirty[dst] = dirty[src]
                        tags[mru] = line
                        dirty[mru] = d
                        p = mru
                if write_flags is not None and write_flags[i] and not dirty[p]:
                    dirty[p] = 1
                    n_dirty += 1
            else:
                miss_flags[i] = 1
                misses += 1
                h = head[s]
                c = cnt[s]
                if c >= assoc:
                    if random_policy:
                        r = rand_pool.pop()
                        if dirty[base + (h + r) % assoc]:
                            writebacks += 1
                            n_dirty -= 1
                        for j in range(r, assoc - 1):
                            dst = base + (h + j) % assoc
                            src = base + (h + j + 1) % assoc
                            tags[dst] = tags[src]
                            dirty[dst] = dirty[src]
                        fp = base + (h + assoc - 1) % assoc
                    else:
                        fp = base + h  # LRU and FIFO both evict the head
                        if dirty[fp]:
                            writebacks += 1
                            n_dirty -= 1
                        head[s] = (h + 1) % assoc
                else:
                    fp = base + (h + c) % assoc
                    cnt[s] = c + 1
                tags[fp] = line
                if write_flags is not None and write_flags[i]:
                    dirty[fp] = 1  # write-allocate: filled dirty
                    n_dirty += 1
                else:
                    dirty[fp] = 0
                if prefetch:
                    nxt = line + 1
                    ps = nxt & set_mask
                    pbase = ps * assoc
                    if nxt not in tags[pbase : pbase + assoc]:
                        prefetches += 1
                        ph = head[ps]
                        pc = cnt[ps]
                        if pc >= assoc:
                            if random_policy:
                                r = rand_pool.pop()
                                if dirty[pbase + (ph + r) % assoc]:
                                    writebacks += 1
                                    n_dirty -= 1
                                for j in range(r, assoc - 1):
                                    dst = pbase + (ph + j) % assoc
                                    src = pbase + (ph + j + 1) % assoc
                                    tags[dst] = tags[src]
                                    dirty[dst] = dirty[src]
                                pp = pbase + (ph + assoc - 1) % assoc
                            else:
                                pp = pbase + ph
                                if dirty[pp]:
                                    writebacks += 1
                                    n_dirty -= 1
                                head[ps] = (ph + 1) % assoc
                        else:
                            pp = pbase + (ph + pc) % assoc
                            cnt[ps] = pc + 1
                        tags[pp] = nxt
                        dirty[pp] = 0
                budget -= 1
                if budget == 0:
                    consumed = i + 1
                    break

        self._tags2d = np.asarray(tags, dtype=np.int64).reshape(
            self.n_sets, assoc
        )
        self._head_np = np.asarray(head, dtype=np.int64)
        self._cnt_np = np.asarray(cnt, dtype=np.int64)
        self._dirty2d = np.asarray(dirty, dtype=np.int64).reshape(
            self.n_sets, assoc
        )
        self._n_dirty = n_dirty
        miss_mask = np.frombuffer(bytes(miss_flags[:consumed]), dtype=np.uint8).astype(
            bool
        )
        return KernelResult(miss_mask, consumed, misses, writebacks, prefetches)

    # ------------------------------------------------------------ fast path

    def _resident_mask(self, ss: np.ndarray, ll: np.ndarray) -> np.ndarray:
        """Per-leader residency via flat per-way gathers.

        Equivalent to ``(tags2d[ss] == ll[:, None]).any(axis=1)`` but
        several times faster: the row-gather materialises an
        ``[m, assoc]`` matrix, while ``assoc`` flat gathers stream the
        (cache-hot) tag array against ``ll`` with no 2-D temporary.
        """
        flat = self._tags2d.reshape(-1)
        base = ss * self.assoc
        out = flat[base] == ll
        for way in range(1, self.assoc):
            out |= flat[base + way] == ll
        return out

    def _access_fast(
        self, lines_arr: np.ndarray, miss_budget: int | None
    ) -> KernelResult:
        """Follower skip + alternating runs + rounds tail (no writes)."""
        n = len(lines_arr)
        if n > 1:
            leader_pos = np.flatnonzero(
                np.concatenate(([True], lines_arr[1:] != lines_arr[:-1]))
            )
        else:
            leader_pos = np.zeros(1, dtype=np.int64)
        n_lead = len(leader_pos)

        # Set-aware follower skip: a leader whose *same-set* predecessor
        # in this chunk touched the same line is a certain hit with zero
        # state change — within a set, state only moves on that set's own
        # references, so the line is still that set's MRU (LRU promote is
        # a no-op; FIFO/RANDOM do nothing on hits, and RANDOM pops the
        # pool only on misses). This catches interleaved revisit patterns
        # (A X A X ...) that the adjacent-follower skip above cannot: one
        # stable radix sort groups leaders by set while preserving chunk
        # order, so equal neighbours there are exactly the per-set
        # consecutive repeats. Streams that touch each line a few times
        # in a row per set collapse to distinct-line miss runs the
        # closed-form fill phase applies wholesale. The surviving
        # grouped order is kept (``grouped``) so the miss-run phase can
        # certify revisits as re-misses and whole-chunk fills can skip
        # re-sorting.
        grouped = None
        if n_lead >= self._rounds_min:
            pre_lines = lines_arr[leader_pos].astype(np.int64)
            pre_sets = pre_lines & self.set_mask
            pre_order = np.argsort(
                _radix_key(pre_sets, self.n_sets - 1), kind="stable"
            )
            sl = pre_lines[pre_order]
            sg = pre_sets[pre_order]
            skeep = np.ones(n_lead, dtype=bool)
            skeep[1:] = (sl[1:] != sl[:-1]) | (sg[1:] != sg[:-1])
            if not skeep.all():
                lkeep = np.ones(n_lead, dtype=bool)
                lkeep[pre_order[~skeep]] = False
                new_idx = np.cumsum(lkeep) - 1
                leader_pos = leader_pos[lkeep]
                n_lead = len(leader_pos)
                pre_order = new_idx[pre_order[skeep]]
                sg = sg[skeep]
            firstg = np.ones(n_lead, dtype=bool)
            firstg[1:] = sg[1:] != sg[:-1]
            gstart = np.flatnonzero(firstg)
            gsz = np.diff(np.append(gstart, n_lead))
            grouped = (pre_order, sg, gstart, gsz)

        miss_flags = bytearray(n)
        mf = np.frombuffer(miss_flags, dtype=np.uint8)
        budget = miss_budget  # None = unlimited
        misses = 0
        writebacks = 0
        consumed = n
        set_mask = self.set_mask
        assoc = self.assoc
        lru = self.policy is ReplacementPolicy.LRU
        random_policy = self.policy is ReplacementPolicy.RANDOM

        tags2d = self._tags2d
        arrays = (tags2d, self._dirty2d, self._head_np, self._cnt_np)
        leader_lines = lines_arr[leader_pos].astype(np.int64)
        sets_all = leader_lines & set_mask

        # -------- vectorised phases: alternate certified-hit runs and
        # guaranteed-miss runs against the live state.
        start = 0  # index into leader_pos of the first unprocessed leader
        if n_lead >= self._batch_min and grouped is not None:
            unsafe_j = None  # computed lazily, once per chunk
            rounds = 0
            while True:
                rem = n_lead - start
                if rem < 64 or rounds >= 8:
                    break
                rounds += 1
                ll = leader_lines[start:]
                ss = sets_all[start:]
                resident = self._resident_mask(ss, ll)
                min_run = 64 if rem < 4096 else rem >> 6
                if resident[0]:
                    run = rem if resident.all() else int(np.argmin(resident))
                    if run < min_run:
                        break
                    if lru:
                        self._promote_run(arrays, ss[:run], ll[:run])
                    start += run
                else:
                    if random_policy:
                        break  # RANDOM misses must pop the pool in order
                    stop = (
                        int(np.argmax(resident)) if resident.any() else rem
                    )
                    if budget is not None:
                        stop = min(stop, budget)
                    if stop < min_run:
                        break  # too short even before dup trimming
                    if unsafe_j is None:
                        # A leader revisiting an earlier in-chunk leader
                        # line is itself a guaranteed re-miss when at
                        # least ``assoc`` same-set leaders sit between
                        # the two occurrences: inside an all-miss run
                        # every one of those is a fill, and ``assoc``
                        # fills are exactly what it takes to walk the
                        # revisited line out of its set under LRU and
                        # FIFO alike (no interleaved hit can refresh it
                        # — the run has none). Only *unsafe* revisits
                        # (gap <= assoc, fate state-dependent) need to
                        # stop a run — and an unsafe revisit sits within
                        # ``assoc`` positions of its previous occurrence
                        # in the set-grouped order computed at the top
                        # of the chunk, so ``assoc`` shifted equality
                        # passes over that order find them all with no
                        # further sorting. (Chunk-global, once per
                        # chunk; distant revisits never make the list.)
                        g_order, g_sets, _, _ = grouped
                        pis = []
                        pjs = []
                        sl_lines = leader_lines[g_order]
                        for d in range(1, assoc + 1):
                            near = (sl_lines[d:] == sl_lines[:-d]) & (
                                g_sets[d:] == g_sets[:-d]
                            )
                            if near.any():
                                hit_k = np.flatnonzero(near)
                                pis.append(g_order[hit_k])
                                pjs.append(g_order[hit_k + d])
                        if pis:
                            unsafe_j = (
                                np.concatenate(pis),
                                np.concatenate(pjs),
                            )
                        else:
                            empty = np.zeros(0, dtype=np.int64)
                            unsafe_j = (empty, empty)
                    p_i, p_j = unsafe_j
                    if p_j.size:
                        # Cut before the first unsafe revisit whose
                        # previous occurrence is also in this run (an
                        # older occurrence is settled by the residency
                        # test above — consecutive pairs mean nothing
                        # refills the line in between).
                        live = p_i >= start
                        if live.any():
                            m = min(stop, int(p_j[live].min()) - start)
                        else:
                            m = stop
                    else:
                        m = stop
                    if budget is not None:
                        m = min(m, budget)
                    if m < min_run:
                        break
                    presorted = None
                    if start == 0 and m == n_lead:
                        # Whole-chunk fill: reuse the set grouping from
                        # the top-of-chunk sort instead of re-sorting.
                        presorted = grouped
                    wb = self._fill_run(arrays, ss[:m], ll[:m], presorted)
                    mf[leader_pos[start : start + m]] = 1
                    misses += m
                    writebacks += wb
                    self._n_dirty -= wb
                    if budget is not None:
                        budget -= m
                        if budget == 0:
                            consumed = int(leader_pos[start + m - 1]) + 1
                            miss_mask = np.frombuffer(
                                bytes(miss_flags[:consumed]), dtype=np.uint8
                            ).astype(bool)
                            return KernelResult(
                                miss_mask, consumed, misses, writebacks, 0
                            )
                    start += m

        rem = n_lead - start
        if rem == 0:
            miss_mask = np.frombuffer(
                bytes(miss_flags[:consumed]), dtype=np.uint8
            ).astype(bool)
            return KernelResult(miss_mask, consumed, misses, writebacks, 0)

        # -------- rounds tail: whole-chunk gather/scatter for the
        # scattered remainder. Sound only without a budget (the cut point
        # depends on global miss order) and without RANDOM eviction (pool
        # pops happen in global miss order); per-set reference order is
        # preserved exactly, and sets are independent.
        if budget is None and not random_policy and rem >= self._rounds_min:
            tail_misses, tail_wb = self._tail_rounds(
                leader_lines[start:],
                sets_all[start:],
                leader_pos[start:],
                mf,
            )
            misses += tail_misses
            writebacks += tail_wb
            miss_mask = np.frombuffer(
                bytes(miss_flags[:consumed]), dtype=np.uint8
            ).astype(bool)
            return KernelResult(miss_mask, consumed, misses, writebacks, 0)

        # Scattered certified-hit pass before the sequential tail: any
        # remaining leader that is resident AND precedes its own set's
        # first non-resident leader must hit — other sets' misses can't
        # evict it. Promote those wholesale and drop them from the tail.
        # With a budget the LRU variant is unsound: a mid-tail stop makes
        # the caller replay leaders whose promotes were already applied.
        seq_leaders = None
        if rem >= 256 and (budget is None or not lru):
            ll = leader_lines[start:]
            ss = sets_all[start:]
            resident = self._resident_mask(ss, ll)
            nonres = np.flatnonzero(~resident)
            if nonres.size:
                first_miss = np.full(self.n_sets, rem, dtype=np.int64)
                np.minimum.at(first_miss, ss[nonres], nonres)
                certified = resident & (np.arange(rem) < first_miss[ss])
            else:
                certified = resident  # every remaining leader hits
            if certified.any():
                if lru:
                    self._promote_run(arrays, ss[certified], ll[certified])
                seq_leaders = (np.flatnonzero(~certified) + start).tolist()

        if seq_leaders is None:
            seq_leaders = range(start, n_lead)
        if not seq_leaders:
            miss_mask = np.frombuffer(
                bytes(miss_flags[:consumed]), dtype=np.uint8
            ).astype(bool)
            return KernelResult(miss_mask, consumed, misses, writebacks, 0)

        # -------- sequential tail: lazily materialise touched sets as
        # small logical-order Python lists (membership over <= assoc
        # boxed ints, pop/append mutations) with dirtiness tracked by
        # line value — the same shapes the reference kernel uses. Only
        # touched sets pay conversion, and they are written back to the
        # arrays once at the end of the chunk.
        lines = lines_arr.tolist()
        lp = leader_pos.tolist()
        head_np = self._head_np
        cnt_np = self._cnt_np
        dirty2d = self._dirty2d
        rand_pool = self._rand_pool
        n_dirty = self._n_dirty
        had_dirty = n_dirty > 0
        last = [-1] * self.n_sets  # chunk-local; conservative and sound
        slists = [None] * self.n_sets
        touched = []  # set indices materialised in ``slists``
        dirty_set = set()  # dirty line values of touched sets

        for li in seq_leaders:
            i = lp[li]
            line = lines[i]
            s_idx = line & set_mask
            if last[s_idx] == line:
                continue  # repeat of the set's most recent line: pure hit
            last[s_idx] = line
            s = slists[s_idx]
            if s is None:
                row = tags2d[s_idx].tolist()
                h = int(head_np[s_idx])
                if h:  # head != 0 implies a full set
                    s = row[h:] + row[:h]
                else:
                    s = row[: int(cnt_np[s_idx])]
                slists[s_idx] = s
                touched.append(s_idx)
                if had_dirty:
                    for t_val, d_val in zip(row, dirty2d[s_idx].tolist()):
                        if d_val:
                            dirty_set.add(t_val)
            if line in s:
                if lru and s[-1] != line:
                    s.remove(line)
                    s.append(line)
            else:
                miss_flags[i] = 1
                misses += 1
                if len(s) >= assoc:
                    victim = s.pop(rand_pool.pop()) if random_policy else s.pop(0)
                    if n_dirty and victim in dirty_set:
                        writebacks += 1
                        dirty_set.discard(victim)
                        n_dirty -= 1
                s.append(line)
                if budget is not None:
                    budget -= 1
                    if budget == 0:
                        consumed = i + 1
                        break

        # Write the touched sets back to the arrays (head normalised to
        # 0, empty ways cleared and clean).
        for s_idx in touched:
            s = slists[s_idx]
            c = len(s)
            row = tags2d[s_idx]
            row[:c] = s
            row[c:] = _EMPTY
            cnt_np[s_idx] = c
            head_np[s_idx] = 0
            if had_dirty:
                drow = dirty2d[s_idx]
                drow[:] = 0
                for j, ln in enumerate(s):
                    if ln in dirty_set:
                        drow[j] = 1

        self._n_dirty = n_dirty
        miss_mask = np.frombuffer(bytes(miss_flags[:consumed]), dtype=np.uint8).astype(
            bool
        )
        return KernelResult(miss_mask, consumed, misses, writebacks, 0)

    # --------------------------------------------------- vectorised phases

    def _tail_rounds(
        self,
        ll: np.ndarray,
        ss: np.ndarray,
        pos: np.ndarray,
        mf: np.ndarray,
    ) -> tuple[int, int]:
        """Replay the remaining leaders as per-set rounds (LRU/FIFO only).

        Leaders are stably grouped by set; round ``r`` applies every
        touched set's ``r``-th remaining reference in one vectorised
        gather/hit-test/scatter pass over compact working matrices of
        just the touched sets. Recency/insertion order is tracked as a
        per-slot *timestamp* (seeded from each line's logical position,
        then one strictly-increasing stamp per round) so that an LRU
        promote is a single scatter and eviction is an ``argmin`` —
        the canonical ``(head, cnt)`` circular encoding is restored by
        one per-row argsort at the very end of the chunk, not per round.
        Each set sees its references in chunk order and sets are
        independent, so the result is bit-identical to the sequential
        loop. Returns ``(misses, writebacks)`` and scatters the global
        miss flags through ``mf``/``pos``.
        """
        tags2d = self._tags2d
        dirty2d = self._dirty2d
        assoc = self.assoc
        m = len(ll)

        order = np.argsort(_radix_key(ss, self.n_sets - 1), kind="stable")
        s_sets = ss[order]
        l_sets = ll[order]
        p_sets = pos[order]
        # Collapse consecutive same-line references within each set's
        # subsequence: only the first can miss (afterwards the line is
        # resident), and re-touching the MRU line is a no-op for LRU
        # recency order and FIFO insertion order alike — the sequential
        # tail skips them via its `last` check for the same reason.
        # Dictionary-style streams (compress) shed most of their rounds
        # here: the round count is the max per-set *collapsed* length.
        keep = np.ones(m, dtype=bool)
        keep[1:] = (l_sets[1:] != l_sets[:-1]) | (s_sets[1:] != s_sets[:-1])
        if not keep.all():
            s_sets = s_sets[keep]
            l_sets = l_sets[keep]
            p_sets = p_sets[keep]
            m = len(s_sets)
        first = np.ones(m, dtype=bool)
        first[1:] = s_sets[1:] != s_sets[:-1]
        grp_start = np.flatnonzero(first)
        grp_sizes = np.diff(np.append(grp_start, m))
        seq = np.arange(m, dtype=np.int64) - np.repeat(grp_start, grp_sizes)
        max_rounds = int(grp_sizes.max())
        if max_rounds > max(64, m >> 4):
            # Pathological single-set pile-up: per-round selections would
            # be tiny, so the sequential tail is the faster mirror.
            return self._tail_python(ll, ss, pos, mf)
        order2 = np.argsort(_radix_key(seq, max_rounds - 1), kind="stable")
        bounds = np.searchsorted(seq[order2], np.arange(max_rounds + 1))

        # Compact working copies of the touched sets only. Tags and
        # timestamps ride side by side in one [T, 2*assoc] matrix so each
        # round pays a single row gather for both.
        rows_u = s_sets[grp_start]  # sorted unique touched sets
        wdirty = dirty2d[rows_u]
        h = self._head_np[rows_u]
        stride = 2 * assoc
        wstate = np.empty((len(rows_u), stride), dtype=np.int64)
        wstate[:, :assoc] = tags2d[rows_u]
        # Timestamp seed: logical position of each valid slot (empties
        # get -1 so argmin fills them first, lowest slot first — non-full
        # sets have head 0, so their empties sit above the valid slots in
        # increasing order, matching sequential fill order).
        raw = np.arange(assoc)[None, :] + (assoc - h[:, None])
        wstate[:, assoc:] = (
            raw & (assoc - 1) if self._way_mask else raw % assoc
        )
        wstate[:, assoc:][wstate[:, :assoc] == _EMPTY] = -1

        # Per-leader compact row index and line/pos, in round order.
        inv = np.repeat(np.arange(len(rows_u), dtype=np.int64), grp_sizes)
        lrows = inv[order2]
        llines = l_sets[order2]
        lpos = p_sets[order2]

        lru = self.policy is ReplacementPolicy.LRU
        wstate1 = wstate.reshape(-1)
        wdirty1 = wdirty.reshape(-1)
        track_dirty = self._n_dirty > 0
        stamp = assoc  # strictly above every seed value
        misses = 0
        writebacks = 0
        for r in range(max_rounds):
            sl = slice(int(bounds[r]), int(bounds[r + 1]))
            rows = lrows[sl]
            rl = llines[sl]
            g = wstate[rows]
            eq = g[:, :assoc] == rl[:, None]
            hit = eq.any(axis=1)
            # LRU victim = least-recent stamp; FIFO victim = earliest
            # insertion stamp (hits never refresh it). Either way argmin.
            victim = g[:, assoc:].argmin(axis=1)
            slot = np.where(hit, eq.argmax(axis=1), victim)
            flat = rows * stride + slot
            # Unconditional: a hit rewrites its own tag, a miss fills.
            wstate1[flat] = rl
            if lru:
                wstate1[flat + assoc] = stamp  # promote and fill alike
            midx = np.flatnonzero(~hit)
            if midx.size:
                if track_dirty:
                    dflat = rows[midx] * assoc + slot[midx]
                    wb = int(wdirty1[dflat].sum())
                    writebacks += wb
                    wdirty1[dflat] = 0
                if not lru:
                    wstate1[flat[midx] + assoc] = stamp
                mf[lpos[sl][midx]] = 1
                misses += midx.size
            stamp += 1

        # Restore the canonical encoding: valid slots by ascending stamp
        # (oldest first), empties last, head normalised to 0.
        wtags = wstate[:, :assoc]
        empty = wtags == _EMPTY
        key = np.where(empty, np.int64(1) << 60, wstate[:, assoc:])
        orderw = np.argsort(key, axis=1, kind="stable")
        tags2d[rows_u] = np.take_along_axis(wtags, orderw, axis=1)
        dirty2d[rows_u] = np.take_along_axis(wdirty, orderw, axis=1)
        self._cnt_np[rows_u] = (~empty).sum(axis=1)
        self._head_np[rows_u] = 0
        self._n_dirty -= writebacks
        return misses, writebacks

    def _tail_python(
        self,
        ll: np.ndarray,
        ss: np.ndarray,
        pos: np.ndarray,
        mf: np.ndarray,
    ) -> tuple[int, int]:
        """Budget-free sequential tail over an explicit leader list —
        the rounds tail's fallback for degenerate set distributions."""
        tags2d = self._tags2d
        dirty2d = self._dirty2d
        head_np = self._head_np
        cnt_np = self._cnt_np
        assoc = self.assoc
        lru = self.policy is ReplacementPolicy.LRU
        n_dirty = self._n_dirty
        had_dirty = n_dirty > 0
        misses = 0
        writebacks = 0
        lines = ll.tolist()
        sets = ss.tolist()
        positions = pos.tolist()
        last = [-1] * self.n_sets
        slists = [None] * self.n_sets
        touched = []
        dirty_set = set()
        for line, s_idx, i in zip(lines, sets, positions):
            if last[s_idx] == line:
                continue
            last[s_idx] = line
            s = slists[s_idx]
            if s is None:
                row = tags2d[s_idx].tolist()
                h = int(head_np[s_idx])
                if h:
                    s = row[h:] + row[:h]
                else:
                    s = row[: int(cnt_np[s_idx])]
                slists[s_idx] = s
                touched.append(s_idx)
                if had_dirty:
                    for t_val, d_val in zip(row, dirty2d[s_idx].tolist()):
                        if d_val:
                            dirty_set.add(t_val)
            if line in s:
                if lru and s[-1] != line:
                    s.remove(line)
                    s.append(line)
            else:
                mf[i] = 1
                misses += 1
                if len(s) >= assoc:
                    victim = s.pop(0)  # LRU/FIFO only: head eviction
                    if n_dirty and victim in dirty_set:
                        writebacks += 1
                        dirty_set.discard(victim)
                        n_dirty -= 1
                s.append(line)
        for s_idx in touched:
            s = slists[s_idx]
            c = len(s)
            row = tags2d[s_idx]
            row[:c] = s
            row[c:] = _EMPTY
            cnt_np[s_idx] = c
            head_np[s_idx] = 0
            if had_dirty:
                drow = dirty2d[s_idx]
                drow[:] = 0
                for j, ln in enumerate(s):
                    if ln in dirty_set:
                        drow[j] = 1
        self._n_dirty = n_dirty
        return misses, writebacks

    def _promote_run(
        self, arrays: _Arrays, run_sets: np.ndarray, run_lines: np.ndarray
    ) -> None:
        """Apply a certified-hit run's LRU promotes wholesale.

        After a sequence of hits, lines never hit keep their relative
        recency order at the bottom and hit lines stack above them
        ordered by *last* hit — so one stable argsort per touched set
        reproduces the per-reference promote loop exactly. Last-touch
        ranks come from a scatter (later writes win), so no sort over
        the run itself is needed — only tiny per-set argsorts.
        """
        tags2d, dirty2d, head_np, _ = arrays
        assoc = self.assoc
        n_r = len(run_lines)
        if n_r == 0:
            return
        phys = (tags2d[run_sets] == run_lines[:, None]).argmax(axis=1)
        last_touch = np.full(self.n_sets * assoc, -1, dtype=np.int64)
        last_touch[run_sets * assoc + phys] = np.arange(n_r)
        touched = np.zeros(self.n_sets, dtype=bool)
        touched[run_sets] = True
        rows = np.flatnonzero(touched)
        sub = tags2d[rows]
        # Sort key per slot: untouched lines keep logical position,
        # touched lines rank above by last touch, empties stay last.
        key = (np.arange(assoc)[None, :] - head_np[rows][:, None]) % assoc
        lt = last_touch.reshape(self.n_sets, assoc)[rows]
        hitm = lt >= 0
        key[hitm] = assoc + lt[hitm]
        key[sub == _EMPTY] = assoc + n_r + 1
        order = np.argsort(key, axis=1, kind="stable")
        tags2d[rows] = np.take_along_axis(sub, order, axis=1)
        dirty2d[rows] = np.take_along_axis(dirty2d[rows], order, axis=1)
        head_np[rows] = 0

    def _fill_run(
        self,
        arrays: _Arrays,
        cs: np.ndarray,
        cl: np.ndarray,
        presorted: _Arrays | None = None,
    ) -> int:
        """Apply a guaranteed-miss run as vectorised circular appends.

        ``cs``/``cl`` are the run's sets and non-resident lines in chunk
        order (a line may repeat when the caller certified the revisit
        as a re-miss — by then the earlier fill has already been walked
        out, so appending again is exact); returns the number of dirty
        victims written back. Only called for LRU/FIFO. ``presorted``
        optionally carries ``(order, s_sets, grp_start, grp_sizes)``
        from a caller that already grouped the whole run by set.
        """
        tags2d, dirty2d, head_np, cnt_np = arrays
        assoc = self.assoc
        m = len(cl)
        if presorted is not None:
            order, s_sets, grp_start, grp_sizes = presorted
            s_lines = cl[order]
        else:
            order = np.argsort(
                _radix_key(cs, self.n_sets - 1), kind="stable"
            )
            s_sets = cs[order]
            s_lines = cl[order]
            # Per-set fill sequence number: position in the set's group.
            first = np.ones(m, dtype=bool)
            first[1:] = s_sets[1:] != s_sets[:-1]
            grp_start = np.flatnonzero(first)
            grp_sizes = np.diff(np.append(grp_start, m))
        seq = np.arange(m, dtype=np.int64) - np.repeat(grp_start, grp_sizes)

        c0s = cnt_np[s_sets]
        t = c0s + seq  # logical tail index of each fill
        raw = head_np[s_sets] + t  # non-negative, so masking == modulo
        phys = raw & (assoc - 1) if self._way_mask else raw % assoc
        flat = s_sets * assoc + phys

        # A fill evicts iff its set was full at fill time (t >= assoc);
        # the victim predates the run — and so can be dirty — iff it
        # was not itself filled by an earlier wrap (t < cnt0 + assoc).
        # With no dirty line anywhere the writeback accounting is all
        # zeros, so the gather/scatter pair is skipped outright.
        wb = 0
        track_dirty = self._n_dirty > 0
        dirty_flat = dirty2d.reshape(-1)
        if track_dirty:
            evict_pre = (t >= assoc) & (t < c0s + assoc)
            wb = int(dirty_flat[flat[evict_pre]].sum())

        # Only a set's last `assoc` fills survive, and together they hit
        # every slot the set's earlier fills touched (same phys modulo
        # assoc) — so scattering just those gives last-write-wins with
        # unique slot indices, no sort needed.
        fills = np.repeat(grp_sizes, grp_sizes)
        final = seq >= fills - assoc
        tags2d.reshape(-1)[flat[final]] = s_lines[final]
        if track_dirty:
            dirty_flat[flat[final]] = 0

        fill_sets = s_sets[grp_start]
        c0 = cnt_np[fill_sets]
        cnt_np[fill_sets] = np.minimum(assoc, c0 + grp_sizes)
        head_np[fill_sets] = (
            head_np[fill_sets] + np.maximum(0, c0 + grp_sizes - assoc)
        ) % assoc
        return wb
    # reprolint: disable-file=RPL303 -- head/count ring indices are bounded by assoc (<=64), not address bits; narrow dtypes are the point of the flat layout
