"""Pluggable set-associative cache kernels.

A *kernel* is the stateful hit/miss engine behind a cache model: it owns
the per-set line state, the dirty bits and the RANDOM-eviction stream,
and classifies chunks of references. Cache models
(:class:`~repro.cache.set_assoc.SetAssociativeCache`,
:class:`~repro.cache.hierarchy.TwoLevelCache`) stay responsible for
statistics and for the public :class:`~repro.cache.base.CacheModel`
interface, and delegate the actual simulation to a kernel selected by
name:

* ``"reference"`` — the original list-of-lists model, oldest-first per
  set.  Semantics are defined by this kernel.
* ``"array"`` — flat-array state with a vectorised fast path for
  streaming chunks.  **Bit-identical** to the reference kernel: same
  miss masks, same ``miss_budget`` early-exit points, same
  writeback/prefetch counts, same seeded RANDOM-eviction stream
  (enforced by tests/cache/test_backend_equivalence.py).
* ``"auto"`` — starts on the array kernel, watches the first ~64 Ki
  references, and transplants the state into the reference kernel iff
  the policy is RANDOM and the observed miss density is high (the one
  regime where the array kernel's sequential fallback loses). Either
  way the results are bit-identical; only throughput changes.

Kernels take plain geometry integers rather than a
:class:`~repro.cache.config.CacheConfig` so that ``config.py`` can
import the backend registry without a cycle.
"""

from __future__ import annotations

from repro.cache.kernels.auto import AutoKernel
from repro.cache.kernels.base import KernelResult, SetKernel
from repro.cache.kernels.flat import ArrayKernel
from repro.cache.kernels.reference import ReferenceKernel
from repro.errors import CacheConfigError

__all__ = [
    "KERNEL_BACKENDS",
    "DEFAULT_BACKEND",
    "KernelResult",
    "SetKernel",
    "ReferenceKernel",
    "ArrayKernel",
    "AutoKernel",
    "make_kernel",
    "kernel_for_config",
    "resolve_backend",
]

#: Registered kernel backends, in preference order for documentation.
KERNEL_BACKENDS = ("reference", "array", "auto")

DEFAULT_BACKEND = "reference"

_KERNELS: dict[str, type[SetKernel]] = {
    "reference": ReferenceKernel,
    "array": ArrayKernel,
    "auto": AutoKernel,
}


def resolve_backend(backend: str | None) -> str:
    """Normalise a backend name; ``None`` means the default backend."""
    if backend is None:
        return DEFAULT_BACKEND
    if backend not in _KERNELS:
        raise CacheConfigError(
            f"unknown cache kernel backend {backend!r}; "
            f"available: {', '.join(KERNEL_BACKENDS)}"
        )
    return backend


def make_kernel(
    backend: str | None,
    *,
    n_sets: int,
    assoc: int,
    line_bits: int,
    policy,
    seed: int | None = None,
    prefetch_next_line: bool = False,
) -> SetKernel:
    """Instantiate the kernel class registered under ``backend``."""
    cls = _KERNELS[resolve_backend(backend)]
    return cls(
        n_sets=n_sets,
        assoc=assoc,
        line_bits=line_bits,
        policy=policy,
        seed=seed,
        prefetch_next_line=prefetch_next_line,
    )


def kernel_for_config(
    backend: str | None,
    config,
    seed: int | None = None,
    prefetch_next_line: bool = False,
) -> SetKernel:
    """Kernel with the geometry of a :class:`CacheConfig` (duck-typed)."""
    return make_kernel(
        backend,
        n_sets=config.n_sets,
        assoc=config.assoc,
        line_bits=config.line_bits,
        policy=config.policy,
        seed=seed,
        prefetch_next_line=prefetch_next_line,
    )
