"""Kernel interface shared by all cache backends.

A kernel classifies chunks of byte addresses against its set state and
reports raw event counts; recording those counts into
:class:`~repro.cache.base.CacheStats` (and exposing the public
``AccessResult``) is the wrapping cache model's job. The split keeps the
bit-identity contract between backends small and testable: two kernels
are equivalent iff, fed the same chunks, they produce the same
:class:`KernelResult` sequence and the same observable set state.

The RANDOM replacement policy draws eviction indices from a pre-filled
pool (drawing one random number per eviction inside the hot loop would
dominate runtime). The pool refill rule is part of the equivalence
contract — it is keyed on the *chunk length*, not on how many evictions
the chunk performs — so it lives here, shared by every backend.
"""

from __future__ import annotations

import abc
from typing import NamedTuple

import numpy as np

from repro.cache.policies import ReplacementPolicy
from repro.util.rng import make_rng


class KernelResult(NamedTuple):
    """Raw outcome of one (possibly budget-limited) chunk classification.

    ``miss_mask`` covers only the ``consumed`` leading references;
    references past ``consumed`` were *not* applied to the kernel state.
    """

    miss_mask: np.ndarray
    consumed: int
    misses: int
    writebacks: int
    prefetches: int


class SetKernel(abc.ABC):
    """Abstract set-associative kernel: per-set state + classification."""

    #: Registry name of the backend ("reference", "array", ...).
    name: str = "?"

    def __init__(
        self,
        *,
        n_sets: int,
        assoc: int,
        line_bits: int,
        policy: ReplacementPolicy = ReplacementPolicy.LRU,
        seed: int | None = None,
        prefetch_next_line: bool = False,
    ) -> None:
        self.n_sets = n_sets
        self.assoc = assoc
        self.line_bits = line_bits
        self.set_mask = n_sets - 1
        self.policy = policy
        self.prefetch_next_line = prefetch_next_line
        self._rng = make_rng(seed)
        self._rand_pool: list[int] = []
        #: Seed and cumulative draw count: together they make the RNG
        #: stream *auditable*. PCG64 draws of a fixed (low, high) split
        #: across calls land on the same end state as one combined call,
        #: so ``make_rng(_seed)`` replayed for ``_rand_draws`` integers
        #: must reproduce ``_rng``'s exact state — the runtime sanitizer
        #: (repro.sanitize.rng) checks this after every session restore.
        self._seed = seed
        self._rand_draws = 0

    # -------------------------------------------------------------- random

    def _refill_rand_pool(self, n: int) -> None:
        # The pool is *replaced*, not extended, and always drawn with the
        # same size expression — both facts are load-bearing for the
        # cross-backend RANDOM-eviction equivalence.
        size = max(n, 4096)
        self._rand_pool = self._rng.integers(0, self.assoc, size=size).tolist()
        self._rand_draws += size

    def _ensure_rand_pool(self, n: int) -> None:
        """Refill the eviction pool for a chunk of ``n`` references."""
        if len(self._rand_pool) < 2 * n:
            self._refill_rand_pool(2 * n)

    # ----------------------------------------------------------- interface

    @abc.abstractmethod
    def access(
        self,
        addrs: np.ndarray,
        miss_budget: int | None = None,
        writes: np.ndarray | None = None,
    ) -> KernelResult:
        """Classify a chunk of byte addresses, updating set state."""

    @abc.abstractmethod
    def reset(self) -> None:
        """Empty every set (cold start). The RNG/pool are *not* reset."""

    @abc.abstractmethod
    def snapshot(self) -> object:
        """Opaque copy of the full kernel state (sets, dirty, RNG)."""

    @abc.abstractmethod
    def restore(self, state: object) -> None:
        """Restore a state captured by :meth:`snapshot`."""

    @abc.abstractmethod
    def lines_in_set(self, set_idx: int) -> list[int]:
        """Resident line numbers, oldest/least-recent first."""

    @abc.abstractmethod
    def contents_line_count(self) -> int:
        """Number of valid lines currently resident."""

    @abc.abstractmethod
    def dirty_line_count(self) -> int:
        """Number of resident dirty lines (write-back bookkeeping)."""

    def contains_line(self, line: int) -> bool:
        """Whether global line number ``line`` is resident."""
        return line in self.lines_in_set(line & self.set_mask)
