"""The "auto" kernel: picks reference vs array from observed behaviour.

The array kernel wins on every workload shape except one: RANDOM
replacement under heavy conflict. RANDOM evictions must consume the
shared eviction pool in global miss order, which defeats both the
guaranteed-miss run phase and the per-set rounds tail, leaving the
array kernel's sequential fallback — strictly slower than the reference
loop it mirrors, because it also pays array/list conversion per chunk.
Miss-heavy RANDOM streams are exactly where that fallback dominates.

``AutoKernel`` therefore starts on an inner :class:`ArrayKernel` and
watches the first :data:`PROBE_REFS` references. When the probe window
closes it commits: if the policy is RANDOM and the observed miss density
exceeds :data:`SWITCH_MISS_DENSITY`, the full kernel state (sets, dirty
lines, eviction pool, RNG) is transplanted into a
:class:`ReferenceKernel`; otherwise the array kernel is kept. Both
backends are bit-identical, so the choice — and its timing — can never
change results, only throughput; the transplant preserves the seeded
RANDOM eviction stream exactly.

Snapshots record the probe state and the active backend, so a restored
session resumes with the same decision (made or pending) it saved.
"""

from __future__ import annotations

import copy

import numpy as np

from repro.cache.kernels.base import KernelResult, SetKernel
from repro.cache.kernels.flat import ArrayKernel
from repro.cache.kernels.reference import ReferenceKernel
from repro.cache.policies import ReplacementPolicy
from repro.errors import SimulationError

#: References observed before committing to a backend.
PROBE_REFS = 1 << 16

#: Probe-window miss density above which RANDOM replacement switches to
#: the reference kernel (conflict-heavy RANDOM streams run sequentially
#: in the array kernel, with conversion overhead on top).
SWITCH_MISS_DENSITY = 0.2

_SNAPSHOT_TAG = "auto-v1"


class AutoKernel(SetKernel):
    """Backend-picking kernel; delegates to reference or array."""

    name = "auto"

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self._inner: SetKernel = ArrayKernel(**kwargs)
        self._probe_refs = 0
        self._probe_misses = 0
        self._decided = False

    # ----------------------------------------------------------- delegation

    def access(
        self,
        addrs: np.ndarray,
        miss_budget: int | None = None,
        writes: np.ndarray | None = None,
    ) -> KernelResult:
        result = self._inner.access(addrs, miss_budget, writes)
        if not self._decided:
            self._probe_refs += result.consumed
            self._probe_misses += result.misses
            if self._probe_refs >= PROBE_REFS:
                self._decide()
        return result

    def reset(self) -> None:
        # Cold start keeps the committed backend (and, per the kernel
        # contract, the RNG/pool): the decision is a pure speed knob.
        self._inner.reset()

    def contents_line_count(self) -> int:
        return self._inner.contents_line_count()

    def dirty_line_count(self) -> int:
        return self._inner.dirty_line_count()

    def lines_in_set(self, set_idx: int) -> list[int]:
        return self._inner.lines_in_set(set_idx)

    def contains_line(self, line: int) -> bool:
        return self._inner.contains_line(line)

    def snapshot(self) -> object:
        return (
            _SNAPSHOT_TAG,
            self._inner.name,
            self._probe_refs,
            self._probe_misses,
            self._decided,
            self._inner.snapshot(),
        )

    def restore(self, state: object) -> None:
        tag, inner_name, probe_refs, probe_misses, decided, inner_state = state
        if tag != _SNAPSHOT_TAG:
            raise SimulationError(
                f"unrecognised auto-kernel snapshot tag {tag!r}"
            )
        if inner_name != self._inner.name:
            self._inner = self._make_inner(inner_name)
        self._probe_refs = probe_refs
        self._probe_misses = probe_misses
        self._decided = decided
        self._inner.restore(inner_state)

    # ------------------------------------------------------------- decision

    def _make_inner(self, name: str) -> SetKernel:
        cls = ReferenceKernel if name == "reference" else ArrayKernel
        kernel = cls(
            n_sets=self.n_sets,
            assoc=self.assoc,
            line_bits=self.line_bits,
            policy=self.policy,
            seed=None,  # state (incl. RNG) is installed by the caller
            prefetch_next_line=self.prefetch_next_line,
        )
        # The caller installs RNG state and draw count; the seed is this
        # kernel's own (the transplanted stream continues it), so the
        # sanitizer's replay verification stays truthful after a switch.
        kernel._seed = self._seed
        return kernel

    def _decide(self) -> None:
        self._decided = True
        if self.policy is not ReplacementPolicy.RANDOM:
            return  # array wins for LRU/FIFO across observed densities
        density = self._probe_misses / max(1, self._probe_refs)
        if density > SWITCH_MISS_DENSITY:
            self._switch_to_reference()

    def _switch_to_reference(self) -> None:
        inner = self._inner
        ref = self._make_inner("reference")
        ref._sets = [
            inner.lines_in_set(s_idx) for s_idx in range(self.n_sets)
        ]
        ref._dirty = set(inner._tags2d[inner._dirty2d != 0].tolist())
        ref._rand_pool = list(inner._rand_pool)
        ref._rng.bit_generator.state = copy.deepcopy(
            inner._rng.bit_generator.state
        )
        ref._rand_draws = inner._rand_draws
        self._inner = ref
