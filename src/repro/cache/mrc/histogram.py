"""Stack-distance histograms and the miss-ratio curves they induce.

A :class:`StackDistanceHistogram` is the one-pass summary the MRC engine
builds from a reference stream: ``counts[d]`` holds the (possibly
weighted) number of references with stack distance ``d`` cache lines,
``cold`` the mass of first touches (infinite distance). A fully
associative LRU cache of C lines hits exactly the references with
``d < C``, so the whole miss-ratio curve is a suffix sum away.

Counts are float64 because the SHARDS pass stores each sampled reference
with weight 1/rate; the exact pass stores integer-valued floats, which
are exact for any stream this repo can hold in memory (< 2**53 refs).
The *mass invariant* — ``counts.sum() + cold == n_refs`` — is what the
property suite pins: exact histograms satisfy it by construction, SHARDS
histograms after :meth:`adjust_mass` (the SHARDS-adj correction).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cache.mrc.distances import COLD, MrcError


@dataclass
class StackDistanceHistogram:
    """Weighted histogram of LRU stack distances, in cache lines.

    ``n_refs`` is the number of *true* references the histogram stands
    for (not the sampled count); miss ratios are always reported against
    it, so exact and SHARDS histograms of the same stream are directly
    comparable.
    """

    counts: np.ndarray
    cold: float
    n_refs: int
    line_size: int = 64
    #: Cumulative hit mass, hits(C) = counts[:C].sum(); lazily built.
    _hits_cum: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.counts = np.asarray(self.counts, dtype=np.float64)
        if self.counts.ndim != 1:
            raise MrcError("histogram counts must be 1-D")
        if self.n_refs < 0:
            raise MrcError(f"n_refs must be non-negative, got {self.n_refs}")

    @classmethod
    def from_distances(
        cls,
        distances: np.ndarray,
        *,
        weight: float = 1.0,
        n_refs: int | None = None,
        line_size: int = 64,
    ) -> "StackDistanceHistogram":
        """Histogram a distance array (:data:`COLD` marks first touches).

        ``weight`` is the mass each reference carries (1/rate for SHARDS
        samples); ``n_refs`` defaults to the weighted mass rounded to the
        nearest reference.
        """
        distances = np.asarray(distances)
        finite = distances[distances != COLD]
        if finite.size and finite.min() < 0:
            raise MrcError("stack distances must be COLD (-1) or non-negative")
        counts = (
            np.bincount(finite.astype(np.int64)).astype(np.float64)
            if finite.size
            else np.zeros(1, dtype=np.float64)
        )
        counts *= weight
        cold = float((distances == COLD).sum()) * weight
        if n_refs is None:
            n_refs = int(round(counts.sum() + cold))
        return cls(counts=counts, cold=cold, n_refs=n_refs, line_size=line_size)

    # --------------------------------------------------------------- queries

    @property
    def mass(self) -> float:
        """Total weighted mass, finite buckets plus cold."""
        return float(self.counts.sum()) + self.cold

    def _cum(self) -> np.ndarray:
        if self._hits_cum is None or len(self._hits_cum) != len(self.counts) + 1:
            cum = np.empty(len(self.counts) + 1, dtype=np.float64)
            cum[0] = 0.0
            np.cumsum(self.counts, out=cum[1:])
            self._hits_cum = cum
        return self._hits_cum

    def hits_at(self, capacity: int) -> float:
        """Mass of references with distance < ``capacity`` (LRU hits)."""
        if capacity < 0:
            raise MrcError(f"capacity must be non-negative, got {capacity}")
        cum = self._cum()
        return float(cum[min(capacity, len(cum) - 1)])

    def misses_at(self, capacity: int) -> float:
        """Mass of misses in a fully-assoc LRU cache of ``capacity`` lines."""
        return self.mass - self.hits_at(capacity)

    def miss_ratio_at(self, capacity: int) -> float:
        """Predicted miss ratio against the true reference count."""
        if self.n_refs == 0:
            return 0.0
        return self.misses_at(capacity) / self.n_refs

    # ------------------------------------------------------------ adjustment

    def adjust_mass(self, target: float) -> None:
        """SHARDS-adj: shift bucket 0 so total mass equals ``target``.

        The sampled histogram's weighted mass drifts from the true
        reference count when the sampled lines' reference density differs
        from the population's; adding the difference at distance 0 (the
        bucket every realistic cache hits) restores the mass invariant
        without disturbing the curve's tail, per Waldspurger et al.'s
        SHARDS-adj. The correction may be negative.
        """
        self.counts[0] += target - self.mass
        self._hits_cum = None
