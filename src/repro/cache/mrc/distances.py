"""Exact LRU stack distances in one pass, with bit-identical backends.

The *stack distance* (Mattson et al.) of a reference is the number of
distinct cache lines touched since the previous reference to the same
line; a fully-associative LRU cache of C lines misses exactly the
references whose distance is >= C, plus cold first touches. One pass over
a stream therefore yields the miss count of *every* cache size at once —
the foundation of the MRC engine.

Mirroring the cache-kernel design (DESIGN.md section 6), the pass rests
on two *independently derived* exact formulations behind one dispatch
point, bit-identical by contract (differential + property tested in
``tests/mrc/``), so each serves as the other's oracle:

* **Online (Olken)** — ``"fenwick"``: a Fenwick tree over last-access
  timestamps (:class:`repro.datastructs.FenwickTree`) answers "distinct
  lines whose most recent access follows this line's previous access"
  with one prefix sum per reference. O(N log N), sequential by nature —
  the reference implementation.
* **Offline identity** — writing ``prev[t]`` for the previous occurrence
  of reference ``t``'s line, the distance satisfies::

      dist(t) = #{ j : prev[t] < j < t  and  prev[j] <= prev[t] }
              = #{ j < t : prev[j] <= prev[t] }  -  (prev[t] + 1)

  because a window position ``j`` is the *first* occurrence of its line
  inside ``(prev[t], t)`` exactly when its own previous occurrence falls
  at or before ``prev[t]``, and every ``j <= prev[t]`` trivially has
  ``prev[j] < j <= prev[t]``. The remaining term — the rank of each
  element among the prefix before it — has no per-reference data
  dependence, so it vectorises. Two realisations ship:

  * ``"sortmerge"`` (default) — bottom-up merge counting: dyadic blocks
    of the ``prev`` array are kept sorted and merged pairwise, level by
    level; each right-block element counts its left-sibling elements
    ``<=`` itself with one global ``searchsorted`` over offset block
    keys. log N levels of whole-array NumPy operations; the fastest
    exact pass at the stream sizes this repo sweeps (~3x Olken).
  * ``"offline"`` — a wavelet-style bit-plane sweep over the value
    domain (:func:`prefix_rank_leq`), kept as the structurally distinct
    cross-check of the same identity.

All backends return identical int64 arrays; :data:`COLD` (-1) marks
first touches.
"""

from __future__ import annotations

import numpy as np

from repro.datastructs.fenwick import FenwickTree
from repro.errors import ReproError

#: Distance value assigned to cold (first-touch) references.
COLD = -1

#: Recognised stack-distance pass implementations.
DISTANCE_BACKENDS = ("sortmerge", "fenwick", "offline")


class MrcError(ReproError):
    """Raised for invalid MRC-engine configuration or inputs."""


def lines_of(addrs: np.ndarray, line_size: int) -> np.ndarray:
    """Cache-line numbers of byte addresses (uint64, ``addr >> line_bits``)."""
    if line_size <= 0 or line_size & (line_size - 1):
        raise MrcError(f"line size must be a positive power of two, got {line_size}")
    shift = np.uint64(line_size.bit_length() - 1)
    return np.asarray(addrs, dtype=np.uint64) >> shift


def previous_occurrence(codes: np.ndarray) -> np.ndarray:
    """Index of each element's previous occurrence (-1 for first), vectorised.

    ``codes`` may be any integer array (raw line numbers are fine); only
    equality matters.
    """
    n = len(codes)
    prev = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return prev
    order = np.argsort(codes, kind="stable")
    ordered = codes[order]
    same_as_left = np.empty(n, dtype=bool)
    same_as_left[0] = False
    np.equal(ordered[1:], ordered[:-1], out=same_as_left[1:])
    prev[order[same_as_left]] = order[np.flatnonzero(same_as_left) - 1]
    return prev


def prefix_rank_leq(
    values: np.ndarray, prefixes: np.ndarray, thresholds: np.ndarray
) -> np.ndarray:
    """For each query ``i``: ``#{ j < prefixes[i] : values[j] <= thresholds[i] }``.

    Offline wavelet-tree rank: elements and queries walk the bit planes of
    the value domain from the most significant bit down, stably
    partitioning elements by the current bit within their node and
    descending each query toward its threshold. All per-level work is
    vectorised; total cost O((N + Q) log V).
    """
    values = np.asarray(values, dtype=np.int64)
    prefixes = np.asarray(prefixes, dtype=np.int64)
    thresholds = np.asarray(thresholds, dtype=np.int64)
    n, q = len(values), len(prefixes)
    out = np.zeros(q, dtype=np.int64)
    if n == 0 or q == 0:
        return out
    if values.min() < 0 or thresholds.min() < 0:
        raise MrcError("prefix_rank_leq requires non-negative values/thresholds")
    nbits = max(int(values.max()), int(thresholds.max())).bit_length() or 1

    cur = values.copy()
    positions = np.arange(n, dtype=np.int64)
    elem_start = np.zeros(n, dtype=np.int64)
    elem_end = np.full(n, n, dtype=np.int64)
    q_start = np.zeros(q, dtype=np.int64)
    q_end = np.full(q, n, dtype=np.int64)
    plen = np.clip(prefixes, 0, n)
    acc = np.zeros(q, dtype=np.int64)

    zeros_cum = np.empty(n + 1, dtype=np.int64)
    for bit in range(nbits - 1, -1, -1):
        is_zero = ((cur >> bit) & 1) == 0
        zeros_cum[0] = 0
        np.cumsum(is_zero, out=zeros_cum[1:])

        # Stable partition of every node: zeros first, ones after, spans
        # unchanged — each element's new slot follows from cumsums alone.
        zeros_before = zeros_cum[positions] - zeros_cum[elem_start]
        node_zeros = zeros_cum[elem_end] - zeros_cum[elem_start]
        ones_before = (positions - elem_start) - zeros_before
        new_pos = np.where(
            is_zero,
            elem_start + zeros_before,
            elem_start + node_zeros + ones_before,
        )
        child_start = np.where(is_zero, elem_start, elem_start + node_zeros)
        child_end = np.where(is_zero, elem_start + node_zeros, elem_end)

        nxt = np.empty_like(cur)
        nxt[new_pos] = cur
        es = np.empty_like(elem_start)
        es[new_pos] = child_start
        ee = np.empty_like(elem_end)
        ee[new_pos] = child_end

        # Queries: zeros among the node's first plen elements, and in the
        # whole node, give the split; a 1-bit in the threshold accepts the
        # entire zero-side and descends right.
        z = zeros_cum[q_start + plen] - zeros_cum[q_start]
        nz = zeros_cum[q_end] - zeros_cum[q_start]
        thr_one = ((thresholds >> bit) & 1) == 1
        acc += np.where(thr_one, z, 0)
        new_q_start = np.where(thr_one, q_start + nz, q_start)
        new_q_end = np.where(thr_one, q_end, q_start + nz)
        plen = np.where(thr_one, plen - z, z)

        cur, elem_start, elem_end = nxt, es, ee
        q_start, q_end = new_q_start, new_q_end

    # Elements still in each query's node equal its threshold exactly.
    acc += plen
    out[:] = acc
    return out


def self_rank_leq(values: np.ndarray) -> np.ndarray:
    """For each ``t``: ``#{ j < t : values[j] <= values[t] }``, vectorised.

    Bottom-up merge counting. Invariant: after processing level ``w``,
    every aligned block of ``2w`` consecutive *original indices* holds
    its values in ascending order. Ascending to level ``w``, each element
    of a right block counts the elements of its left sibling that are
    ``<=`` itself — all of which have smaller original index — and the
    union of left siblings along an element's merge path is exactly its
    whole index prefix. Blocks carry the offset key ``block * span +
    value``, globally ascending, so one ``searchsorted`` per level
    answers every block-local rank query at once; the same counts place
    the elements for the pairwise merge.
    """
    n = len(values)
    rank = np.zeros(n, dtype=np.int64)
    if n <= 1:
        return rank
    v = np.asarray(values, dtype=np.int64)
    cur = v - int(v.min())
    span = int(cur.max()) + 1
    orig = np.arange(n, dtype=np.int64)
    slots = np.arange(n, dtype=np.int64)
    shift = 0
    while (1 << shift) < n:
        width = 1 << shift
        block = slots >> shift
        keys = block * span
        keys += cur
        right = np.flatnonzero((block & 1) == 1)
        sibling = block[right] - 1
        cnt = np.searchsorted(keys, sibling * span + cur[right], side="right")
        cnt -= sibling << shift
        rank[orig[right]] += cnt
        if (width << 1) >= n:
            break  # final level: rank is complete, the merge is unused
        # Merge each pair into a sorted 2*width block. Left elements keep
        # ties ahead of right ones (side="left"), matching the counting
        # convention above; lone left blocks at the tail stay put.
        has_right = ((block & 1) == 0) & (((block + 1) << shift) < n)
        left = np.flatnonzero(has_right)
        sibling = block[left] + 1
        cntl = np.searchsorted(keys, sibling * span + cur[left], side="left")
        cntl -= sibling << shift
        new_pos = slots.copy()
        new_pos[right] = slots[right] - width + cnt
        new_pos[left] = slots[left] + cntl
        nxt = np.empty_like(cur)
        nxt[new_pos] = cur
        nor = np.empty_like(orig)
        nor[new_pos] = orig
        cur, orig = nxt, nor
        shift += 1
    return rank


# ------------------------------------------------------------------ passes

def _distances_fenwick(codes: np.ndarray) -> np.ndarray:
    """Olken's algorithm: Fenwick tree over live last-access timestamps."""
    n = len(codes)
    out = np.empty(n, dtype=np.int64)
    prev = previous_occurrence(codes).tolist()
    fen = FenwickTree(n)
    live = 0
    for t in range(n):
        p = prev[t]
        if p < 0:
            out[t] = COLD
            live += 1
        else:
            # Lines whose most recent access follows p; line(t) itself
            # sits exactly at timestamp p, so it is never self-counted.
            out[t] = live - fen.prefix_sum(p)
            fen.add(p, -1)
        fen.add(t, 1)
    return out


def _distances_offline(codes: np.ndarray) -> np.ndarray:
    """Offline pass: previous-occurrence identity + batched prefix rank."""
    n = len(codes)
    out = np.full(n, COLD, dtype=np.int64)
    if n == 0:
        return out
    prev = previous_occurrence(codes)
    warm = np.flatnonzero(prev >= 0)
    if len(warm) == 0:
        return out
    # Shift the value domain by +1 so cold markers (-1) become 0.
    ranks = prefix_rank_leq(prev + 1, prefixes=warm, thresholds=prev[warm] + 1)
    out[warm] = ranks - (prev[warm] + 1)
    return out


def _distances_sortmerge(codes: np.ndarray) -> np.ndarray:
    """Offline identity with :func:`self_rank_leq` answering the ranks."""
    n = len(codes)
    out = np.full(n, COLD, dtype=np.int64)
    if n == 0:
        return out
    prev = previous_occurrence(codes)
    warm = prev >= 0
    rank = self_rank_leq(prev)
    out[warm] = rank[warm] - (prev[warm] + 1)
    return out


def reuse_distances(codes: np.ndarray, backend: str = "sortmerge") -> np.ndarray:
    """Per-reference LRU stack distances over pre-decomposed line codes.

    ``codes`` is any integer array where equal values mean "same cache
    line" (use :func:`lines_of` to lower byte addresses). Returns an
    int64 array: distinct *other* lines touched since the line's previous
    access, or :data:`COLD` (-1) for first touches. Backends are
    bit-identical; ``"sortmerge"`` (vectorised merge counting) is the
    default, ``"fenwick"`` (Olken) and ``"offline"`` (bit-plane rank)
    the independently derived cross-checks.
    """
    if backend not in DISTANCE_BACKENDS:
        raise MrcError(
            f"unknown distance backend {backend!r}; "
            f"available: {', '.join(DISTANCE_BACKENDS)}"
        )
    codes = np.asarray(codes)
    if codes.ndim != 1:
        raise MrcError("reuse_distances expects a 1-D code array")
    if backend == "fenwick":
        return _distances_fenwick(codes)
    if backend == "sortmerge":
        return _distances_sortmerge(codes)
    return _distances_offline(codes)
