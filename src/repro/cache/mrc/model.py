"""Analytical set-associativity correction over stack-distance histograms.

A stack-distance histogram predicts fully-associative LRU behaviour
exactly; real sweeps run set-associative configurations. Following the
analytical cache model of Gysi et al. ("A Fast Analytical Model of Fully
Associative Caches", PAPERS.md) and the classic Smith conflict model, a
reference with stack distance ``d`` misses in an ``A``-way cache of ``S``
sets with probability::

    P_miss(d) = P[ Binomial(d, 1/S) >= A ]

— the ``d`` distinct intervening lines land in the reference's own set
independently with probability 1/S, and LRU within the set evicts the
line once ``A`` of them have landed there. The correction collapses to
the exact step function ``d >= A`` when ``S == 1`` (fully associative),
which is what keeps the exact pass bit-for-bit against the simulator.

The binomial survival function is evaluated without SciPy: the CDF terms
``C(d,j) p^j q^(d-j)`` for ``j < A`` follow a multiplicative recurrence,
accumulated in log space so streams with distances in the hundreds of
thousands stay finite.

**Scope: undecorated caches only.** The argument above models a bare
set-associative array. Mechanism-decorated stacks
(:mod:`repro.cache.components` — victim caches, miss caches, stream
buffers) rescue misses through side storage no stack-distance argument
captures, so they *bypass* this correction entirely rather than being
approximated by it: the experiment layer refuses to run the MRC engine
for a config with ``mechanisms`` set (``experiments/mrc.py``) and points
at the exact mechanism-sweep driver instead. ``tests/mrc`` pins that
refusal.
"""

from __future__ import annotations

import numpy as np

from repro.cache.mrc.distances import MrcError
from repro.cache.mrc.histogram import StackDistanceHistogram


def miss_probability(distances: np.ndarray, n_sets: int, assoc: int) -> np.ndarray:
    """P[miss] for each stack distance in an ``assoc``-way, ``n_sets``-set cache.

    Vectorised over ``distances`` (non-negative ints, typically
    ``arange(len(histogram))``); returns float64 in [0, 1].
    """
    if n_sets < 1 or assoc < 1:
        raise MrcError(f"invalid geometry: {n_sets} sets x {assoc} ways")
    d = np.asarray(distances, dtype=np.float64)
    if d.size and d.min() < 0:
        raise MrcError("distances must be non-negative")
    if n_sets == 1:
        return (d >= assoc).astype(np.float64)

    p = 1.0 / n_sets
    log_p, log_q = np.log(p), np.log1p(-p)
    # CDF = sum_{j<A} C(d,j) p^j q^(d-j); term j follows from term j-1 by
    # * (d-j+1)/j * p/q. Terms with j > d are zero (masked before the log).
    log_term = d * log_q
    cdf = np.exp(log_term)
    for j in range(1, assoc):
        ratio = np.where(d >= j, d - j + 1, 1.0)
        log_term = log_term + np.log(ratio) - np.log(j) + log_p - log_q
        cdf += np.where(d >= j, np.exp(log_term), 0.0)
    return np.clip(1.0 - cdf, 0.0, 1.0)


def expected_misses(
    hist: StackDistanceHistogram, capacity: int, assoc: int | None = None
) -> float:
    """Expected miss mass of ``hist`` in a cache of ``capacity`` lines.

    ``assoc=None`` (or an associativity covering the whole cache) is the
    exact fully-associative suffix sum; otherwise the binomial correction
    integrates P_miss over the histogram. Cold references always miss.
    """
    if capacity < 1:
        raise MrcError(f"capacity must be positive, got {capacity}")
    if assoc is None or assoc >= capacity:
        return hist.misses_at(capacity)
    if capacity % assoc:
        raise MrcError(
            f"{capacity} lines not divisible by associativity {assoc}"
        )
    n_sets = capacity // assoc
    # Only occupied buckets contribute; SHARDS histograms are sparse
    # (scaled distances leave rate-sized gaps), so this skips most rows.
    occupied = np.flatnonzero(hist.counts)
    pm = miss_probability(occupied, n_sets, assoc)
    return float(hist.counts[occupied] @ pm) + hist.cold


def expected_miss_ratio(
    hist: StackDistanceHistogram, capacity: int, assoc: int | None = None
) -> float:
    """Expected miss ratio against the histogram's true reference count."""
    if hist.n_refs == 0:
        return 0.0
    return expected_misses(hist, capacity, assoc) / hist.n_refs
