"""SHARDS spatial sampling: constant-space approximate stack distances.

SHARDS (Waldspurger et al., via "A Survey of Miss-Ratio Curve
Construction Techniques", PAPERS.md) samples *lines*, not references: a
line is in the sample iff a uniform hash of its line number falls below
``rate * 2**64``, so every reference to a sampled line is kept and reuse
pairs survive sampling intact. Running the exact pass on the sampled
subsequence then yields distances that are unbiased estimates of the
full-stream distances *scaled by the rate* — each sampled intervening
line stands for 1/rate real ones — so the histogram stores scaled
distances at weight 1/rate.

Determinism: the hash is a fixed splitmix64-style mixer whose salt is
drawn from :func:`repro.util.rng.make_rng`, so a (seed, rate) pair picks
the same spatial sample on every run, machine and process — the property
the hypothesis suite pins.
"""

from __future__ import annotations

import numpy as np

from repro.cache.mrc.distances import COLD, MrcError
from repro.util.rng import make_rng

#: Hash domain; a line is sampled iff mix64(line) < rate * 2**64.
_HASH_SPACE = 1 << 64


def _mix64(codes: np.ndarray, salt: int) -> np.ndarray:
    """splitmix64 finaliser over uint64 line numbers (vectorised)."""
    x = np.asarray(codes, dtype=np.uint64) + np.uint64(salt)
    x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return x ^ (x >> np.uint64(31))


def sample_mask(codes: np.ndarray, rate: float, seed: int | None = None) -> np.ndarray:
    """Boolean mask of references whose *line* is in the spatial sample."""
    if not 0.0 < rate <= 1.0:
        raise MrcError(f"sample rate must be in (0, 1], got {rate}")
    if rate == 1.0:
        return np.ones(len(codes), dtype=bool)
    salt = int(make_rng(seed).integers(0, _HASH_SPACE, dtype=np.uint64))
    threshold = np.uint64(int(rate * _HASH_SPACE))
    with np.errstate(over="ignore"):
        return _mix64(codes, salt) < threshold


def scale_distances(distances: np.ndarray, rate: float) -> np.ndarray:
    """Rescale sampled-subsequence distances to full-stream estimates.

    A distance of ``d`` among sampled lines means ``d`` sampled distinct
    intervening lines, each standing for ``1/rate`` lines of the full
    stream; cold markers pass through unchanged.
    """
    if not 0.0 < rate <= 1.0:
        raise MrcError(f"sample rate must be in (0, 1], got {rate}")
    distances = np.asarray(distances, dtype=np.int64)
    if rate == 1.0:
        return distances
    scaled = (distances.astype(np.float64) / rate).astype(np.int64)
    return np.where(distances == COLD, np.int64(COLD), scaled)
