"""One-pass miss-ratio-curve engine (ROADMAP item 3).

One pass over a reference stream — exact Mattson stack distances or a
SHARDS spatial sample — yields the predicted miss ratio of *every* cache
size at once, per memory object and in aggregate, with an analytical
set-associativity correction. The experiment layer uses it to turn an
N-cell size sweep into a single pass plus a few exact-simulator
verification cells (``repro mrc``); ``tests/mrc/`` scores it against the
exact simulator on every registry workload.
"""

from repro.cache.mrc.distances import (
    COLD,
    DISTANCE_BACKENDS,
    MrcError,
    lines_of,
    prefix_rank_leq,
    previous_occurrence,
    reuse_distances,
    self_rank_leq,
)
from repro.cache.mrc.engine import (
    DEFAULT_SAMPLE_RATE,
    MRC_MODES,
    MrcResult,
    build_mrc,
    mrc_from_addrs,
    select_verification_sizes,
)
from repro.cache.mrc.histogram import StackDistanceHistogram
from repro.cache.mrc.model import (
    expected_miss_ratio,
    expected_misses,
    miss_probability,
)
from repro.cache.mrc.shards import sample_mask, scale_distances

__all__ = [
    "COLD",
    "DEFAULT_SAMPLE_RATE",
    "DISTANCE_BACKENDS",
    "MRC_MODES",
    "MrcError",
    "MrcResult",
    "StackDistanceHistogram",
    "build_mrc",
    "expected_miss_ratio",
    "expected_misses",
    "lines_of",
    "miss_probability",
    "mrc_from_addrs",
    "prefix_rank_leq",
    "previous_occurrence",
    "reuse_distances",
    "sample_mask",
    "scale_distances",
    "select_verification_sizes",
    "self_rank_leq",
]
