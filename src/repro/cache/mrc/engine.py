"""One-pass miss-ratio-curve construction over workload reference streams.

:func:`build_mrc` consumes a workload's reference stream (preferably a
compiled stream from :mod:`repro.workloads.compile`) exactly once and
returns an :class:`MrcResult` holding stack-distance histograms for the
aggregate stream *and* for every memory object the stream touches — the
per-object decomposition is this repo's angle on MRCs: the paper asks
"which object misses?", the MRC engine answers it for every cache size
at once. Two modes share the machinery:

* ``mode="exact"`` — the full Mattson pass (:mod:`.distances`); its
  fully-associative miss counts match the exact simulator bit-for-bit.
* ``mode="shards"`` — the SHARDS spatial sample (:mod:`.shards`):
  constant-space, linear-time, deterministic under a fixed seed, with
  per-object SHARDS-adj mass corrections against the exact per-object
  reference counts (which cost one vectorised attribution pass).

Miss ratios for set-associative geometries apply the binomial conflict
model (:mod:`.model`); ``assoc=None`` keeps the exact fully-associative
curve. :func:`select_verification_sizes` picks the sweep cells where the
predicted curve bends hardest — the cells worth spending the exact
simulator on (see ``repro mrc`` / EXPERIMENTS.md E12).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.cache.mrc.distances import MrcError, lines_of, reuse_distances
from repro.cache.mrc.histogram import StackDistanceHistogram
from repro.cache.mrc.model import expected_miss_ratio, expected_misses
from repro.cache.mrc.shards import sample_mask, scale_distances

if TYPE_CHECKING:  # pragma: no cover
    from repro.memory.object_map import AttributionSnapshot
    from repro.workloads.base import Workload
    from repro.workloads.compile import CompiledStream

#: Recognised MRC construction modes.
MRC_MODES = ("exact", "shards")

#: Default SHARDS sampling rate (fraction of cache lines kept).
DEFAULT_SAMPLE_RATE = 0.05


@dataclass
class MrcResult:
    """Histograms from one MRC pass, queryable at any cache geometry.

    ``per_object`` maps object names (sorted) to histograms whose
    ``n_refs`` is the object's exact reference count, so per-object and
    aggregate ratios share one denominator convention. All query methods
    take a cache size in **bytes** and an optional associativity
    (``None`` = fully associative, exact for LRU).
    """

    workload: str
    mode: str
    sample_rate: float
    line_size: int
    n_refs: int
    #: References that survived the spatial sample (== n_refs for exact).
    sampled_refs: int
    aggregate: StackDistanceHistogram
    per_object: dict[str, StackDistanceHistogram] = field(default_factory=dict)

    def _capacity(self, size: int) -> int:
        lines = size // self.line_size
        if lines < 1:
            raise MrcError(
                f"cache size {size} smaller than one {self.line_size}B line"
            )
        return lines

    def _hist(self, name: str | None) -> StackDistanceHistogram:
        if name is None:
            return self.aggregate
        if name not in self.per_object:
            raise MrcError(
                f"no histogram for object {name!r} "
                f"(known: {', '.join(self.per_object) or 'none'})"
            )
        return self.per_object[name]

    def misses(
        self, size: int, assoc: int | None = None, name: str | None = None
    ) -> float:
        """Expected miss mass at ``size`` bytes (exact mode: exact count)."""
        return expected_misses(self._hist(name), self._capacity(size), assoc)

    def miss_ratio(
        self, size: int, assoc: int | None = None, name: str | None = None
    ) -> float:
        """Expected miss ratio at ``size`` bytes."""
        return expected_miss_ratio(self._hist(name), self._capacity(size), assoc)

    def curve(
        self,
        sizes: Iterable[int],
        assoc: int | None = None,
        name: str | None = None,
    ) -> dict[int, float]:
        """Miss ratio at each size, one dict from the single pass."""
        return {size: self.miss_ratio(size, assoc, name) for size in sizes}

    def object_names(self) -> list[str]:
        return list(self.per_object)


# ------------------------------------------------------------------- build

def _collect_addrs(
    workload: "Workload | None",
    compiled: "CompiledStream | None",
    max_refs: int | None,
) -> np.ndarray:
    if compiled is not None:
        blocks = compiled.iter_blocks()
    elif workload is not None:
        blocks = workload.blocks()
    else:
        raise MrcError("build_mrc needs a workload or a compiled stream")
    chunks: list[np.ndarray] = []
    total = 0
    for block in blocks:
        chunks.append(block.addrs)
        total += len(block.addrs)
        if max_refs is not None and total >= max_refs:
            break
    if not chunks:
        return np.empty(0, dtype=np.uint64)
    addrs = np.concatenate(chunks)
    return addrs[:max_refs] if max_refs is not None else addrs


def mrc_from_addrs(
    addrs: np.ndarray,
    *,
    snapshot: "AttributionSnapshot | None" = None,
    workload_name: str = "",
    mode: str = "exact",
    sample_rate: float = DEFAULT_SAMPLE_RATE,
    seed: int | None = None,
    line_size: int = 64,
    distance_backend: str = "sortmerge",
) -> MrcResult:
    """The MRC pass over a raw address array.

    ``snapshot`` (an :class:`AttributionSnapshot`) enables the per-object
    decomposition; without it only the aggregate histogram is built.
    """
    if mode not in MRC_MODES:
        raise MrcError(
            f"unknown MRC mode {mode!r}; available: {', '.join(MRC_MODES)}"
        )
    addrs = np.asarray(addrs, dtype=np.uint64)
    codes = lines_of(addrs, line_size)
    n = len(codes)

    if mode == "exact" or sample_rate == 1.0:
        mode = "exact"
        sample_rate = 1.0
        kept = np.ones(n, dtype=bool)
        weight = 1.0
        distances = reuse_distances(codes, backend=distance_backend)
    else:
        kept = sample_mask(codes, sample_rate, seed)
        if n and not kept.any():
            raise MrcError(
                f"SHARDS rate {sample_rate} sampled no lines from "
                f"{n} references; raise the rate"
            )
        weight = 1.0 / sample_rate
        distances = scale_distances(
            reuse_distances(codes[kept], backend=distance_backend), sample_rate
        )

    aggregate = StackDistanceHistogram.from_distances(
        distances, weight=weight, n_refs=n, line_size=line_size
    )
    if mode == "shards":
        aggregate.adjust_mass(n)

    per_object: dict[str, StackDistanceHistogram] = {}
    if snapshot is not None and len(snapshot.objects):
        obj_idx = snapshot.attribute(addrs)
        true_counts = np.bincount(
            obj_idx[obj_idx >= 0], minlength=len(snapshot.objects)
        )
        kept_idx = obj_idx[kept]
        by_name: dict[str, StackDistanceHistogram] = {}
        for i in np.unique(kept_idx[kept_idx >= 0]):
            hist = StackDistanceHistogram.from_distances(
                distances[kept_idx == i],
                weight=weight,
                n_refs=int(true_counts[i]),
                line_size=line_size,
            )
            if mode == "shards":
                hist.adjust_mass(int(true_counts[i]))
            by_name[snapshot.objects[i].name] = hist
        per_object = {name: by_name[name] for name in sorted(by_name)}

    return MrcResult(
        workload=workload_name,
        mode=mode,
        sample_rate=sample_rate,
        line_size=line_size,
        n_refs=n,
        sampled_refs=int(kept.sum()),
        aggregate=aggregate,
        per_object=per_object,
    )


def build_mrc(
    workload: "Workload",
    *,
    compiled: "CompiledStream | None" = None,
    mode: str = "exact",
    sample_rate: float = DEFAULT_SAMPLE_RATE,
    seed: int | None = None,
    max_refs: int | None = None,
    line_size: int = 64,
    distance_backend: str = "sortmerge",
) -> MrcResult:
    """One MRC pass over ``workload``'s reference stream.

    ``compiled`` replays a :class:`CompiledStream` instead of the
    generator (bit-identical addresses, no per-block Python); the
    workload instance still provides the object map for per-object
    attribution. ``max_refs`` truncates the stream — the same truncation
    the simulator applies under its own ``max_refs``, which is what
    keeps differential comparisons aligned.
    """
    addrs = _collect_addrs(workload, compiled, max_refs)
    workload.prepare()
    result = mrc_from_addrs(
        addrs,
        snapshot=workload.object_map.snapshot(),
        workload_name=workload.name,
        mode=mode,
        sample_rate=sample_rate,
        seed=seed,
        line_size=line_size,
        distance_backend=distance_backend,
    )
    if workload.consumed:
        workload.reset()
    return result


# ------------------------------------------------------- verification cells

def select_verification_sizes(
    curve: dict[int, float], k: int = 2
) -> list[int]:
    """The ``k`` sweep sizes where the predicted curve bends hardest.

    Curvature is the second divided difference of miss ratio over
    log2(size) — the knees of the curve, where the analytical model is
    least trustworthy and an exact simulator cell buys the most
    confidence. Endpoints qualify only when there are too few interior
    points; returned sizes are sorted ascending.
    """
    sizes = sorted(curve)
    if k <= 0:
        return []
    if len(sizes) <= 2 or k >= len(sizes):
        return sizes[:k] if len(sizes) <= 2 else sizes
    x = np.log2(np.asarray(sizes, dtype=np.float64))
    y = np.asarray([curve[s] for s in sizes], dtype=np.float64)
    h_lo = x[1:-1] - x[:-2]
    h_hi = x[2:] - x[1:-1]
    curvature = np.abs(
        (y[2:] - y[1:-1]) / h_hi - (y[1:-1] - y[:-2]) / h_lo
    )
    order = sorted(
        range(len(curvature)), key=lambda i: (-curvature[i], sizes[i + 1])
    )
    return sorted(sizes[i + 1] for i in order[:k])
