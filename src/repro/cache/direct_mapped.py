"""Fully vectorised direct-mapped cache model.

For associativity 1 a chunk of references can be classified without any
per-reference Python work: a reference hits iff the *previous reference to
the same set* (within the chunk, or the resident line carried over from
earlier chunks) touched the same line. Grouping a chunk by set index with
a stable argsort makes "previous reference to the same set" the previous
element of the sorted order, so the whole classification is a handful of
NumPy array operations — the technique recommended by the hpc-parallel
guides for turning a sequential scan into a sort + segmented comparison.

``miss_budget`` is honoured by snapshot/replay: the per-set resident-line
table is saved before the chunk, and when the budget-th miss falls inside
the chunk the state is restored and only the consumed prefix re-applied.
"""

from __future__ import annotations

import numpy as np

from repro import sanitize
from repro.cache.base import AccessResult
from repro.cache.components import CacheComponent, LineOutcome
from repro.cache.config import CacheConfig
from repro.cache.kernels.base import KernelResult
from repro.errors import CacheConfigError

_EMPTY = np.uint64(0xFFFF_FFFF_FFFF_FFFF)  # no real line number is all-ones


class DirectMappedCache(CacheComponent):
    """Exact direct-mapped cache, vectorised over reference chunks."""

    def __init__(self, config: CacheConfig, backend: str | None = None) -> None:
        if config.assoc != 1:
            raise CacheConfigError(
                f"DirectMappedCache requires assoc=1, got {config.assoc}"
            )
        super().__init__(config)
        # This model is already fully vectorised and exact, so it serves
        # every kernel backend; the attribute only records the selection.
        from repro.cache.kernels import resolve_backend

        self.backend = resolve_backend(
            backend if backend is not None else config.backend
        )
        self._tags = np.full(config.n_sets, _EMPTY, dtype=np.uint64)
        self._staged_misses = 0

    def reset(self) -> None:
        self._tags.fill(_EMPTY)

    def contents_line_count(self) -> int:
        return int((self._tags != _EMPTY).sum())

    def contains_addr(self, addr: int) -> bool:
        line = addr >> self.config.line_bits
        return bool(self._tags[line & self.config.set_mask] == line)

    def _classify(self, lines: np.ndarray) -> np.ndarray:
        """Miss mask for ``lines`` and in-place state update (no budget)."""
        set_idx = (lines & np.uint64(self.config.set_mask)).astype(np.int64)
        order = np.argsort(set_idx, kind="stable")
        s_sets = set_idx[order]
        s_lines = lines[order]

        hit_sorted = np.zeros(len(lines), dtype=bool)
        if len(lines) > 1:
            same_set = s_sets[1:] == s_sets[:-1]
            same_line = s_lines[1:] == s_lines[:-1]
            hit_sorted[1:] = same_set & same_line
        # Group-leading references compare against the resident line.
        first_of_group = np.ones(len(lines), dtype=bool)
        if len(lines) > 1:
            first_of_group[1:] = s_sets[1:] != s_sets[:-1]
        leaders = np.flatnonzero(first_of_group)
        hit_sorted[leaders] = self._tags[s_sets[leaders]] == s_lines[leaders]

        # The last reference of each set group leaves its line resident.
        last_of_group = np.ones(len(lines), dtype=bool)
        if len(lines) > 1:
            last_of_group[:-1] = s_sets[1:] != s_sets[:-1]
        enders = np.flatnonzero(last_of_group)
        self._tags[s_sets[enders]] = s_lines[enders]

        miss_mask = np.empty(len(lines), dtype=bool)
        miss_mask[order] = ~hit_sorted
        return miss_mask

    def access(
        self,
        addrs: np.ndarray,
        miss_budget: int | None = None,
        tag: str = "app",
        writes: np.ndarray | None = None,
    ) -> AccessResult:
        # This model is write-through/no-write-allocate-free: stores and
        # loads are classified identically and no dirty state is kept, so
        # ``writes`` does not change the miss mask.
        n = len(addrs)
        if n == 0:
            return AccessResult(np.zeros(0, dtype=bool), 0)
        res = self._chunk_access(addrs, miss_budget=miss_budget, writes=writes)
        self.commit_stage(tag, res.consumed)
        return AccessResult(res.miss_mask, res.consumed)

    # --------------------------------------------------- component protocol

    def begin_stage(self) -> None:
        self._staged_misses = 0

    def commit_stage(self, tag: str, accesses: int) -> None:
        self.stats.record(tag, accesses, self._staged_misses)
        self.begin_stage()
        if sanitize.is_active():
            sanitize.check_component(self)

    def _chunk_access(
        self,
        addrs: np.ndarray,
        miss_budget: int | None = None,
        writes: np.ndarray | None = None,
    ) -> KernelResult:
        n = len(addrs)
        lines = np.asarray(addrs, dtype=np.uint64) >> np.uint64(self.config.line_bits)

        snapshot = self._tags.copy() if miss_budget is not None else None
        miss_mask = self._classify(lines)

        consumed = n
        if miss_budget is not None:
            cumulative = np.cumsum(miss_mask)
            crossing = np.searchsorted(cumulative, miss_budget)
            if crossing < n:
                # Budget exhausted mid-chunk: roll back and re-apply prefix.
                consumed = int(crossing) + 1
                self._tags = snapshot
                miss_mask = self._classify(lines[:consumed])

        misses = int(miss_mask.sum())
        self._staged_misses += misses
        return KernelResult(miss_mask, consumed, misses, 0, 0)

    def access_line(self, line: int, write: bool = False) -> LineOutcome:
        """Scalar per-line path for decorator components."""
        idx = line & self.config.set_mask
        resident = self._tags[idx]
        if resident == line:
            return LineOutcome(False, None)
        evicted = None if resident == _EMPTY else int(resident)
        self._tags[idx] = line
        self._staged_misses += 1
        return LineOutcome(True, evicted)

    def state_snapshot(self) -> object:
        return self._tags.copy()

    def state_restore(self, state: object) -> None:
        self._tags = np.array(state, dtype=np.uint64, copy=True)
