"""Exact set-associative cache with LRU/FIFO/random replacement.

This is the reference model for all experiments — the paper simulates "a
single-level set associative cache". Set state is a Python list of line
numbers per set, ordered oldest-first, so LRU promotion and eviction are
O(assoc) list operations; associativities in practice are 2-16, where a
linear scan of a small list beats any fancier structure.

Beyond the paper's model, two optional realism features are provided for
the ablation benches:

* **write-back / write-allocate** — pass a ``writes`` mask to ``access``
  and dirty lines are tracked; evicting a dirty line counts a writeback
  (``stats.writebacks``). The miss classification is unchanged (fills
  happen on write misses either way), so the paper's results are
  unaffected unless a consumer inspects writeback counts.
* **next-line prefetch** — ``prefetch_next_line=True`` fills line ``L+1``
  whenever line ``L`` misses, modelling a simple hardware prefetcher;
  used to show the profiling techniques' rankings survive prefetching.

The access loop is the one inherently sequential kernel in the library
(each reference's hit/miss depends on every prior reference mapping to the
same set), so per the hpc-parallel guides it is written as a tight loop
over pre-decomposed Python ints: the address arithmetic
(``addr >> line_bits``) is vectorised in NumPy, ``ndarray.tolist()``
converts once, and the loop body touches only local variables.
"""

from __future__ import annotations

import numpy as np

from repro.cache.base import AccessResult, CacheModel
from repro.cache.config import CacheConfig
from repro.cache.policies import ReplacementPolicy
from repro.util.rng import make_rng


class SetAssociativeCache(CacheModel):
    """Exact A-way set-associative cache."""

    def __init__(
        self,
        config: CacheConfig,
        seed: int | None = None,
        prefetch_next_line: bool = False,
    ) -> None:
        super().__init__(config)
        self._sets: list[list[int]] = [[] for _ in range(config.n_sets)]
        #: Line numbers currently dirty (written since fill).
        self._dirty: set[int] = set()
        self.prefetch_next_line = prefetch_next_line
        self._rng = make_rng(seed)
        # Pre-drawn random eviction indices for the RANDOM policy: drawing
        # one random number per eviction inside the hot loop would dominate
        # runtime, so a block is drawn at once and refilled as needed.
        self._rand_pool: list[int] = []

    def reset(self) -> None:
        self._sets = [[] for _ in range(self.config.n_sets)]
        self._dirty = set()

    def contents_line_count(self) -> int:
        return sum(len(s) for s in self._sets)

    def dirty_line_count(self) -> int:
        """Number of resident dirty lines (write-back bookkeeping)."""
        return len(self._dirty)

    def lines_in_set(self, set_idx: int) -> list[int]:
        """Line numbers resident in a set, oldest/least-recent first."""
        return list(self._sets[set_idx])

    def contains_addr(self, addr: int) -> bool:
        """Whether the line holding byte ``addr`` is resident."""
        line = addr >> self.config.line_bits
        return line in self._sets[line & self.config.set_mask]

    def _refill_rand_pool(self, n: int) -> None:
        self._rand_pool = self._rng.integers(
            0, self.config.assoc, size=max(n, 4096)
        ).tolist()

    def access(
        self,
        addrs: np.ndarray,
        miss_budget: int | None = None,
        tag: str = "app",
        writes: np.ndarray | None = None,
    ) -> AccessResult:
        n = len(addrs)
        if n == 0:
            return AccessResult(np.zeros(0, dtype=bool), 0)
        lines = (np.asarray(addrs, dtype=np.uint64) >> self.config.line_bits).tolist()
        write_flags = writes.tolist() if writes is not None else None
        set_mask = self.config.set_mask
        assoc = self.config.assoc
        sets = self._sets
        dirty = self._dirty
        policy = self.config.policy
        lru = policy is ReplacementPolicy.LRU
        random_policy = policy is ReplacementPolicy.RANDOM
        prefetch = self.prefetch_next_line
        if random_policy and len(self._rand_pool) < 2 * n:
            self._refill_rand_pool(2 * n)
        rand_pool = self._rand_pool

        miss_flags = bytearray(n)
        budget = miss_budget if miss_budget is not None else n + 1
        misses = 0
        writebacks = 0
        prefetches = 0
        consumed = n
        for i in range(n):
            line = lines[i]
            s = sets[line & set_mask]
            if line in s:
                if lru and s[-1] != line:
                    s.remove(line)
                    s.append(line)
                if write_flags is not None and write_flags[i]:
                    dirty.add(line)
            else:
                miss_flags[i] = 1
                misses += 1
                if len(s) >= assoc:
                    if random_policy:
                        victim = s.pop(rand_pool.pop())
                    else:
                        victim = s.pop(0)  # LRU and FIFO both evict the head
                    if victim in dirty:
                        dirty.discard(victim)
                        writebacks += 1
                s.append(line)
                if write_flags is not None and write_flags[i]:
                    dirty.add(line)  # write-allocate: filled dirty
                if prefetch:
                    nxt = line + 1
                    ps = sets[nxt & set_mask]
                    if nxt not in ps:
                        prefetches += 1
                        if len(ps) >= assoc:
                            victim = ps.pop(
                                rand_pool.pop() if random_policy else 0
                            )
                            if victim in dirty:
                                dirty.discard(victim)
                                writebacks += 1
                        ps.append(nxt)
                budget -= 1
                if budget == 0:
                    consumed = i + 1
                    break

        miss_mask = np.frombuffer(bytes(miss_flags[:consumed]), dtype=np.uint8).astype(
            bool
        )
        self.stats.record(tag, consumed, misses)
        self.stats.writebacks += writebacks
        self.stats.prefetches += prefetches
        return AccessResult(miss_mask, consumed)
