"""Exact set-associative cache with LRU/FIFO/random replacement.

This is the model for all experiments — the paper simulates "a
single-level set associative cache". The hit/miss engine itself lives in
:mod:`repro.cache.kernels` behind a pluggable *backend* selector:

* ``"reference"`` — the original list-of-lists kernel, oldest-first per
  set; its sequential loop defines the semantics;
* ``"array"`` — flat-array state with vectorised fast paths for
  streaming chunks, bit-identical to the reference kernel.

Beyond the paper's model, two optional realism features are provided for
the ablation benches:

* **write-back / write-allocate** — pass a ``writes`` mask to ``access``
  and dirty lines are tracked; evicting a dirty line counts a writeback
  (``stats.writebacks``). The miss classification is unchanged (fills
  happen on write misses either way), so the paper's results are
  unaffected unless a consumer inspects writeback counts.
* **next-line prefetch** — ``prefetch_next_line=True`` fills line ``L+1``
  whenever line ``L`` misses, modelling a simple hardware prefetcher;
  used to show the profiling techniques' rankings survive prefetching.

Both features are honoured identically by every backend.
"""

from __future__ import annotations

import numpy as np

from repro.cache.base import AccessResult, CacheModel
from repro.cache.config import CacheConfig
from repro.cache.kernels import kernel_for_config, resolve_backend


class SetAssociativeCache(CacheModel):
    """Exact A-way set-associative cache over a pluggable kernel."""

    def __init__(
        self,
        config: CacheConfig,
        seed: int | None = None,
        prefetch_next_line: bool = False,
        backend: str | None = None,
    ) -> None:
        super().__init__(config)
        self.prefetch_next_line = prefetch_next_line
        #: Kernel backend in use; ``backend`` overrides ``config.backend``.
        self.backend = resolve_backend(
            backend if backend is not None else config.backend
        )
        self._kernel = kernel_for_config(
            self.backend,
            config,
            seed=seed,
            prefetch_next_line=prefetch_next_line,
        )

    def reset(self) -> None:
        self._kernel.reset()

    def contents_line_count(self) -> int:
        return self._kernel.contents_line_count()

    def dirty_line_count(self) -> int:
        """Number of resident dirty lines (write-back bookkeeping)."""
        return self._kernel.dirty_line_count()

    def lines_in_set(self, set_idx: int) -> list[int]:
        """Line numbers resident in a set, oldest/least-recent first."""
        return self._kernel.lines_in_set(set_idx)

    def contains_addr(self, addr: int) -> bool:
        """Whether the line holding byte ``addr`` is resident."""
        return self._kernel.contains_line(addr >> self.config.line_bits)

    def access(
        self,
        addrs: np.ndarray,
        miss_budget: int | None = None,
        tag: str = "app",
        writes: np.ndarray | None = None,
    ) -> AccessResult:
        n = len(addrs)
        if n == 0:
            return AccessResult(np.zeros(0, dtype=bool), 0)
        res = self._kernel.access(addrs, miss_budget=miss_budget, writes=writes)
        self.stats.record(
            tag,
            res.consumed,
            res.misses,
            writebacks=res.writebacks,
            prefetches=res.prefetches,
        )
        return AccessResult(res.miss_mask, res.consumed)
