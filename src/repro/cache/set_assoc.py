"""Exact set-associative cache with LRU/FIFO/random replacement.

This is the model for all experiments — the paper simulates "a
single-level set associative cache". The hit/miss engine itself lives in
:mod:`repro.cache.kernels` behind a pluggable *backend* selector:

* ``"reference"`` — the original list-of-lists kernel, oldest-first per
  set; its sequential loop defines the semantics;
* ``"array"`` — flat-array state with vectorised fast paths for
  streaming chunks, bit-identical to the reference kernel.

Beyond the paper's model, two optional realism features are provided for
the ablation benches:

* **write-back / write-allocate** — pass a ``writes`` mask to ``access``
  and dirty lines are tracked; evicting a dirty line counts a writeback
  (``stats.writebacks``). The miss classification is unchanged (fills
  happen on write misses either way), so the paper's results are
  unaffected unless a consumer inspects writeback counts.
* **next-line prefetch** — ``prefetch_next_line=True`` fills line ``L+1``
  whenever line ``L`` misses, modelling a simple hardware prefetcher;
  used to show the profiling techniques' rankings survive prefetching.

Both features are honoured identically by every backend.
"""

from __future__ import annotations

import numpy as np

from repro import sanitize
from repro.cache.base import AccessResult
from repro.cache.components import CacheComponent, LineOutcome
from repro.cache.config import CacheConfig
from repro.cache.kernels import kernel_for_config, resolve_backend
from repro.cache.kernels.base import KernelResult
from repro.cache.policies import ReplacementPolicy
from repro.errors import SimulationError


class SetAssociativeCache(CacheComponent):
    """Exact A-way set-associative cache over a pluggable kernel."""

    def __init__(
        self,
        config: CacheConfig,
        seed: int | None = None,
        prefetch_next_line: bool = False,
        backend: str | None = None,
    ) -> None:
        super().__init__(config)
        self.prefetch_next_line = prefetch_next_line
        #: Kernel backend in use; ``backend`` overrides ``config.backend``.
        self.backend = resolve_backend(
            backend if backend is not None else config.backend
        )
        self._kernel = kernel_for_config(
            self.backend,
            config,
            seed=seed,
            prefetch_next_line=prefetch_next_line,
        )
        self._staged_misses = 0
        self._staged_writebacks = 0
        self._staged_prefetches = 0

    def reset(self) -> None:
        self._kernel.reset()

    def contents_line_count(self) -> int:
        return self._kernel.contents_line_count()

    def dirty_line_count(self) -> int:
        """Number of resident dirty lines (write-back bookkeeping)."""
        return self._kernel.dirty_line_count()

    def lines_in_set(self, set_idx: int) -> list[int]:
        """Line numbers resident in a set, oldest/least-recent first."""
        return self._kernel.lines_in_set(set_idx)

    def contains_addr(self, addr: int) -> bool:
        """Whether the line holding byte ``addr`` is resident."""
        return self._kernel.contains_line(addr >> self.config.line_bits)

    def access(
        self,
        addrs: np.ndarray,
        miss_budget: int | None = None,
        tag: str = "app",
        writes: np.ndarray | None = None,
    ) -> AccessResult:
        n = len(addrs)
        if n == 0:
            return AccessResult(np.zeros(0, dtype=bool), 0)
        res = self._chunk_access(addrs, miss_budget=miss_budget, writes=writes)
        self.commit_stage(tag, res.consumed)
        return AccessResult(res.miss_mask, res.consumed)

    # --------------------------------------------------- component protocol

    def begin_stage(self) -> None:
        self._staged_misses = 0
        self._staged_writebacks = 0
        self._staged_prefetches = 0

    def commit_stage(self, tag: str, accesses: int) -> None:
        self.stats.record(
            tag,
            accesses,
            self._staged_misses,
            writebacks=self._staged_writebacks,
            prefetches=self._staged_prefetches,
        )
        self.begin_stage()
        if sanitize.is_active():
            sanitize.check_component(self)

    def _chunk_access(
        self,
        addrs: np.ndarray,
        miss_budget: int | None = None,
        writes: np.ndarray | None = None,
    ) -> KernelResult:
        res = self._kernel.access(addrs, miss_budget=miss_budget, writes=writes)
        self._staged_misses += res.misses
        self._staged_writebacks += res.writebacks
        self._staged_prefetches += res.prefetches
        return res

    def access_line(self, line: int, write: bool = False) -> LineOutcome:
        """Scalar per-line path for decorator components.

        A direct transcription of the reference kernel's per-reference
        loop body, operating on its set state so victims are observable;
        decorated stacks run on the reference kernel only (``make_cache``
        forces the backend), hence the guard. The next-line prefetcher is
        not supported here — :class:`~repro.cache.components.StreamBuffers`
        is the composable replacement.
        """
        kernel = self._kernel
        sets = getattr(kernel, "_sets", None)
        if sets is None:
            raise SimulationError(
                "per-line component access requires the reference kernel "
                f"(have {kernel.name!r}); make_cache selects it for "
                "decorated stacks"
            )
        if self.prefetch_next_line:
            raise SimulationError(
                "prefetch_next_line cannot combine with decorator "
                "components; wrap the cache in StreamBuffers instead"
            )
        s = sets[line & kernel.set_mask]
        dirty = kernel._dirty
        if line in s:
            if kernel.policy is ReplacementPolicy.LRU and s[-1] != line:
                s.remove(line)
                s.append(line)
            if write:
                dirty.add(line)
            return LineOutcome(False, None)
        self._staged_misses += 1
        evicted: int | None = None
        if len(s) >= kernel.assoc:
            if kernel.policy is ReplacementPolicy.RANDOM:
                if not kernel._rand_pool:
                    # Scalar path refills on empty (chunk-size invariant
                    # by construction: draws depend only on evictions).
                    kernel._refill_rand_pool(4096)
                evicted = s.pop(kernel._rand_pool.pop())
            else:
                evicted = s.pop(0)  # LRU and FIFO both evict the head
            if evicted in dirty:
                dirty.discard(evicted)
                self._staged_writebacks += 1
        s.append(line)
        if write:
            dirty.add(line)
        return LineOutcome(True, evicted)

    def state_snapshot(self) -> object:
        return self._kernel.snapshot()

    def state_restore(self, state: object) -> None:
        self._kernel.restore(state)
