"""Cross-core contention ledgers for shared-level miss classification.

A multi-core session classifies every shared-LLC miss as *self* (the
core would miss even running alone — capacity/conflict within its own
footprint) or *contention* (induced by co-runners evicting its lines),
by replaying the core's post-L1 miss stream against a solo *shadow*
model of the shared level (same geometry, same replacement seed). The
:class:`ContentionLedger` is the running-total side of that split; the
per-object breakdown is built by
:class:`repro.sim.session.MultiCoreSession`, which attributes the
classified addresses through each core's object map.

Conservation identity (enforced by the runtime sanitizer at every
commit boundary): ``self_misses + contention_misses`` equals the port
ledger's total misses — classification never invents or drops a miss.
``rescued_misses`` counts the opposite sign (solo model missed, shared
level hit — a co-runner fetched the line for us); it is reported, not
part of the conservation sum.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ContentionLedger:
    """Running self/contention/rescued totals for one core's shared port."""

    self_misses: int = 0
    contention_misses: int = 0
    rescued_misses: int = 0
    #: Per-tag self/contention splits ("app" vs "instr"), merged key-wise
    #: like :class:`~repro.cache.base.CacheStats` tag dicts.
    self_by_tag: dict[str, int] = field(default_factory=dict)
    contention_by_tag: dict[str, int] = field(default_factory=dict)

    @property
    def classified_misses(self) -> int:
        """Total classified misses — must equal the port ledger's misses."""
        return self.self_misses + self.contention_misses

    def record(
        self, tag: str, self_misses: int, contention_misses: int, rescued: int
    ) -> None:
        """Fold one commit's staged classification into the totals."""
        self.self_misses += self_misses
        self.contention_misses += contention_misses
        self.rescued_misses += rescued
        self.self_by_tag[tag] = self.self_by_tag.get(tag, 0) + self_misses
        self.contention_by_tag[tag] = (
            self.contention_by_tag.get(tag, 0) + contention_misses
        )

    def snapshot(self) -> "ContentionLedger":
        """An independent copy of the current totals."""
        return ContentionLedger(
            self_misses=self.self_misses,
            contention_misses=self.contention_misses,
            rescued_misses=self.rescued_misses,
            self_by_tag=dict(self.self_by_tag),
            contention_by_tag=dict(self.contention_by_tag),
        )


@dataclass
class ContentionProfile:
    """Finalized per-core contention report surfaced on ``RunResult``.

    ``self_by_object`` / ``contention_by_object`` map object names (in
    the core's own namespace) to classified shared-level miss counts;
    addresses outside any mapped object (instrumentation references,
    stack slop) land in ``unattributed_self`` /
    ``unattributed_contention`` so the per-object rows plus the
    unattributed remainder always sum exactly to the ledger totals.
    """

    ledger: ContentionLedger
    self_by_object: dict[str, int] = field(default_factory=dict)
    contention_by_object: dict[str, int] = field(default_factory=dict)
    unattributed_self: int = 0
    unattributed_contention: int = 0

    @property
    def self_misses(self) -> int:
        return self.ledger.self_misses

    @property
    def contention_misses(self) -> int:
        return self.ledger.contention_misses

    @property
    def rescued_misses(self) -> int:
        return self.ledger.rescued_misses

    @property
    def total_shared_misses(self) -> int:
        return self.ledger.classified_misses

    @property
    def contention_share(self) -> float:
        """Fraction of this core's shared-level misses induced by co-runners."""
        total = self.total_shared_misses
        return self.contention_misses / total if total else 0.0

    def top_contended(self, n: int = 10) -> list[tuple[str, int]]:
        """Objects ranked by contention misses, largest first."""
        ranked = sorted(
            self.contention_by_object.items(), key=lambda kv: (-kv[1], kv[0])
        )
        return ranked[:n]
