"""Simulated process address-space layout.

The layout mimics a 64-bit Alpha/Tru64-style process, the platform the
paper's ATOM-based simulator ran on: a data segment for globals and
statics, a heap segment whose base is chosen so that the first large ijpeg
allocation lands at ``0x141020000`` (the paper's Table 1 names heap blocks
by their hex base address, and we reproduce those names exactly), a
downward-growing stack, and a separate segment for instrumentation-owned
data so perturbation can be separated from application behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AddressSpaceError
from repro.util.intervals import Interval


@dataclass(frozen=True)
class Segment:
    """A named address range ``[base, limit)``."""

    name: str
    base: int
    limit: int

    def __post_init__(self) -> None:
        if self.limit <= self.base:
            raise AddressSpaceError(
                f"segment {self.name!r}: limit {self.limit:#x} <= base {self.base:#x}"
            )

    @property
    def size(self) -> int:
        return self.limit - self.base

    @property
    def extent(self) -> Interval:
        return Interval(self.base, self.limit)

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.limit


#: Default segment bases (chosen to be far apart and cache-index diverse).
DATA_BASE = 0x1_2000_0000
DATA_LIMIT = 0x1_4000_0000
HEAP_BASE = 0x1_4100_0000
HEAP_LIMIT = 0x1_8000_0000
INSTR_BASE = 0x2_0000_0000
INSTR_LIMIT = 0x2_1000_0000
STACK_LIMIT = 0x7_FFFF_0000  # stack grows down from here
STACK_BASE = 0x7_F000_0000


#: Address-space stride separating per-core namespaces in multi-core
#: sessions. A power of two at least as large as the whole single-core
#: extent, so shifting every segment by ``core_id * CORE_STRIDE`` keeps
#: namespaces disjoint while leaving cache set indices (which depend on
#: low address bits only) unchanged — the property the 1-core
#: bit-identity contract and the disjoint-co-runner contention test
#: both rely on.
CORE_STRIDE = 0x8_0000_0000


class AddressSpace:
    """The full simulated address space with its standard segments."""

    def __init__(
        self,
        data: Segment | None = None,
        heap: Segment | None = None,
        stack: Segment | None = None,
        instr: Segment | None = None,
    ) -> None:
        self.data = data or Segment("data", DATA_BASE, DATA_LIMIT)
        self.heap = heap or Segment("heap", HEAP_BASE, HEAP_LIMIT)
        self.stack = stack or Segment("stack", STACK_BASE, STACK_LIMIT)
        self.instr = instr or Segment("instr", INSTR_BASE, INSTR_LIMIT)
        self._segments = [self.data, self.heap, self.instr, self.stack]
        seen: list[Segment] = []
        for seg in self._segments:
            for other in seen:
                if seg.base < other.limit and other.base < seg.limit:
                    raise AddressSpaceError(
                        f"segments {seg.name!r} and {other.name!r} overlap"
                    )
            seen.append(seg)

    @classmethod
    def with_offset(cls, offset: int) -> AddressSpace:
        """The standard layout shifted wholesale by ``offset`` bytes.

        ``offset == 0`` builds the default layout exactly. Multi-core
        sessions give core *i* the layout at ``i * CORE_STRIDE`` so
        co-runner objects never collide in one shared object map.
        """
        if offset < 0:
            raise AddressSpaceError(f"address offset must be >= 0, got {offset:#x}")
        if offset == 0:
            return cls()
        return cls(
            data=Segment("data", DATA_BASE + offset, DATA_LIMIT + offset),
            heap=Segment("heap", HEAP_BASE + offset, HEAP_LIMIT + offset),
            stack=Segment("stack", STACK_BASE + offset, STACK_LIMIT + offset),
            instr=Segment("instr", INSTR_BASE + offset, INSTR_LIMIT + offset),
        )

    @property
    def segments(self) -> list[Segment]:
        return list(self._segments)

    def segment_of(self, addr: int) -> Segment | None:
        """The segment containing ``addr``, or None for unmapped addresses."""
        for seg in self._segments:
            if seg.contains(addr):
                return seg
        return None

    def whole_extent(self) -> Interval:
        """The interval spanning every segment — the search's starting region."""
        return Interval(
            min(seg.base for seg in self._segments),
            max(seg.limit for seg in self._segments),
        )

    def application_extent(self) -> Interval:
        """Span of application-visible segments (data+heap+stack, not instr)."""
        app = [self.data, self.heap, self.stack]
        return Interval(min(s.base for s in app), max(s.limit for s in app))
