"""Stack-frame model with per-variable instance aggregation.

Section 5 of the paper ("Future Work") proposes extending the sampling
technique to variables on the stack "by aggregating data for all instances
of the same local variable". This module implements that extension: a
downward-growing stack of frames whose local variables are registered in
the object map as stack objects, with an aggregation key
``function:variable`` shared by every dynamic instance so the profiler can
merge counts across calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AddressSpaceError
from repro.memory.address_space import Segment
from repro.memory.object_map import ObjectMap
from repro.memory.objects import MemoryObject, ObjectKind


def aggregation_key(function: str, variable: str) -> str:
    """The name shared by every instance of a local variable."""
    return f"{function}:{variable}"


@dataclass
class StackFrame:
    """One activation record: its extent and local-variable objects."""

    function: str
    base: int          #: lowest address of the frame (frames grow down)
    limit: int         #: one past the highest address
    locals: list[MemoryObject] = field(default_factory=list)

    @property
    def size(self) -> int:
        return self.limit - self.base


class StackModel:
    """A downward-growing call stack allocating frames of local variables."""

    def __init__(self, segment: Segment, object_map: ObjectMap, align: int = 16) -> None:
        self.segment = segment
        self.object_map = object_map
        self.align = align
        self._top = segment.limit  # next frame ends here; grows downward
        self._frames: list[StackFrame] = []

    @property
    def depth(self) -> int:
        return len(self._frames)

    @property
    def frames(self) -> list[StackFrame]:
        return list(self._frames)

    def push_frame(self, function: str, local_vars: dict[str, int]) -> StackFrame:
        """Enter ``function``, allocating each local variable in the frame.

        ``local_vars`` maps variable name -> size in bytes; layout is
        declaration order, highest address first (matching typical
        descending stack conventions).
        """
        total = sum(
            (size + self.align - 1) & ~(self.align - 1) for size in local_vars.values()
        )
        new_top = self._top - total
        if new_top < self.segment.base:
            raise AddressSpaceError(
                f"stack overflow entering {function!r} ({total} bytes needed)"
            )
        frame = StackFrame(function=function, base=new_top, limit=self._top)
        cursor = self._top
        for name, size in local_vars.items():
            rounded = (size + self.align - 1) & ~(self.align - 1)
            cursor -= rounded
            obj = MemoryObject(
                name=aggregation_key(function, name),
                base=cursor,
                size=rounded,
                kind=ObjectKind.STACK,
            )
            frame.locals.append(obj)
            self.object_map.add_stack(obj)
        self._top = new_top
        self._frames.append(frame)
        return frame

    def pop_frame(self) -> StackFrame:
        """Leave the current function, retiring its local variables."""
        if not self._frames:
            raise AddressSpaceError("pop from empty stack")
        frame = self._frames.pop()
        for obj in frame.locals:
            self.object_map.remove_stack(obj)
        self._top = frame.limit
        return frame

    def current_frame(self) -> StackFrame | None:
        return self._frames[-1] if self._frames else None

    def addr_of(self, function: str, variable: str) -> int:
        """Base address of a local in the innermost live frame of ``function``."""
        key = aggregation_key(function, variable)
        for frame in reversed(self._frames):
            for obj in frame.locals:
                if obj.name == key:
                    return obj.base
        raise KeyError(key)
