"""Unified address -> memory-object map.

This is the structure section 2.2 of the paper describes: "information
about object extents kept in a sorted array for variables and a red-black
tree for heap blocks (since this data will change as allocations and
deallocations take place)". Stack-frame objects (future work, section 5)
are also tracked in a red-black tree since frames come and go.

Besides point lookup (used by the sampling handler on every overflow
interrupt), the map answers the region-boundary queries the n-way search
needs to split regions without cutting objects in half, and produces
vectorised :class:`AttributionSnapshot` tables that ground-truth
attribution uses to classify millions of miss addresses per call.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.datastructs.rbtree import RedBlackTree
from repro.datastructs.sorted_table import SortedTable
from repro.errors import ObjectMapError
from repro.memory.objects import MemoryObject, ObjectKind
from repro.util.intervals import Interval


class AttributionSnapshot:
    """A frozen, vectorised view of the object map for bulk attribution.

    ``starts``/``ends`` are sorted NumPy arrays of the live objects'
    extents; :meth:`attribute` maps an address array to indices into
    ``objects`` (or -1 where no object contains the address) with two
    vectorised operations.
    """

    def __init__(self, objects: list[MemoryObject]) -> None:
        ordered = sorted(objects, key=lambda o: o.base)
        for a, b in zip(ordered, ordered[1:]):
            if a.end > b.base:
                raise ObjectMapError(
                    f"objects overlap: {a} and {b}"
                )
        self.objects: list[MemoryObject] = ordered
        self.starts = np.array([o.base for o in ordered], dtype=np.uint64)
        self.ends = np.array([o.end for o in ordered], dtype=np.uint64)

    def attribute(self, addrs: np.ndarray) -> np.ndarray:
        """Object index for each address (-1 if unmapped). Vectorised."""
        if len(self.objects) == 0:
            return np.full(addrs.shape, -1, dtype=np.int64)
        idx = np.searchsorted(self.starts, addrs, side="right").astype(np.int64) - 1
        valid = idx >= 0
        inside = np.zeros(addrs.shape, dtype=bool)
        inside[valid] = addrs[valid] < self.ends[idx[valid]]
        idx[~inside] = -1
        return idx

    def count_by_object(self, addrs: np.ndarray) -> np.ndarray:
        """Number of addresses landing in each object (aligned to ``objects``)."""
        idx = self.attribute(addrs)
        hits = idx[idx >= 0]
        counts = np.bincount(hits, minlength=len(self.objects))
        return counts.astype(np.int64)


class ObjectMap:
    """Live map of every attributable memory object.

    Globals live in a frozen-after-load sorted array; heap blocks and stack
    variables live in red-black trees keyed by base address. Probe counts
    from the underlying structures feed the instrumentation cost model.
    """

    def __init__(self) -> None:
        self._globals = SortedTable()
        self._heap = RedBlackTree()
        self._stack = RedBlackTree()
        self._generation = 0
        self._snapshot: AttributionSnapshot | None = None
        self._snapshot_generation = -1
        #: Reporting namespace tag for multi-core runs ("c0", "c1", ...).
        #: Each core's workload occupies a disjoint shifted address space,
        #: so the maps never collide by address; the namespace keeps the
        #: co-runners' *names* distinct when reports merge across cores.
        #: Empty for single-core runs (names pass through unqualified).
        self.namespace: str = ""

    def qualify(self, name: str) -> str:
        """``name`` prefixed with this map's namespace (if any)."""
        return f"{self.namespace}:{name}" if self.namespace else name

    # ----------------------------------------------------------- registration

    def add_global(self, obj: MemoryObject) -> None:
        if obj.kind not in (ObjectKind.GLOBAL, ObjectKind.INSTR):
            raise ObjectMapError(f"add_global with kind {obj.kind}")
        self._globals.insert(obj.base, obj)
        self._generation += 1

    def add_globals(self, objs: list[MemoryObject]) -> None:
        for obj in objs:
            self.add_global(obj)

    def freeze_globals(self) -> None:
        """Lock the static-variable table (program load complete)."""
        self._globals.freeze()

    def observe_alloc(self, event: str, obj: MemoryObject) -> None:
        """Allocator observer hook: keeps the heap tree current."""
        if event == "alloc":
            self._heap.insert(obj.base, obj)
        elif event == "free":
            self._heap.delete(obj.base)
        else:  # pragma: no cover - defensive
            raise ObjectMapError(f"unknown allocator event {event!r}")
        self._generation += 1

    def add_stack(self, obj: MemoryObject) -> None:
        if obj.kind is not ObjectKind.STACK:
            raise ObjectMapError(f"add_stack with kind {obj.kind}")
        self._stack.insert(obj.base, obj)
        self._generation += 1

    def remove_stack(self, obj: MemoryObject) -> None:
        self._stack.delete(obj.base)
        self._generation += 1

    # ---------------------------------------------------------------- lookups

    @property
    def generation(self) -> int:
        """Monotone counter bumped on every membership change."""
        return self._generation

    def lookup(self, addr: int) -> MemoryObject | None:
        """The object containing ``addr``, or None.

        This is exactly the operation the sampling interrupt handler runs:
        probe the variable table, then the heap tree, then the stack tree.
        """
        for table in (self._globals, self._heap, self._stack):
            entry = table.floor(addr)
            if entry is not None:
                obj: MemoryObject = entry[1]
                if obj.contains(addr):
                    return obj
        return None

    def consume_probe_count(self) -> int:
        """Probes performed since last call (feeds the cost model)."""
        return (
            self._globals.reset_probe_count()
            + self._heap.reset_probe_count()
            + self._stack.reset_probe_count()
        )

    def adopt_probe_counts(self, other: "ObjectMap") -> None:
        """Copy pending probe accumulators from ``other``.

        Session restore rebuilds this map by replaying the workload's
        deterministic stream, which performs the same membership
        operations as the original run but *not* the same interleaving of
        handler lookups and ``consume_probe_count`` drains. The pending
        counts are real run state (the next handler is charged for them),
        so the restored map must adopt them from the snapshotted map for
        handler costs to stay bit-identical.
        """
        self._globals.probe_count = other._globals.probe_count
        self._heap.probe_count = other._heap.probe_count
        self._stack.probe_count = other._stack.probe_count

    def all_objects(self) -> list[MemoryObject]:
        """Every live object in address order."""
        objs = (
            list(self._globals.values())
            + list(self._heap.values())
            + list(self._stack.values())
        )
        return sorted(objs, key=lambda o: o.base)

    def __len__(self) -> int:
        return len(self._globals) + len(self._heap) + len(self._stack)

    def objects_overlapping(self, iv: Interval) -> list[MemoryObject]:
        """Objects intersecting ``[iv.lo, iv.hi)`` in address order."""
        out: list[MemoryObject] = []
        for table in (self._globals, self._heap, self._stack):
            entry = table.floor(iv.lo)
            if entry is not None:
                out.append(entry[1])
            out.extend(obj for _, obj in table.range_items(max(iv.lo, 0), iv.hi))
        # Dedup (the floor entry may also appear in range_items when its
        # base equals iv.lo) and keep only genuine overlaps, in address order.
        seen: set[int] = set()
        unique: list[MemoryObject] = []
        for obj in sorted(out, key=lambda o: o.base):
            if obj.uid not in seen and obj.base < iv.hi and obj.end > iv.lo:
                seen.add(obj.uid)
                unique.append(obj)
        return unique

    def boundaries_in(self, iv: Interval) -> list[int]:
        """Object start/end addresses strictly inside ``iv`` (sorted, unique).

        These are the only legal split points for the n-way search: cutting
        anywhere else could leave an object spanning two regions, the
        failure mode section 2.2 warns about.
        """
        bounds: set[int] = set()
        for obj in self.objects_overlapping(iv):
            if iv.lo < obj.base < iv.hi:
                bounds.add(obj.base)
            if iv.lo < obj.end < iv.hi:
                bounds.add(obj.end)
        return sorted(bounds)

    # ---------------------------------------------------------------- snapshot

    def snapshot(self) -> AttributionSnapshot:
        """A vectorised view of the current objects (cached per generation)."""
        if self._snapshot is None or self._snapshot_generation != self._generation:
            self._snapshot = AttributionSnapshot(self.all_objects())
            self._snapshot_generation = self._generation
        return self._snapshot

    def iter_tables(self) -> Iterator[tuple[str, object]]:  # pragma: no cover
        yield ("globals", self._globals)
        yield ("heap", self._heap)
        yield ("stack", self._stack)
