"""Symbol table: lays out global/static variables in the data segment.

Models the "data from symbol tables and debug information" the paper uses
to map addresses to global and static variables (section 2.1). Workloads
declare their arrays here before running; declaration order and alignment
determine the layout, which matters both for cache-set conflicts and for
the search's region-splitting behaviour.
"""

from __future__ import annotations

from repro.errors import AddressSpaceError, ObjectMapError
from repro.memory.address_space import Segment
from repro.memory.objects import MemoryObject, ObjectKind


class SymbolTable:
    """Sequential (bump) layout of named variables within a data segment."""

    def __init__(self, segment: Segment, default_align: int = 64) -> None:
        if default_align <= 0 or default_align & (default_align - 1):
            raise ValueError("alignment must be a positive power of two")
        self.segment = segment
        self.default_align = default_align
        self._cursor = segment.base
        self._by_name: dict[str, MemoryObject] = {}
        self._objects: list[MemoryObject] = []

    def declare(
        self,
        name: str,
        size: int,
        align: int | None = None,
        pad_after: int = 0,
    ) -> MemoryObject:
        """Declare a variable of ``size`` bytes; returns its memory object.

        ``pad_after`` inserts an unnamed gap after the variable, used by
        workloads to control which variables share cache sets and to give
        the search unallocated space to discard.
        """
        if name in self._by_name:
            raise ObjectMapError(f"variable {name!r} already declared")
        if size <= 0:
            raise ValueError(f"variable {name!r} has non-positive size")
        align = align or self.default_align
        if align <= 0 or align & (align - 1):
            raise ValueError("alignment must be a positive power of two")
        base = (self._cursor + align - 1) & ~(align - 1)
        if base + size > self.segment.limit:
            raise AddressSpaceError(
                f"data segment overflow declaring {name!r} "
                f"({size} bytes at {base:#x}, limit {self.segment.limit:#x})"
            )
        obj = MemoryObject(name=name, base=base, size=size, kind=ObjectKind.GLOBAL)
        self._by_name[name] = obj
        self._objects.append(obj)
        self._cursor = base + size + pad_after
        return obj

    def declare_many(self, spec: dict[str, int]) -> dict[str, MemoryObject]:
        """Declare several variables in iteration order; returns name -> object."""
        return {name: self.declare(name, size) for name, size in spec.items()}

    def __getitem__(self, name: str) -> MemoryObject:
        return self._by_name[name]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self._objects)

    @property
    def objects(self) -> list[MemoryObject]:
        """All declared variables in layout (address) order."""
        return list(self._objects)

    @property
    def bytes_used(self) -> int:
        return self._cursor - self.segment.base
