"""Simulated heap allocator with instrumented allocation tracking.

The paper tracks dynamically allocated objects "by instrumenting memory
allocation library functions"; this allocator is both the library function
(a first-fit free-list malloc/free) and the instrumentation hook (an
observer callback fires on every allocation and free so the object map
stays current). Heap blocks are named by the hex of their base address —
the same convention Table 1 of the paper uses (``0x141020000``).
"""

from __future__ import annotations

from typing import Callable

from repro.errors import AllocationError, ObjectMapError
from repro.memory.address_space import Segment
from repro.memory.objects import MemoryObject, ObjectKind

#: Callback signature: (event, object) where event is "alloc" or "free".
AllocObserver = Callable[[str, MemoryObject], None]


class HeapAllocator:
    """First-fit free-list allocator over a heap segment.

    Free blocks are kept as a sorted list of ``[base, limit)`` holes;
    allocation takes the first hole large enough (after alignment),
    free coalesces with adjacent holes. First-fit keeps addresses stable
    and low, which both mimics real allocators and keeps the paper's
    hex block names deterministic.
    """

    def __init__(self, segment: Segment, align: int = 64) -> None:
        if align <= 0 or align & (align - 1):
            raise ValueError("alignment must be a positive power of two")
        self.segment = segment
        self.align = align
        self._holes: list[list[int]] = [[segment.base, segment.limit]]
        self._live: dict[int, MemoryObject] = {}
        self._observers: list[AllocObserver] = []
        self.total_allocated = 0
        self.alloc_count = 0
        self.free_count = 0

    # ------------------------------------------------------------- observers

    def add_observer(self, observer: AllocObserver) -> None:
        """Register an instrumentation hook fired on every alloc/free."""
        self._observers.append(observer)

    def _notify(self, event: str, obj: MemoryObject) -> None:
        for observer in self._observers:
            observer(event, obj)

    # ------------------------------------------------------------ allocation

    def malloc(
        self,
        size: int,
        name: str | None = None,
        alloc_site: str | None = None,
    ) -> MemoryObject:
        """Allocate ``size`` bytes; returns the new block's memory object.

        ``name`` defaults to the hex base address; ``alloc_site`` tags the
        allocating call site (used by the future-work aggregation of
        related heap blocks).
        """
        if size <= 0:
            raise AllocationError(f"malloc of non-positive size {size}")
        rounded = (size + self.align - 1) & ~(self.align - 1)
        for idx, hole in enumerate(self._holes):
            base, limit = hole
            aligned = (base + self.align - 1) & ~(self.align - 1)
            if aligned + rounded <= limit:
                # Shrink or split the hole.
                if aligned > base:
                    hole[1] = aligned
                    self._holes.insert(idx + 1, [aligned + rounded, limit])
                else:
                    hole[0] = aligned + rounded
                    if hole[0] >= hole[1]:
                        self._holes.pop(idx)
                obj = MemoryObject(
                    name=name or f"{aligned:#x}",
                    base=aligned,
                    size=rounded,
                    kind=ObjectKind.HEAP,
                    alloc_site=alloc_site,
                )
                self._live[aligned] = obj
                self.total_allocated += rounded
                self.alloc_count += 1
                self._notify("alloc", obj)
                return obj
        raise AllocationError(
            f"heap exhausted: cannot allocate {size} bytes "
            f"({self.bytes_free} free, fragmented into {len(self._holes)} holes)"
        )

    def free(self, target: MemoryObject | int) -> None:
        """Release a block (by object or base address)."""
        base = target.base if isinstance(target, MemoryObject) else int(target)
        obj = self._live.pop(base, None)
        if obj is None:
            raise ObjectMapError(f"free of unallocated address {base:#x}")
        self.total_allocated -= obj.size
        self.free_count += 1
        self._insert_hole(obj.base, obj.end)
        self._notify("free", obj)

    def _insert_hole(self, base: int, limit: int) -> None:
        """Insert ``[base, limit)`` into the hole list, coalescing neighbours."""
        idx = 0
        while idx < len(self._holes) and self._holes[idx][0] < base:
            idx += 1
        self._holes.insert(idx, [base, limit])
        # Coalesce with successor then predecessor.
        if idx + 1 < len(self._holes) and self._holes[idx][1] >= self._holes[idx + 1][0]:
            self._holes[idx][1] = max(self._holes[idx][1], self._holes[idx + 1][1])
            self._holes.pop(idx + 1)
        if idx > 0 and self._holes[idx - 1][1] >= self._holes[idx][0]:
            self._holes[idx - 1][1] = max(self._holes[idx - 1][1], self._holes[idx][1])
            self._holes.pop(idx)

    # --------------------------------------------------------------- queries

    def block_at(self, base: int) -> MemoryObject | None:
        """The live block starting exactly at ``base``, if any."""
        return self._live.get(base)

    @property
    def live_blocks(self) -> list[MemoryObject]:
        """All live blocks in address order."""
        return [self._live[b] for b in sorted(self._live)]

    @property
    def live_count(self) -> int:
        return len(self._live)

    @property
    def bytes_free(self) -> int:
        return sum(limit - base for base, limit in self._holes)

    def check_invariants(self) -> None:
        """Assert hole/blocks consistency (property tests)."""
        prev_limit = None
        for base, limit in self._holes:
            assert base < limit, "empty hole"
            assert self.segment.base <= base and limit <= self.segment.limit
            if prev_limit is not None:
                assert base > prev_limit, "holes out of order or not coalesced"
            prev_limit = limit
        covered = sum(l - b for b, l in self._holes) + sum(
            o.size for o in self._live.values()
        )
        assert covered == self.segment.size, "holes + blocks must tile the segment"
        blocks = sorted(self._live.values(), key=lambda o: o.base)
        for a, b in zip(blocks, blocks[1:]):
            assert a.end <= b.base, "live blocks overlap"
