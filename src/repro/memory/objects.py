"""Memory objects: the unit the profiling techniques attribute misses to.

"Memory object" in the paper means "each variable and dynamically allocated
block of memory"; this module defines that value type. Objects are
immutable — the allocator creates and retires them, it never mutates them —
so they can safely be shared between the object map, ground-truth
attribution snapshots, search regions and reports.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from itertools import count

from repro.util.intervals import Interval

_next_uid = count(1)


class ObjectKind(enum.Enum):
    """Provenance of a memory object."""

    GLOBAL = "global"   #: global/static variable, from the symbol table
    HEAP = "heap"       #: dynamically allocated block
    STACK = "stack"     #: local variable instance in a stack frame
    INSTR = "instr"     #: instrumentation-owned data (counted separately)


@dataclass(frozen=True)
class MemoryObject:
    """An immutable ``[base, base+size)`` extent with a source-level name.

    ``uid`` is unique across the process and orders objects by creation
    time; heap blocks reuse addresses after free, so ``base`` alone does not
    identify an object over a whole run.
    """

    name: str
    base: int
    size: int
    kind: ObjectKind = ObjectKind.GLOBAL
    alloc_site: str | None = None
    uid: int = field(default_factory=lambda: next(_next_uid))

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"object {self.name!r} has non-positive size {self.size}")
        if self.base < 0:
            raise ValueError(f"object {self.name!r} has negative base")

    @property
    def end(self) -> int:
        """One past the last byte (half-open upper bound)."""
        return self.base + self.size

    @property
    def extent(self) -> Interval:
        return Interval(self.base, self.end)

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}[{self.base:#x}+{self.size:#x}]"
