"""Simulated address space: segments, memory objects, allocator, object map.

This package is the substrate that lets the profiling techniques translate
cache-miss *addresses* into *program objects* — global/static variables
located via "symbol tables and debug information" (modelled by
:class:`SymbolTable`) and dynamically allocated blocks tracked by
"instrumenting memory allocation library functions" (modelled by
:class:`HeapAllocator`), exactly as described in section 2.1 of the paper.
"""

from repro.memory.address_space import AddressSpace, Segment
from repro.memory.objects import MemoryObject, ObjectKind
from repro.memory.symbol_table import SymbolTable
from repro.memory.allocator import HeapAllocator
from repro.memory.object_map import ObjectMap, AttributionSnapshot
from repro.memory.stack import StackModel, StackFrame

__all__ = [
    "AddressSpace",
    "Segment",
    "MemoryObject",
    "ObjectKind",
    "SymbolTable",
    "HeapAllocator",
    "ObjectMap",
    "AttributionSnapshot",
    "StackModel",
    "StackFrame",
]
