"""Runtime sanitizer: the dynamic twin of reprolint's invariants.

reprolint proves invariants *statically* where it can; this package
checks the same invariants *dynamically* where it can't. Set
``REPRO_SANITIZE=1`` and the simulation stack verifies, as it runs:

* **Ledger conservation** (:mod:`repro.sanitize.ledger`) — after every
  ``commit_stage``, each :class:`~repro.cache.base.CacheStats` in the
  component stack satisfies the RPL401 ledger model (totals equal the
  per-tag sums, misses bounded by accesses) and the decorator/pipeline
  *chain identities* hold (a mechanism's probes equal its inner
  component's misses, rescued misses balance, pipeline levels agree on
  access totals).
* **RNG draw accounting** (:mod:`repro.sanitize.rng`) — after a session
  restore, every kernel's RNG must be exactly the state reached by
  replaying ``_rand_draws`` pool draws from its seed; a restore that
  silently rewound or double-applied the eviction stream fails
  immediately instead of diverging bits thousands of chunks later.
* **Snapshot canary** (:mod:`repro.sanitize.snapshot`) — every
  :class:`~repro.sim.session.SessionSnapshot` is pickle-roundtripped
  and field-compared before a checkpoint is trusted.

The gate is one module-level flag read from the environment at import
time (this package is deliberately *outside* the RPL703 result scope:
the sanitizer changes failure behaviour, never results). Overhead when
inactive is a single attribute test per commit; when active, checks are
per-chunk — never per-reference — keeping the slowdown within the 2×
budget CI enforces on the quick Table 1 cell.
"""

from __future__ import annotations

import os
from collections import Counter

__all__ = [
    "SanitizerError",
    "is_active",
    "activate",
    "deactivate",
    "checks_run",
    "reset_checks",
    "count_check",
    "check_component",
    "verify_kernel_rng",
    "verify_cache_rng",
    "snapshot_canary",
]


class SanitizerError(AssertionError):
    """An invariant the sanitizer watches was violated at runtime.

    Subclasses :class:`AssertionError`: a sanitizer failure means the
    simulation's internal bookkeeping is inconsistent — results built on
    it are not trustworthy and the run must die loudly.
    """


_ACTIVE = os.environ.get("REPRO_SANITIZE", "") == "1"

#: How many times each named check ran (for tests and overhead reports).
_CHECKS: Counter[str] = Counter()


def is_active() -> bool:
    """Whether sanitizer checks are enabled for this process."""
    return _ACTIVE


def activate() -> None:
    """Enable checks (tests; production uses ``REPRO_SANITIZE=1``)."""
    global _ACTIVE
    _ACTIVE = True


def deactivate() -> None:
    global _ACTIVE
    _ACTIVE = False


def count_check(name: str) -> None:
    """Record that the named check ran once."""
    _CHECKS[name] += 1


def checks_run() -> dict[str, int]:
    """Check name -> times run since the last reset."""
    return dict(_CHECKS)


def reset_checks() -> None:
    _CHECKS.clear()


from repro.sanitize.ledger import check_component  # noqa: E402
from repro.sanitize.rng import verify_cache_rng, verify_kernel_rng  # noqa: E402
from repro.sanitize.snapshot import snapshot_canary  # noqa: E402
