"""RNG draw-count accounting across snapshot/restore.

Every cache kernel draws RANDOM-eviction indices from one seeded PCG64
generator, through one call shape: ``integers(0, assoc, size=k)``.
PCG64 advances identically whether a total of N draws is requested in
one call or split across many, so a kernel's generator state is a pure
function of ``(seed, total draws)`` — the kernel counts the draws
(``SetKernel._rand_draws``) precisely so this module can *replay* them:

    make_rng(seed).integers(0, assoc, size=draws)  ->  same state?

If a snapshot/restore (or a backend transplant) rewound, double-applied
or cross-wired an eviction stream, the replayed state differs and the
run dies at the restore boundary — instead of producing bit-divergent
results thousands of chunks later with nothing pointing at the cause.
"""

from __future__ import annotations

from repro.sanitize import SanitizerError, count_check
from repro.util.rng import make_rng

__all__ = ["verify_kernel_rng", "verify_cache_rng"]


def _states_equal(a: object, b: object) -> bool:
    # bit_generator.state is a plain nested dict of ints/strs for PCG64.
    return a == b


def verify_kernel_rng(kernel: object, label: str = "kernel") -> None:
    """Replay ``kernel``'s draw count from its seed and compare states."""
    inner = getattr(kernel, "_inner", None)
    if inner is not None:  # auto kernel: the inner backend draws
        verify_kernel_rng(inner, f"{label}.{getattr(inner, 'name', '?')}")
        return
    draws = getattr(kernel, "_rand_draws", None)
    if draws is None or not hasattr(kernel, "_seed"):
        return  # not a draw-accounted kernel
    count_check("rng.replay")
    expected = make_rng(kernel._seed)
    if draws:
        expected.integers(0, kernel.assoc, size=draws)
    if not _states_equal(
        expected.bit_generator.state, kernel._rng.bit_generator.state
    ):
        raise SanitizerError(
            f"[{label}] RNG state does not match a replay of "
            f"{draws} draws from seed {kernel._seed!r}: the eviction "
            "stream was rewound, double-applied or cross-wired across "
            "snapshot/restore"
        )


def verify_cache_rng(cache: object, label: str = "cache") -> None:
    """Walk a cache/component stack and verify every kernel found."""
    kernel = getattr(cache, "_kernel", None)
    if kernel is not None:
        verify_kernel_rng(kernel, f"{label}.kernel")
    inner = getattr(cache, "inner", None)
    if inner is not None:
        verify_cache_rng(inner, f"{label}.inner")
    levels = getattr(cache, "levels", None)
    if levels is not None:
        for i, level in enumerate(levels):
            verify_cache_rng(level, f"{label}.l{i + 1}")
    # Shared-level ports (multi-core): verify the physical LLC behind the
    # port and the port's private shadow model. The leaf is shared by
    # every core's port, so a multi-core restore verifies it once per
    # core — harmless, the check is a pure replay-and-compare.
    shared = getattr(cache, "shared_level", None)
    if shared is not None:
        verify_cache_rng(shared.leaf, f"{label}.shared")
    shadow = getattr(cache, "shadow", None)
    if shadow is not None:
        verify_cache_rng(shadow, f"{label}.shadow")
