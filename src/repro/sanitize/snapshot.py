"""Pickle-roundtrip canary on session snapshots.

A checkpoint is only as good as what ``pickle`` preserves: an object
whose ``__reduce__`` silently drops state produces a snapshot that
*loads* fine and then resumes a subtly different run. Before a snapshot
is trusted (returned to the caller / written to disk), the canary
roundtrips it once more and compares what must survive:

* the scalar resume cursor (version, workload name, block cursor,
  cycle carry, refs budget, chunk size);
* the run statistics scalars;
* the cache: ledger equality (``CacheStats`` compares field-wise) and
  state cardinalities (resident and dirty line counts).

The comparisons are duck-typed — this module must not import
:mod:`repro.sim` (the session calls *us* from its snapshot path).
"""

from __future__ import annotations

import pickle

from repro.sanitize import SanitizerError, count_check

__all__ = ["snapshot_canary"]

#: SessionSnapshot fields whose values are plain scalars (== is exact).
_SCALAR_FIELDS = (
    "version",
    "workload_name",
    "blocks_fetched",
    "block_pos",
    "cycle_carry",
    "refs_left",
    "chunk_size",
)

_STATS_SCALARS = (
    "app_refs",
    "app_misses",
    "instr_refs",
    "instr_misses",
    "app_cycles",
    "instr_cycles",
)


def _cache_fingerprint(cache: object) -> tuple[object, ...]:
    return (
        cache.stats,
        cache.contents_line_count(),
        getattr(cache, "dirty_line_count", lambda: None)(),
    )


def snapshot_canary(snapshot: object) -> None:
    """Roundtrip ``snapshot`` through pickle and verify it survived."""
    count_check("snapshot.canary")
    try:
        clone = pickle.loads(
            pickle.dumps(snapshot, protocol=pickle.HIGHEST_PROTOCOL)
        )
    except Exception as exc:
        raise SanitizerError(
            f"snapshot does not survive a pickle roundtrip: {exc!r}"
        ) from exc
    for name in _SCALAR_FIELDS:
        before = getattr(snapshot, name)
        after = getattr(clone, name)
        if before != after:
            raise SanitizerError(
                f"snapshot field {name!r} changed across a pickle "
                f"roundtrip: {before!r} -> {after!r}"
            )
    for name in _STATS_SCALARS:
        before = getattr(snapshot.stats, name, None)
        after = getattr(clone.stats, name, None)
        if before != after:
            raise SanitizerError(
                f"snapshot stats.{name} changed across a pickle "
                f"roundtrip: {before!r} -> {after!r}"
            )
    if _cache_fingerprint(clone.cache) != _cache_fingerprint(snapshot.cache):
        raise SanitizerError(
            "snapshot cache state changed across a pickle roundtrip: "
            f"{_cache_fingerprint(snapshot.cache)} -> "
            f"{_cache_fingerprint(clone.cache)}"
        )
