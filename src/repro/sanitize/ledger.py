"""CacheStats conservation and chain-identity checks.

The ledger model (DESIGN.md section 7, RPL401): all counter movement
goes through ``CacheStats.record``, so at any commit boundary the totals
must be *conserved* — aggregate counters equal their per-tag
decompositions — and, across a decorated component stack, the mechanism
ledgers must *chain*: every inner-component miss is exactly one probe of
the decorator that wraps it, every rescued miss is a hit in that
decorator's ledger, and pipeline levels record the same access totals.

These identities are checked on **running totals** at every
``commit_stage``, so a drifting ledger is caught at the first commit
after the drift, with the component stack still in the failing state.

The checks are duck-typed on purpose: this module must not import
:mod:`repro.cache` (the cache layer imports *us* at its commit hooks),
and the structural attributes (``inner``/``kind``, ``levels``) are the
decorator/pipeline contract being verified.
"""

from __future__ import annotations

from repro.sanitize import SanitizerError, count_check

__all__ = ["check_stats", "check_component"]


def check_stats(stats: object, label: str = "cache") -> None:
    """Conservation identities on one :class:`CacheStats` ledger."""
    count_check("ledger.conservation")
    accesses = stats.accesses
    misses = stats.misses
    tag_accesses = sum(stats.accesses_by_tag.values())
    tag_misses = sum(stats.misses_by_tag.values())
    if accesses != tag_accesses:
        raise SanitizerError(
            f"[{label}] accesses total {accesses} != per-tag sum "
            f"{tag_accesses} ({dict(stats.accesses_by_tag)})"
        )
    if misses != tag_misses:
        raise SanitizerError(
            f"[{label}] misses total {misses} != per-tag sum "
            f"{tag_misses} ({dict(stats.misses_by_tag)})"
        )
    if not 0 <= misses <= accesses:
        raise SanitizerError(
            f"[{label}] misses {misses} outside [0, accesses={accesses}]"
        )
    if stats.writebacks < 0 or stats.prefetches < 0:
        raise SanitizerError(
            f"[{label}] negative writebacks ({stats.writebacks}) or "
            f"prefetches ({stats.prefetches})"
        )


def _check_decorator(component: object, label: str) -> None:
    """Chain identities between a mechanism decorator and its inner."""
    count_check("ledger.chain")
    kind = component.kind
    outer = component.stats
    inner = component.inner.stats
    mech = outer.mechanism
    probes = mech.get(f"{kind}_probes", 0)
    hits = mech.get(f"{kind}_hits", 0)
    if outer.accesses != inner.accesses:
        raise SanitizerError(
            f"[{label}] decorator saw {outer.accesses} accesses but its "
            f"inner component recorded {inner.accesses}"
        )
    if probes != inner.misses:
        raise SanitizerError(
            f"[{label}] {kind}_probes {probes} != inner misses "
            f"{inner.misses}: every inner miss must probe the "
            "mechanism exactly once"
        )
    if outer.misses != probes - hits:
        raise SanitizerError(
            f"[{label}] post-mechanism misses {outer.misses} != probes "
            f"{probes} - hits {hits}: rescued misses don't balance"
        )
    if kind == "sb" and hits > mech.get("sb_prefetches", 0):
        raise SanitizerError(
            f"[{label}] sb_hits {hits} exceed sb_prefetches "
            f"{mech.get('sb_prefetches', 0)}: a stream buffer rescued a "
            "line it never prefetched"
        )


def _check_pipeline(component: object, label: str) -> None:
    """Level identities of a filtering pipeline."""
    count_check("ledger.pipeline")
    levels = component.levels
    if component.stats is not levels[-1].stats:
        raise SanitizerError(
            f"[{label}] pipeline stats is not the last level's ledger "
            "object: the shared-ledger contract broke"
        )
    first = levels[0].stats.accesses
    prev_misses = None
    for i, level in enumerate(levels):
        if level.stats.accesses != first:
            raise SanitizerError(
                f"[{label}] level {i + 1} recorded "
                f"{level.stats.accesses} accesses, level 1 recorded "
                f"{first}: levels must agree per consumed reference"
            )
        if prev_misses is not None and level.stats.misses > prev_misses:
            raise SanitizerError(
                f"[{label}] level {i + 1} misses {level.stats.misses} "
                f"exceed level {i}'s {prev_misses}: a filtering level "
                "cannot create references"
            )
        prev_misses = level.stats.misses


def _check_shared_port(component: object, label: str) -> None:
    """Multi-writer identities of a shared-level port.

    Two families: (a) the *contention conservation* identity — every
    port miss is classified exactly one way, so self + contention equals
    the port ledger's misses, in total and per tag; (b) the *aggregate
    sum* identity — the shared leaf's ledger equals the element-wise sum
    of every port's ledger, per counter and per tag, because cores
    interleave sequentially and each leaf commit belongs to exactly one
    port.
    """
    count_check("ledger.shared_port")
    port_stats = component.stats
    contention = component.contention
    if contention.classified_misses != port_stats.misses:
        raise SanitizerError(
            f"[{label}] classified misses (self {contention.self_misses} + "
            f"contention {contention.contention_misses}) != port misses "
            f"{port_stats.misses}: classification dropped or invented a miss"
        )
    for tag, misses in port_stats.misses_by_tag.items():
        classified = contention.self_by_tag.get(
            tag, 0
        ) + contention.contention_by_tag.get(tag, 0)
        if classified != misses:
            raise SanitizerError(
                f"[{label}] tag {tag!r}: classified {classified} != port "
                f"misses {misses}"
            )
    shared = component.shared_level
    aggregate = shared.stats
    ports = shared.ports
    for counter in ("accesses", "misses", "writebacks", "prefetches"):
        total = sum(getattr(p.stats, counter) for p in ports)
        value = getattr(aggregate, counter)
        if value != total:
            raise SanitizerError(
                f"[{label}] aggregate {counter} {value} != sum over "
                f"{len(ports)} port ledgers {total}"
            )
    for attr in ("accesses_by_tag", "misses_by_tag"):
        agg_dict = getattr(aggregate, attr)
        tags = set(agg_dict)
        for p in ports:
            tags.update(getattr(p.stats, attr))
        for tag in tags:
            total = sum(getattr(p.stats, attr).get(tag, 0) for p in ports)
            if agg_dict.get(tag, 0) != total:
                raise SanitizerError(
                    f"[{label}] aggregate {attr}[{tag!r}] "
                    f"{agg_dict.get(tag, 0)} != port sum {total}"
                )


def check_component(component: object, label: str = "cache") -> None:
    """Verify one component and everything it wraps or contains."""
    check_stats(component.stats, label)
    inner = getattr(component, "inner", None)
    if inner is not None and hasattr(component, "kind"):
        _check_decorator(component, f"{label}.{component.kind}")
        check_component(inner, f"{label}.inner")
        return
    levels = getattr(component, "levels", None)
    if levels is not None:
        _check_pipeline(component, label)
        for i, level in enumerate(levels):
            check_component(level, f"{label}.l{i + 1}")
        return
    if getattr(component, "shared_level", None) is not None:
        _check_shared_port(component, label)
