"""LRU reuse-distance analysis and miss-ratio curves.

The *reuse distance* (stack distance) of a reference is the number of
distinct cache lines touched since the previous reference to the same
line; a fully-associative LRU cache of C lines misses exactly the
references whose distance is >= C (plus cold first-touches). The
distance histogram therefore predicts the miss ratio of *every* cache
size at once — the classic answer to "would a bigger cache fix this?",
complementing the paper's "which object is it?".

Implementation: Olken's algorithm — a hash of each line's last access
time plus a Fenwick (binary-indexed) tree counting still-live access
times — giving O(N log N) overall. The per-reference loop is sequential
by nature (like the LRU cache itself); NumPy handles the address
pre-decomposition and all histogram post-processing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Distance value assigned to cold (first-touch) references.
COLD = -1


class _Fenwick:
    """Fenwick tree over access timestamps (1-based internal indexing)."""

    def __init__(self, n: int) -> None:
        self.size = n
        self.tree = [0] * (n + 1)

    def add(self, idx: int, delta: int) -> None:
        idx += 1
        while idx <= self.size:
            self.tree[idx] += delta
            idx += idx & (-idx)

    def prefix_sum(self, idx: int) -> int:
        """Sum of entries [0, idx]."""
        idx += 1
        total = 0
        while idx > 0:
            total += self.tree[idx]
            idx -= idx & (-idx)
        return total

    def range_sum(self, lo: int, hi: int) -> int:
        """Sum of entries [lo, hi]."""
        if hi < lo:
            return 0
        return self.prefix_sum(hi) - (self.prefix_sum(lo - 1) if lo > 0 else 0)


def reuse_distances(addrs: np.ndarray, line_size: int = 64) -> np.ndarray:
    """Per-reference LRU reuse distances in cache lines.

    Returns an int64 array aligned with ``addrs``: the number of distinct
    *other* lines touched since the line's previous access, or
    :data:`COLD` (-1) for first touches.
    """
    lines = (np.asarray(addrs, dtype=np.uint64) >> np.uint64(
        int(line_size).bit_length() - 1
    )).tolist()
    n = len(lines)
    out = np.empty(n, dtype=np.int64)
    tree = _Fenwick(n)
    last_seen: dict[int, int] = {}
    for t, line in enumerate(lines):
        prev = last_seen.get(line)
        if prev is None:
            out[t] = COLD
        else:
            # Distinct lines whose most recent access lies in (prev, t).
            out[t] = tree.range_sum(prev + 1, t - 1)
            tree.add(prev, -1)  # its live timestamp moves to t
        tree.add(t, 1)
        last_seen[line] = t
    return out


@dataclass
class ReuseProfile:
    """Summary of a stream's reuse behaviour."""

    distances: np.ndarray            #: per-reference distances (COLD = -1)
    line_size: int = 64
    #: Histogram over finite distances (index = distance, clipped).
    histogram: np.ndarray = field(init=False)
    cold_misses: int = field(init=False)

    def __post_init__(self) -> None:
        finite = self.distances[self.distances >= 0]
        self.cold_misses = int((self.distances == COLD).sum())
        if len(finite):
            self.histogram = np.bincount(finite.astype(np.int64))
        else:
            self.histogram = np.zeros(1, dtype=np.int64)

    @property
    def n_refs(self) -> int:
        return len(self.distances)

    def miss_ratio_at(self, cache_lines: int) -> float:
        """Predicted miss ratio of a ``cache_lines``-line fully-assoc LRU cache."""
        if self.n_refs == 0:
            return 0.0
        finite = self.histogram
        hits = int(finite[: min(cache_lines, len(finite))].sum())
        return 1.0 - hits / self.n_refs

    def mean_distance(self) -> float:
        """Mean finite reuse distance (NaN-free; 0 when nothing re-used)."""
        finite = self.distances[self.distances >= 0]
        return float(finite.mean()) if len(finite) else 0.0


def miss_ratio_curve(
    addrs: np.ndarray,
    cache_sizes: list[int],
    line_size: int = 64,
) -> dict[int, float]:
    """Miss ratio predicted for each cache size (bytes), from one pass.

    Sizes are converted to line counts; the underlying distances are
    computed once, so sweeping many sizes is nearly free.
    """
    profile = ReuseProfile(reuse_distances(addrs, line_size), line_size)
    return {
        size: profile.miss_ratio_at(max(1, size // line_size))
        for size in cache_sizes
    }
