"""LRU reuse-distance analysis and miss-ratio curves.

The *reuse distance* (stack distance) of a reference is the number of
distinct cache lines touched since the previous reference to the same
line; a fully-associative LRU cache of C lines misses exactly the
references whose distance is >= C (plus cold first-touches). The
distance histogram therefore predicts the miss ratio of *every* cache
size at once — the classic answer to "would a bigger cache fix this?",
complementing the paper's "which object is it?".

The distance pass itself lives in :mod:`repro.cache.mrc.distances`
(Olken's Fenwick-tree algorithm plus an offline vectorised cross-check);
this module keeps the analysis-layer view — per-stream profiles and the
byte-sized miss-ratio-curve convenience — on top of it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cache.mrc.distances import COLD, lines_of
from repro.cache.mrc.distances import reuse_distances as _line_distances

__all__ = ["COLD", "ReuseProfile", "miss_ratio_curve", "reuse_distances"]


def reuse_distances(addrs: np.ndarray, line_size: int = 64) -> np.ndarray:
    """Per-reference LRU reuse distances in cache lines.

    Returns an int64 array aligned with ``addrs``: the number of distinct
    *other* lines touched since the line's previous access, or
    :data:`COLD` (-1) for first touches.
    """
    return _line_distances(lines_of(addrs, line_size))


@dataclass
class ReuseProfile:
    """Summary of a stream's reuse behaviour."""

    distances: np.ndarray            #: per-reference distances (COLD = -1)
    line_size: int = 64
    #: Histogram over finite distances (index = distance, clipped).
    histogram: np.ndarray = field(init=False)
    cold_misses: int = field(init=False)

    def __post_init__(self) -> None:
        finite = self.distances[self.distances >= 0]
        self.cold_misses = int((self.distances == COLD).sum())
        if len(finite):
            self.histogram = np.bincount(finite.astype(np.int64))
        else:
            self.histogram = np.zeros(1, dtype=np.int64)

    @property
    def n_refs(self) -> int:
        return len(self.distances)

    def miss_ratio_at(self, cache_lines: int) -> float:
        """Predicted miss ratio of a ``cache_lines``-line fully-assoc LRU cache."""
        if self.n_refs == 0:
            return 0.0
        finite = self.histogram
        hits = int(finite[: min(cache_lines, len(finite))].sum())
        return 1.0 - hits / self.n_refs

    def mean_distance(self) -> float:
        """Mean finite reuse distance (NaN-free; 0 when nothing re-used)."""
        finite = self.distances[self.distances >= 0]
        return float(finite.mean()) if len(finite) else 0.0


def miss_ratio_curve(
    addrs: np.ndarray,
    cache_sizes: list[int],
    line_size: int = 64,
) -> dict[int, float]:
    """Miss ratio predicted for each cache size (bytes), from one pass.

    Sizes are converted to line counts; the underlying distances are
    computed once, so sweeping many sizes is nearly free.
    """
    profile = ReuseProfile(reuse_distances(addrs, line_size), line_size)
    return {
        size: profile.miss_ratio_at(max(1, size // line_size))
        for size in cache_sizes
    }
