"""Offline analysis of reference streams and profiles.

The paper's techniques tell a programmer *which* data structure is
causing cache misses; this package helps answer the follow-on questions
a tuner immediately asks:

* :mod:`repro.analysis.reuse` — LRU reuse-distance (stack-distance)
  analysis and miss-ratio curves: "would a bigger cache fix it?"
* :mod:`repro.analysis.conflicts` — per-set pressure and object conflict
  analysis: "are these misses capacity or conflict, and which arrays
  fight over the same sets?"
* :mod:`repro.analysis.advisor` — turns a profile plus the above into
  per-object diagnoses (streaming / thrashing / conflicting) with
  concrete remedies (blocking, padding, pooling).
"""

from repro.analysis.reuse import (
    ReuseProfile,
    miss_ratio_curve,
    reuse_distances,
)
from repro.analysis.conflicts import ConflictReport, analyse_conflicts
from repro.analysis.advisor import Diagnosis, DiagnosisKind, advise
from repro.analysis.phases import Phase, detect_phases, phase_profiles_differ, phase_table

__all__ = [
    "reuse_distances",
    "miss_ratio_curve",
    "ReuseProfile",
    "ConflictReport",
    "analyse_conflicts",
    "Diagnosis",
    "DiagnosisKind",
    "advise",
    "Phase",
    "detect_phases",
    "phase_table",
    "phase_profiles_differ",
]
