"""Phase detection from per-object miss time series.

Section 3.5 of the paper handles *short* phases with the zero-miss
retention heuristic, and notes that longer phases "would require more
sophisticated handling". This module is that handling, offline: given
the Figure-5-style per-object miss series (from
:class:`repro.cache.attribution.MissSeries`), it segments time into
phases by change-point detection on the per-bucket miss-share vector —
buckets whose object-share composition differs sharply from the running
phase centroid open a new phase — and reports each phase's dominant
objects, so a per-phase profile can replace one misleading whole-run
average.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cache.attribution import MissSeries
from repro.util.format import Table, render_table
from repro.util.units import fmt_pct


@dataclass
class Phase:
    """One detected phase: a bucket range with a stable miss composition."""

    start_bucket: int
    end_bucket: int               #: inclusive
    total_misses: int
    #: name -> share of the phase's misses.
    shares: dict[str, float] = field(default_factory=dict)

    @property
    def n_buckets(self) -> int:
        return self.end_bucket - self.start_bucket + 1

    def top(self, k: int = 3) -> list[tuple[str, float]]:
        ordered = sorted(self.shares.items(), key=lambda kv: (-kv[1], kv[0]))
        return ordered[:k]

    def describe(self) -> str:
        tops = ", ".join(f"{n} {fmt_pct(s)}%" for n, s in self.top())
        return (
            f"buckets {self.start_bucket}-{self.end_bucket} "
            f"({self.total_misses:,} misses): {tops}"
        )


def _share_matrix(series: MissSeries) -> tuple[list[str], np.ndarray]:
    """Rows = buckets, columns = objects, values = per-bucket shares."""
    names = series.names()
    n_buckets = series.max_bucket + 1
    counts = np.zeros((n_buckets, len(names)), dtype=np.float64)
    for j, name in enumerate(names):
        dense = series.series_for(name)
        counts[: len(dense), j] = dense
    totals = counts.sum(axis=1, keepdims=True)
    with np.errstate(invalid="ignore", divide="ignore"):
        shares = np.where(totals > 0, counts / totals, 0.0)
    return names, shares


def detect_phases(
    series: MissSeries,
    threshold: float = 0.5,
    min_buckets: int = 1,
) -> list[Phase]:
    """Segment the run into phases of stable miss composition.

    A new phase opens when a bucket's share vector sits further than
    ``threshold`` (L1 distance, max 2.0) from the running centroid of the
    current phase. ``min_buckets`` suppresses one-bucket flickers by
    merging too-short phases into their predecessor.
    """
    names, shares = _share_matrix(series)
    n_buckets = shares.shape[0]
    if n_buckets == 0:
        return []

    boundaries: list[int] = [0]
    centroid = shares[0].copy()
    count = 1
    for b in range(1, n_buckets):
        row = shares[b]
        if row.sum() == 0:
            continue  # idle bucket: no evidence either way
        distance = float(np.abs(row - centroid).sum())
        if distance > threshold:
            boundaries.append(b)
            centroid = row.copy()
            count = 1
        else:
            count += 1
            centroid += (row - centroid) / count
    boundaries.append(n_buckets)

    # Merge segments shorter than min_buckets into their predecessor.
    merged: list[tuple[int, int]] = []
    for lo, hi in zip(boundaries, boundaries[1:]):
        if merged and (hi - lo) < min_buckets:
            merged[-1] = (merged[-1][0], hi)
        else:
            merged.append((lo, hi))

    phases: list[Phase] = []
    dense = {name: series.series_for(name) for name in names}
    for lo, hi in merged:
        counts = {
            name: int(dense[name][lo:hi].sum()) for name in names
        }
        total = sum(counts.values())
        phases.append(
            Phase(
                start_bucket=lo,
                end_bucket=hi - 1,
                total_misses=total,
                shares={
                    name: (c / total if total else 0.0)
                    for name, c in counts.items()
                    if c > 0
                },
            )
        )
    return phases


def phase_table(phases: list[Phase], k: int = 3) -> str:
    t = Table(
        ["phase", "buckets", "misses", "dominant objects"],
        title="detected phases",
    )
    for i, phase in enumerate(phases):
        tops = ", ".join(f"{n} ({fmt_pct(s)}%)" for n, s in phase.top(k))
        t.add_row(
            [i, f"{phase.start_bucket}-{phase.end_bucket}", phase.total_misses, tops]
        )
    return render_table(t)


def phase_profiles_differ(phases: list[Phase], min_share: float = 0.2) -> bool:
    """True when at least two phases have different dominant objects —
    the condition under which a whole-run average misleads."""
    dominants = {
        phase.top(1)[0][0]
        for phase in phases
        if phase.shares and phase.top(1)[0][1] >= min_share
    }
    return len(dominants) > 1
