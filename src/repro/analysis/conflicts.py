"""Cache-set pressure and inter-object conflict analysis.

Once the paper's techniques have named the hot objects, the next
question is *why* they miss: capacity (working set simply too big) or
conflict (several objects' hot lines map to the same cache sets). This
module answers it from a miss-address sample:

* per-set miss concentration (a Gini-style skew coefficient — conflict
  misses pile up in few sets, capacity misses spread evenly),
* an object-pair conflict ranking: how many sets two objects both miss
  in, weighted by their joint pressure,
* a padding suggestion per conflicting pair (shift one base by a few
  lines so the contended address ranges interleave into disjoint sets).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cache.config import CacheConfig
from repro.memory.object_map import ObjectMap
from repro.util.format import Table, render_table


@dataclass
class ConflictReport:
    """Outcome of :func:`analyse_conflicts`."""

    config: CacheConfig
    #: misses observed per set index.
    set_pressure: np.ndarray
    #: Skew of the pressure distribution: 0 = perfectly even (capacity
    #: pattern), -> 1 = concentrated in very few sets (conflict pattern).
    skew: float
    #: (name_a, name_b, shared_sets, joint_misses) ranked by joint misses.
    pairs: list[tuple[str, str, int, int]] = field(default_factory=list)
    #: name -> suggested pad bytes (inserted before the object) that
    #: would shift it off its current set alignment.
    padding: dict[str, int] = field(default_factory=dict)

    def table(self, k: int = 8) -> str:
        t = Table(
            ["object A", "object B", "shared sets", "joint misses", "suggested pad"],
            title="set-conflict pairs",
        )
        for a, b, sets, joint in self.pairs[:k]:
            t.add_row([a, b, sets, joint, self.padding.get(b, 0)])
        return render_table(t)


def _gini(counts: np.ndarray) -> float:
    """Gini coefficient of a non-negative count vector (0 even, ->1 skewed)."""
    total = counts.sum()
    if total == 0:
        return 0.0
    x = np.sort(counts.astype(np.float64))
    n = len(x)
    ranks = np.arange(1, n + 1, dtype=np.float64)
    return float(2.0 * (ranks * x).sum() / (n * total) - (n + 1) / n)


def analyse_conflicts(
    miss_addrs: np.ndarray,
    object_map: ObjectMap,
    config: CacheConfig,
    top_pairs: int = 16,
) -> ConflictReport:
    """Classify miss pressure by cache set and find contending objects.

    ``miss_addrs`` is any representative sample of miss addresses (the
    sampling profiler's raw samples, or ground truth's stream).
    """
    addrs = np.asarray(miss_addrs, dtype=np.uint64)
    set_idx = (
        (addrs >> np.uint64(config.line_bits)) & np.uint64(config.set_mask)
    ).astype(np.int64)
    pressure = np.bincount(set_idx, minlength=config.n_sets)

    snapshot = object_map.snapshot()
    obj_idx = snapshot.attribute(addrs)
    names = [o.name for o in snapshot.objects]

    # Per-object, per-set miss counts via a flattened 2D bincount.
    valid = obj_idx >= 0
    flat = obj_idx[valid] * config.n_sets + set_idx[valid]
    grid = np.bincount(flat, minlength=len(names) * config.n_sets).reshape(
        len(names), config.n_sets
    )

    # Rank object pairs by joint per-set pressure.
    pairs: list[tuple[str, str, int, int]] = []
    active = [i for i in range(len(names)) if grid[i].sum() > 0]
    for ai in range(len(active)):
        for bi in range(ai + 1, len(active)):
            i, j = active[ai], active[bi]
            both = (grid[i] > 0) & (grid[j] > 0)
            if not both.any():
                continue
            shared = int(both.sum())
            joint = int(np.minimum(grid[i][both], grid[j][both]).sum())
            pairs.append((names[i], names[j], shared, joint))
    pairs.sort(key=lambda p: -p[3])
    pairs = pairs[:top_pairs]

    # Padding suggestions: shift the second object of each top pair past
    # the whole contended span, so the two objects' hot lines land in
    # disjoint sets (a smaller shift only thins the overlap).
    padding: dict[str, int] = {}
    for _a, b, shared, _joint in pairs:
        if b not in padding and shared > 0:
            padding[b] = shared * config.line_size

    return ConflictReport(
        config=config,
        set_pressure=pressure,
        skew=_gini(pressure),
        pairs=pairs,
        padding=padding,
    )
