"""Per-object tuning advice from a profile plus stream analysis.

The end of the tuning loop: given the paper's output ("object X causes
40% of your misses") and the reuse/conflict analyses, classify each hot
object's miss pattern and suggest the standard remedy:

* **STREAMING** — lines touched once and never re-used (reuse distance
  overwhelmingly cold/huge). Remedy: software prefetch, non-temporal
  stores, or algorithmic blocking to create reuse.
* **THRASHING** — re-use exists but at distances just beyond the cache
  (capacity misses). Remedy: tile/block the loop so the working set fits.
* **CONFLICTING** — misses concentrated in few sets while the object
  would otherwise fit. Remedy: pad or re-align against the objects it
  contends with.
* **RESIDENT** — low miss share; leave it alone.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.analysis.conflicts import ConflictReport
from repro.analysis.reuse import COLD, ReuseProfile
from repro.cache.config import CacheConfig
from repro.core.profile import DataProfile
from repro.util.format import Table, render_table
from repro.util.units import fmt_pct


class DiagnosisKind(enum.Enum):
    STREAMING = "streaming"
    THRASHING = "thrashing"
    CONFLICTING = "conflicting"
    RESIDENT = "resident"


_REMEDIES = {
    DiagnosisKind.STREAMING: (
        "no reuse to exploit: consider software prefetch, non-temporal "
        "stores, or restructure the algorithm to create reuse (blocking)"
    ),
    DiagnosisKind.THRASHING: (
        "reuse exists but exceeds cache capacity: tile/block the loop so "
        "the per-pass working set fits the cache"
    ),
    DiagnosisKind.CONFLICTING: (
        "misses concentrate in few cache sets: pad or re-align this object "
        "against the arrays it shares sets with"
    ),
    DiagnosisKind.RESIDENT: "minor contributor: no action needed",
}


@dataclass
class Diagnosis:
    """One object's classification and remedy."""

    name: str
    share: float
    kind: DiagnosisKind
    detail: str

    @property
    def remedy(self) -> str:
        return _REMEDIES[self.kind]


def _classify_object(
    share: float,
    distances: np.ndarray,
    cache_lines: int,
    set_skew: float,
    minor_share: float,
) -> tuple[DiagnosisKind, str]:
    if share < minor_share:
        return DiagnosisKind.RESIDENT, f"only {fmt_pct(share)}% of misses"
    finite = distances[distances >= 0]
    cold_fraction = float((distances == COLD).sum()) / max(1, len(distances))
    if len(finite) == 0 or cold_fraction > 0.7:
        return (
            DiagnosisKind.STREAMING,
            f"{fmt_pct(cold_fraction)}% of its references are first touches",
        )
    over_capacity = float((finite >= cache_lines).sum()) / len(finite)
    if over_capacity > 0.5:
        return (
            DiagnosisKind.THRASHING,
            f"{fmt_pct(over_capacity)}% of reuses exceed the "
            f"{cache_lines}-line capacity",
        )
    if set_skew > 0.6:
        return (
            DiagnosisKind.CONFLICTING,
            f"set-pressure skew {set_skew:.2f} despite in-capacity reuse",
        )
    return (
        DiagnosisKind.STREAMING,
        "reuse too sparse to retain lines",
    )


def advise(
    profile: DataProfile,
    addrs: np.ndarray,
    object_map,
    config: CacheConfig,
    conflict_report: ConflictReport | None = None,
    top_k: int = 5,
    minor_share: float = 0.05,
) -> list[Diagnosis]:
    """Diagnose the profile's top objects from a reference sample.

    ``addrs`` is a representative slice of the *reference* stream (not
    just misses) so reuse distances are meaningful; per-object streams
    are extracted by attribution.
    """
    from repro.analysis.reuse import reuse_distances

    addrs = np.asarray(addrs, dtype=np.uint64)
    snapshot = object_map.snapshot()
    owner = snapshot.attribute(addrs)
    name_of = {i: o.name for i, o in enumerate(snapshot.objects)}
    cache_lines = config.n_lines
    skew = conflict_report.skew if conflict_report is not None else 0.0

    diagnoses: list[Diagnosis] = []
    for share in profile.top(top_k):
        idx = next(
            (i for i, nm in name_of.items() if nm == share.name), None
        )
        if idx is None:
            continue
        own_refs = addrs[owner == idx]
        if len(own_refs) == 0:
            continue
        distances = reuse_distances(own_refs, config.line_size)
        kind, detail = _classify_object(
            share.share, distances, cache_lines, skew, minor_share
        )
        diagnoses.append(
            Diagnosis(name=share.name, share=share.share, kind=kind, detail=detail)
        )
    return diagnoses


def advice_table(diagnoses: list[Diagnosis]) -> str:
    t = Table(["object", "miss %", "pattern", "evidence", "remedy"],
              title="tuning advice")
    for d in diagnoses:
        t.add_row([d.name, fmt_pct(d.share), d.kind.value, d.detail, d.remedy])
    return render_table(t)
