"""Simulated hardware performance-monitor support.

Models the counter features the paper's techniques assume (section 2): a
cache-miss counter that can raise an interrupt after a programmable number
of misses, a register reporting the address of the last cache miss
(Itanium-style), and a bank of miss counters qualified by base/bounds
registers so that "cache misses within regions of memory are counted".
A multiplexing adapter emulates the bank by time-sharing one physical
conditional counter, the fallback the paper suggests for processors with
only a single qualified counter.
"""

from repro.hpm.registers import BaseBoundsRegister
from repro.hpm.counters import MissCounter, RegionCounterBank
from repro.hpm.interrupts import CostModel, InterruptKind, InterruptRecord
from repro.hpm.monitor import PerformanceMonitor
from repro.hpm.multiplex import MultiplexedRegionBank
from repro.hpm.presets import PRESETS, PmuPreset, get_preset, technique_support

__all__ = [
    "BaseBoundsRegister",
    "MissCounter",
    "RegionCounterBank",
    "CostModel",
    "InterruptKind",
    "InterruptRecord",
    "PerformanceMonitor",
    "MultiplexedRegionBank",
    "PmuPreset",
    "PRESETS",
    "get_preset",
    "technique_support",
]
