"""Capability catalog of the processors the paper surveys.

Section 1 and the related-work section name the hardware landscape circa
2000: most CPUs count misses; some (MIPS R10000/R12000, Alpha) can
interrupt on counter overflow; the Intel Itanium additionally reports
the *address* of the last miss and can qualify counting by an address
range — the two features the paper's techniques respectively need.

:func:`technique_support` turns a preset into an actionable statement of
which technique runs natively, which needs emulation (e.g. multiplexing
a single conditional counter), and which is impossible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CounterError


@dataclass(frozen=True)
class PmuPreset:
    """Performance-monitoring capabilities of one processor."""

    name: str
    n_counters: int
    counts_cache_misses: bool
    overflow_interrupt: bool
    reports_miss_address: bool
    #: Number of simultaneously programmable base/bounds-qualified
    #: counters (0 = feature absent).
    conditional_counters: int

    def supports_sampling(self) -> bool:
        """Miss-address sampling needs overflow interrupts + the address."""
        return (
            self.counts_cache_misses
            and self.overflow_interrupt
            and self.reports_miss_address
        )

    def supports_search(self, n: int = 2) -> bool:
        """An n-way search needs n conditional counters natively."""
        return self.conditional_counters >= n

    def supports_search_multiplexed(self) -> bool:
        """One conditional counter can be time-shared (paper section 2.2)."""
        return self.conditional_counters >= 1 and self.overflow_interrupt


#: The processors the paper discusses, with their published capabilities.
PRESETS: dict[str, PmuPreset] = {
    "r10000": PmuPreset(
        name="MIPS R10000",
        n_counters=2,
        counts_cache_misses=True,
        overflow_interrupt=True,
        reports_miss_address=False,
        conditional_counters=0,
    ),
    "alpha-21264": PmuPreset(
        name="Compaq Alpha 21264",
        n_counters=2,
        counts_cache_misses=True,
        overflow_interrupt=True,
        reports_miss_address=False,
        conditional_counters=0,
    ),
    "ultrasparc": PmuPreset(
        name="Sun UltraSPARC",
        n_counters=2,
        counts_cache_misses=True,
        overflow_interrupt=False,
        reports_miss_address=False,
        conditional_counters=0,
    ),
    "itanium": PmuPreset(
        name="Intel Itanium",
        n_counters=4,
        counts_cache_misses=True,
        overflow_interrupt=True,
        reports_miss_address=True,
        conditional_counters=1,
    ),
    # The paper's hypothetical target: Itanium-style features with a full
    # bank of conditional counters (what the simulation assumes).
    "paper-ideal": PmuPreset(
        name="paper's simulated HPM",
        n_counters=11,
        counts_cache_misses=True,
        overflow_interrupt=True,
        reports_miss_address=True,
        conditional_counters=10,
    ),
}


def get_preset(name: str) -> PmuPreset:
    try:
        return PRESETS[name]
    except KeyError:
        raise CounterError(
            f"unknown PMU preset {name!r}; available: {', '.join(sorted(PRESETS))}"
        ) from None


def technique_support(preset: PmuPreset | str, n: int = 10) -> dict[str, str]:
    """How each of the paper's techniques maps onto the hardware.

    Values: ``"native"``, ``"emulated"`` (possible with a documented
    workaround, e.g. counter multiplexing), or ``"unsupported"``.
    """
    if isinstance(preset, str):
        preset = get_preset(preset)
    sampling = "native" if preset.supports_sampling() else "unsupported"
    if preset.supports_search(n):
        search = "native"
    elif preset.supports_search_multiplexed():
        search = "emulated"  # time-share the one conditional counter
    else:
        search = "unsupported"
    return {"sampling": sampling, "search": search}
