"""Base/bounds registers qualifying a miss counter to an address region."""

from __future__ import annotations

import numpy as np

from repro.util.intervals import Interval


class BaseBoundsRegister:
    """A pair of registers selecting the half-open region ``[base, bound)``.

    ``None`` (unprogrammed) matches every address — the configuration of
    the global counter that measures total misses. ``match`` is vectorised
    because the engine feeds whole miss-address chunks through at once.
    """

    def __init__(self, region: Interval | None = None) -> None:
        self._region = region

    @property
    def region(self) -> Interval | None:
        return self._region

    def program(self, region: Interval | None) -> None:
        self._region = region

    def clear(self) -> None:
        self._region = None

    def matches(self, addr: int) -> bool:
        if self._region is None:
            return True
        return self._region.lo <= addr < self._region.hi

    def match_mask(self, addrs: np.ndarray) -> np.ndarray:
        """Boolean mask of addresses inside the region (vectorised)."""
        if self._region is None:
            return np.ones(len(addrs), dtype=bool)
        lo = np.uint64(self._region.lo)
        hi = np.uint64(self._region.hi)
        return (addrs >= lo) & (addrs < hi)

    def match_count(self, addrs: np.ndarray) -> int:
        """Number of addresses inside the region (vectorised)."""
        if self._region is None:
            return len(addrs)
        lo = np.uint64(self._region.lo)
        hi = np.uint64(self._region.hi)
        return int(np.count_nonzero((addrs >= lo) & (addrs < hi)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self._region is None:
            return "BaseBoundsRegister(any)"
        return f"BaseBoundsRegister([{self._region.lo:#x}, {self._region.hi:#x}))"
