"""The performance-monitor facade the simulation engine programs.

One :class:`PerformanceMonitor` bundles the counter resources a technique
needs:

* ``overflow_counter`` — an unqualified miss counter with programmable
  overflow threshold (sampling arms this),
* ``last_miss_addr`` — the Itanium-style register reporting the address of
  the most recent cache miss,
* ``global_counter`` — unqualified total-miss counter (the search's
  denominator),
* ``regions`` — a :class:`RegionCounterBank` of base/bounds-qualified
  counters (the search's n counters), optionally replaced by a
  time-multiplexed emulation.
"""

from __future__ import annotations

import numpy as np

from repro.hpm.counters import MissCounter, RegionCounterBank
from repro.hpm.multiplex import MultiplexedRegionBank


class PerformanceMonitor:
    """Simulated HPM state shared between the engine and the techniques."""

    def __init__(
        self,
        n_region_counters: int = 10,
        multiplexed: bool = False,
        multiplex_slice_misses: int = 512,
        core_id: int = 0,
    ) -> None:
        #: Which core this monitor belongs to. Multi-core sessions build
        #: one monitor per core (each core has its own counter bank, as
        #: on real SMPs); single-core runs leave the default 0.
        self.core_id = core_id
        self.overflow_counter = MissCounter(name="overflow")
        self.global_counter = MissCounter(name="global")
        if multiplexed:
            self.regions: RegionCounterBank = MultiplexedRegionBank(
                n_region_counters, slice_misses=multiplex_slice_misses
            )
        else:
            self.regions = RegionCounterBank(n_region_counters)
        self.last_miss_addr: int | None = None
        #: The most recent miss addresses (newest last), kept so tools can
        #: model sampling *skid*: real counter-overflow interrupts often
        #: report an address several misses older than the triggering one.
        self.recent_miss_addrs: list[int] = []
        self.recent_depth = 16
        self.total_misses_observed = 0

    def observe(self, miss_addrs: np.ndarray) -> None:
        """Feed a chunk of miss addresses to every counter resource.

        The engine guarantees (via the cache's ``miss_budget``) that when
        the overflow counter crosses its threshold, the final element of
        ``miss_addrs`` is the triggering miss, so ``last_miss_addr`` is
        exactly the address the hardware would report.
        """
        if len(miss_addrs) == 0:
            return
        self.overflow_counter.observe(miss_addrs)
        self.global_counter.observe(miss_addrs)
        self.regions.observe(miss_addrs)
        self.last_miss_addr = int(miss_addrs[-1])
        tail = miss_addrs[-self.recent_depth :]
        self.recent_miss_addrs.extend(int(a) for a in tail)
        del self.recent_miss_addrs[: -self.recent_depth]
        self.total_misses_observed += len(miss_addrs)

    def miss_addr_with_skid(self, skid: int) -> int | None:
        """The address ``skid`` misses before the most recent one (0 = the
        last miss itself). Returns the oldest known address if the ring is
        shallower than ``skid``."""
        if not self.recent_miss_addrs:
            return self.last_miss_addr
        idx = max(0, len(self.recent_miss_addrs) - 1 - skid)
        return self.recent_miss_addrs[idx]

    def misses_until_overflow(self) -> int | None:
        """Budget the engine passes to the cache (None when disarmed)."""
        return self.overflow_counter.misses_until_overflow()

    @property
    def overflow_pending(self) -> bool:
        return self.overflow_counter.overflowed
