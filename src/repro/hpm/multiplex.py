"""Time-multiplexed emulation of a conditional-counter bank.

Section 2.2 of the paper notes that "current processors that provide
conditional counting of cache misses typically allow only one region to be
specified at a time", and that multiple counters "could be simulated by
timesharing the single conditional counter between regions of interest" —
at the price of accuracy studied in the ablation benches.

This bank presents the same interface as :class:`RegionCounterBank`, but
only one logical region is being measured at any instant. The active
region rotates every ``slice_misses`` total misses; ``read_all`` returns
counts extrapolated by each region's share of observation time
(``raw_count * total_slices / slices_observed``), which is how real
multiplexing tools (e.g. perf event multiplexing) scale their counts.
"""

from __future__ import annotations

import numpy as np

from repro.hpm.counters import RegionCounterBank
from repro.util.intervals import Interval


class MultiplexedRegionBank(RegionCounterBank):
    """One physical conditional counter time-shared over n logical regions."""

    def __init__(self, n_counters: int, slice_misses: int = 512) -> None:
        super().__init__(n_counters)
        if slice_misses <= 0:
            raise ValueError("slice_misses must be positive")
        self.slice_misses = slice_misses
        self._active = 0
        self._into_slice = 0
        self._n_active = 0
        #: misses elapsed (globally) while each logical counter was active
        self._observed_misses = [0] * n_counters
        self._total_misses = 0

    def program(self, assignments: list[Interval | None]) -> None:
        super().program(assignments)
        self._n_active = len(assignments)
        self._active = 0
        self._into_slice = 0
        self._observed_misses = [0] * len(self.counters)
        self._total_misses = 0

    def observe(self, miss_addrs: np.ndarray) -> None:
        """Attribute misses only to the active logical counter, rotating."""
        if self._n_active == 0 or len(miss_addrs) == 0:
            return
        pos = 0
        n = len(miss_addrs)
        while pos < n:
            room = self.slice_misses - self._into_slice
            take = min(room, n - pos)
            chunk = miss_addrs[pos : pos + take]
            counter = self.counters[self._active]
            if counter.enabled:
                counter.observe(chunk)
            self._observed_misses[self._active] += take
            self._total_misses += take
            self._into_slice += take
            pos += take
            if self._into_slice >= self.slice_misses:
                self._into_slice = 0
                self._active = (self._active + 1) % self._n_active

    def clear_all(self) -> None:
        """Reset raw counts *and* the observation-time tracking, so the
        next extrapolation window starts fresh (the estimation phase
        clears counters between rounds)."""
        super().clear_all()
        self._observed_misses = [0] * len(self.counters)
        self._total_misses = 0

    def read_all(self) -> list[int]:
        """Extrapolated counts: raw * (total elapsed / time observed).

        A region whose slice never came up (``slices_observed == 0`` —
        possible whenever fewer than ``n`` slices elapsed before a read,
        e.g. a short estimation round over many programmed regions) has
        no observation window to extrapolate from; its raw count is
        reported as-is (zero in normal operation) rather than dividing
        by zero or fabricating a scaled estimate.
        """
        out: list[int] = []
        for i, counter in enumerate(self.counters):
            if not counter.enabled:
                continue
            observed = self._observed_misses[i]
            if observed <= 0:
                out.append(counter.value)
            else:
                out.append(round(counter.value * self._total_misses / observed))
        return out
