"""Interrupt kinds, records and the instrumentation cost model.

Section 3.3 of the paper measures the cost of receiving a counter-overflow
interrupt on an SGI Octane (175 MHz R10000) as roughly 50 microseconds —
about 8,800 cycles — and charges that per interrupt in the simulation on
top of the virtual cycles the handler itself executes. This module holds
that constant plus the per-operation cycle charges used to cost the
sampling and search handlers. The defaults are calibrated so that total
per-interrupt costs land where the paper reports them: ~9,000 cycles per
sampling interrupt and 26,000-64,000 cycles per search iteration
(including delivery).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class InterruptKind(enum.Enum):
    """Why the instrumentation was entered."""

    MISS_OVERFLOW = "miss_overflow"  #: counter reached its overflow threshold
    TIMER = "timer"                  #: virtual-cycle timer expired


@dataclass(frozen=True)
class InterruptRecord:
    """One delivered interrupt, for the cost/perturbation accounting."""

    kind: InterruptKind
    cycle: int              #: virtual time at delivery
    handler_cycles: int     #: cycles the handler itself executed
    delivery_cycles: int    #: OS/hardware delivery cost charged
    tool: str = ""          #: name of the tool the interrupt was routed to

    @property
    def total_cycles(self) -> int:
        return self.handler_cycles + self.delivery_cycles


@dataclass
class CostModel:
    """Virtual-cycle charges for instrumentation activity.

    All values are in simulated RISC cycles, matching the paper's virtual
    cycle counter ("the cycle counts do not represent any specific
    processor, but are meant to model RISC processors in general").
    """

    #: Cost of delivering one interrupt signal (paper: ~50us at 175MHz).
    interrupt_delivery_cycles: int = 8_800
    #: Fixed cycles per sampling-handler invocation (register reads,
    #: counter re-arm, bookkeeping).
    sampler_fixed_cycles: int = 120
    #: Cycles per object-map probe (one binary-search/tree step).
    cycles_per_map_probe: int = 22
    #: Fixed cycles per search timer handler (reading the counter bank,
    #: computing percentages, loop overhead).
    search_fixed_cycles: int = 17_000
    #: Cycles per priority-queue sift step.
    cycles_per_queue_op: int = 60
    #: Cycles per region split (midpoint computation + counter programming).
    cycles_per_split: int = 450
    #: Cycles per object scanned while aligning a split to object bounds.
    cycles_per_boundary_scan: int = 90
    #: Cycles per counter read/reprogram in the bank.
    cycles_per_counter_io: int = 140

    def sampler_handler_cycles(self, map_probes: int) -> int:
        """Handler cost of one sampling interrupt given map-lookup probes."""
        return self.sampler_fixed_cycles + self.cycles_per_map_probe * map_probes

    def search_handler_cycles(
        self,
        queue_ops: int,
        splits: int,
        boundary_scans: int,
        counter_io: int,
    ) -> int:
        """Handler cost of one search iteration given its operation counts."""
        return (
            self.search_fixed_cycles
            + self.cycles_per_queue_op * queue_ops
            + self.cycles_per_split * splits
            + self.cycles_per_boundary_scan * boundary_scans
            + self.cycles_per_counter_io * counter_io
        )


@dataclass
class InterruptLog:
    """Accumulates delivered interrupts for post-run analysis."""

    records: list[InterruptRecord] = field(default_factory=list)

    def append(self, record: InterruptRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    @property
    def total_cycles(self) -> int:
        return sum(r.total_cycles for r in self.records)

    @property
    def total_handler_cycles(self) -> int:
        return sum(r.handler_cycles for r in self.records)

    def mean_cycles(self) -> float:
        """Average total cost per interrupt (paper section 3.3 metric)."""
        return self.total_cycles / len(self.records) if self.records else 0.0

    def per_billion_cycles(self, elapsed_cycles: int) -> float:
        """Interrupt rate normalised the way the paper reports it."""
        if elapsed_cycles <= 0:
            return 0.0
        return len(self.records) / (elapsed_cycles / 1e9)
