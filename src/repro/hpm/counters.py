"""Cache-miss counters, optionally qualified by base/bounds registers.

``MissCounter`` is one hardware counter; ``RegionCounterBank`` is the fixed
bank of conditional counters the n-way search programs (the paper assumes
"a number of cache miss counters are available, each with its own
associated set of base and bounds registers").
"""

from __future__ import annotations

import numpy as np

from repro.errors import CounterError
from repro.hpm.registers import BaseBoundsRegister
from repro.util.intervals import Interval


class MissCounter:
    """A single miss counter with optional region qualifier and overflow.

    ``overflow_after`` arms the counter to report overflow once ``value``
    reaches the threshold; the engine converts that report into an
    interrupt at the precise triggering miss (see the engine's use of
    ``miss_budget``).
    """

    def __init__(self, name: str = "counter") -> None:
        self.name = name
        self.register = BaseBoundsRegister()
        self.value = 0
        self._threshold: int | None = None
        self.enabled = True

    def program_region(self, region: Interval | None) -> None:
        self.register.program(region)

    @property
    def region(self) -> Interval | None:
        return self.register.region

    def arm_overflow(self, threshold: int) -> None:
        """Interrupt after ``threshold`` further qualified misses."""
        if threshold <= 0:
            raise CounterError(f"overflow threshold must be positive, got {threshold}")
        self._threshold = self.value + threshold

    def disarm(self) -> None:
        self._threshold = None

    @property
    def armed(self) -> bool:
        return self._threshold is not None

    def misses_until_overflow(self) -> int | None:
        """Remaining qualified misses before overflow (None if disarmed)."""
        if self._threshold is None:
            return None
        return max(0, self._threshold - self.value)

    @property
    def overflowed(self) -> bool:
        return self._threshold is not None and self.value >= self._threshold

    def observe(self, miss_addrs: np.ndarray) -> int:
        """Accumulate qualified misses from a chunk; returns the increment."""
        if not self.enabled or len(miss_addrs) == 0:
            return 0
        increment = self.register.match_count(miss_addrs)
        self.value += increment
        return increment

    def read_and_clear(self) -> int:
        value = self.value
        self.value = 0
        return value

    def clear(self) -> None:
        self.value = 0


class RegionCounterBank:
    """A fixed-size bank of region-qualified miss counters.

    The bank size models the hardware limit: an n-way search needs n of
    these (plus the separate global counter), which is exactly the resource
    trade-off section 3.4 of the paper studies.
    """

    def __init__(self, n_counters: int) -> None:
        if n_counters <= 0:
            raise CounterError("bank needs at least one counter")
        self.counters = [MissCounter(name=f"region{i}") for i in range(n_counters)]

    def __len__(self) -> int:
        return len(self.counters)

    def __getitem__(self, idx: int) -> MissCounter:
        return self.counters[idx]

    def program(self, assignments: list[Interval | None]) -> None:
        """Program regions counter-by-counter; extra counters are disabled.

        Raises :class:`CounterError` if more regions than counters are
        requested — the hardware has no more registers to give.
        """
        if len(assignments) > len(self.counters):
            raise CounterError(
                f"{len(assignments)} regions requested but bank has "
                f"{len(self.counters)} counters"
            )
        for i, counter in enumerate(self.counters):
            if i < len(assignments):
                counter.program_region(assignments[i])
                counter.enabled = True
            else:
                counter.program_region(None)
                counter.enabled = False
            counter.clear()

    def observe(self, miss_addrs: np.ndarray) -> None:
        for counter in self.counters:
            counter.observe(miss_addrs)

    def read_all(self) -> list[int]:
        """Current values of the enabled counters (in bank order)."""
        return [c.value for c in self.counters if c.enabled]

    def clear_all(self) -> None:
        for counter in self.counters:
            counter.clear()
