"""Synthetic workloads for tests, ablations and illustrations.

* :class:`SyntheticStreams` — arrays with caller-chosen miss shares;
  the controlled scenario most unit/integration tests use.
* :class:`FigureTwoLayout` — the paper's Figure 2 layout: a region whose
  *aggregate* misses dominate even though the single hottest array lives
  in the other region. Greedy (no-priority-queue) search terminates on
  the wrong array; the real search backtracks and finds it.
* :class:`TreeChaser` — a pointer-chasing workload over thousands of
  small heap blocks from a few allocation sites; exercises the red-black
  heap map, allocation/free churn, and the future-work aggregation of
  related heap blocks.
"""

from __future__ import annotations

from typing import ClassVar, Iterator

import numpy as np

from repro.errors import WorkloadError
from repro.sim.blocks import ReferenceBlock
from repro.util.rng import make_rng
from repro.workloads.base import Workload
from repro.workloads.patterns import interleave, stream_lines


class SyntheticStreams(Workload):
    """Equal-pattern streaming over arrays with chosen miss shares.

    ``spec`` maps array name -> (size_bytes, share). Shares are
    normalised; per round each array is swept in proportion to its share,
    so the ground-truth profile converges to exactly those shares.
    """

    name = "synthetic-streams"
    cycles_per_ref = 4.0

    def __init__(
        self,
        spec: dict[str, tuple[int, float]],
        rounds: int = 10,
        lines_per_round: int = 20_000,
        scale: float = 1.0,
        seed: int | None = None,
        interleaved: bool = False,
        cycles_per_ref: float | None = None,
    ) -> None:
        super().__init__(scale=scale, seed=seed)
        if not spec:
            raise WorkloadError("spec must name at least one array")
        if cycles_per_ref is not None:
            self.cycles_per_ref = cycles_per_ref
        self.spec = dict(spec)
        self.rounds = rounds
        self.lines_per_round = lines_per_round
        self.interleaved = interleaved

    def _declare(self) -> None:
        for name, (size, _share) in self.spec.items():
            self.symbols.declare(name, self.scaled(size))

    def _generate(self) -> Iterator[ReferenceBlock]:
        total_share = sum(share for _, share in self.spec.values())
        cursor = {name: 0 for name in self.spec}
        line = 64
        rng = make_rng(self.seed)
        for _ in range(self.rounds):
            streams = []
            for name, (_, share) in self.spec.items():
                n_lines = max(1, int(self.lines_per_round * share / total_share))
                streams.append(
                    stream_lines(self.symbols[name], n_lines, line, cursor[name])
                )
                cursor[name] += n_lines
            if self.interleaved and len(streams) > 1:
                # Fine-grained deterministic mixing that preserves each
                # array's volume (a strict element interleave would trim
                # every stream to the shortest and equalise the shares).
                chunk = 32
                pieces = [
                    s[i : i + chunk]
                    for s in streams
                    for i in range(0, len(s), chunk)
                ]
                order = rng.permutation(len(pieces))
                yield self.block(np.concatenate([pieces[i] for i in order]))
            else:
                for addrs in streams:
                    yield self.block(addrs)


class FigureTwoLayout(Workload):
    """The Figure 2 scenario.

    Layout (address order): arrays A, B, C, D occupy the upper half of
    the data segment with shares 18/12/20/10 (their *region* totals 60%);
    arrays E and F occupy the lower half with shares 35/5 (region total
    40%). The hottest single array is E, but a search that greedily
    refines only the currently-best region discards E's region in the
    first iteration and terminates on C.
    """

    name = "figure2"
    cycles_per_ref = 4.0

    SHARES: ClassVar[dict[str, int]] = {"A": 18, "B": 12, "C": 20, "D": 10, "E": 35, "F": 5}

    def __init__(
        self,
        scale: float = 1.0,
        seed: int | None = None,
        rounds: int = 60,
        lines_per_round: int = 6_000,
    ) -> None:
        super().__init__(scale=scale, seed=seed)
        self.rounds = rounds
        self.lines_per_round = lines_per_round

    def _declare(self) -> None:
        # E and F are double-sized so the byte midpoint of the layout falls
        # exactly on the D|E boundary: a midpoint split separates the 60%
        # region {A,B,C,D} from the 40% region {E,F}, as in the figure.
        size = self.scaled(512 * 1024)
        for name in ("A", "B", "C", "D"):
            self.symbols.declare(name, size)
        for name in ("E", "F"):
            self.symbols.declare(name, 2 * size)

    def _generate(self) -> Iterator[ReferenceBlock]:
        line = 64
        cursor = {name: 0 for name in self.SHARES}
        total = sum(self.SHARES.values())
        for _ in range(self.rounds):
            for name, share in self.SHARES.items():
                n_lines = max(1, self.lines_per_round * share // total)
                yield self.block(
                    stream_lines(self.symbols[name], n_lines, line, cursor[name]),
                    label=name,
                )
                cursor[name] += n_lines


class TreeChaser(Workload):
    """Random traversal over a forest of small heap-allocated nodes.

    Allocates ``n_nodes`` blocks from three allocation sites (interior
    nodes, leaves, and a side table), frees and reallocates a slice of
    them mid-run (exercising the allocator and the red-black heap map),
    and chases pointers randomly — the "nodes of a tree" scenario the
    paper's future-work section wants aggregated by site.
    """

    name = "tree-chaser"
    cycles_per_ref = 12.0
    #: The mid-run free/realloc churn is the point of this workload; a
    #: compiled replay would miss it (see repro.workloads.compile).
    compiled_stream_safe = False

    def __init__(
        self,
        scale: float = 1.0,
        seed: int | None = None,
        n_nodes: int = 3_000,
        node_size: int = 256,
        n_steps: int = 40,
        refs_per_step: int = 8_000,
    ) -> None:
        super().__init__(scale=scale, seed=seed)
        self.n_nodes = n_nodes
        self.node_size = node_size
        self.n_steps = n_steps
        self.refs_per_step = refs_per_step
        self._nodes: list = []

    def _declare(self) -> None:
        self.symbols.declare("root_table", 64 * 1024)
        sites = ("make_interior", "make_leaf", "side_table")
        for i in range(self.n_nodes):
            site = sites[i % 3]
            self._nodes.append(self.heap.malloc(self.node_size, alloc_site=site))

    def _on_reset(self) -> None:
        # Handles point into the torn-down heap; _declare refills them.
        self._nodes.clear()

    def _generate(self) -> Iterator[ReferenceBlock]:
        rng = make_rng(self.seed)
        root = self.symbols["root_table"]
        for step in range(self.n_steps):
            # Mid-run churn: free and reallocate a slice of leaves.
            if step == self.n_steps // 2:
                for idx in range(0, len(self._nodes), 7):
                    self.heap.free(self._nodes[idx])
                for idx in range(0, len(self._nodes), 7):
                    self._nodes[idx] = self.heap.malloc(
                        self.node_size, alloc_site="make_leaf"
                    )
            picks = rng.integers(0, len(self._nodes), size=self.refs_per_step)
            bases = np.array([self._nodes[i].base for i in picks], dtype=np.uint64)
            offsets = rng.integers(
                0, max(1, self.node_size // 8), size=self.refs_per_step
            ).astype(np.uint64) * np.uint64(8)
            addrs = bases + offsets
            yield self.block(addrs, label="chase")
            # Root-table touches between traversals (hits).
            yield self.block(
                stream_lines(root, 64, 64, 0), label="root"
            )
