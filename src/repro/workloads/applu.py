"""applu model: parabolic/elliptic PDE solver (SPEC95 110.applu).

Two behaviours from the paper are reproduced:

* **Table 1 shares** — the Jacobian block arrays a, b, c (~22.9/22.9/22.6%),
  d (17.4%) and the residual rsd (6.9%), plus a small tail (u, frct).
* **Phases (Figure 5)** — every SSOR iteration alternates a long Jacobian
  phase (a, b, c, d hot; rsd silent) with a short RHS phase (rsd hot;
  a, b, c silent), so the per-array miss-vs-time curves for a/b/c
  "periodically dip below the number of misses in other arrays; in fact,
  A, B, and C periodically cause no cache misses during a sample
  interval". This is the workload that exercises the search's phase
  heuristic (zero-miss top regions retained, intervals stretched).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.sim.blocks import ReferenceBlock
from repro.workloads.base import Workload
from repro.workloads.patterns import interleave, intra_line_hits, stream_lines


class Applu(Workload):
    name = "applu"
    cycles_per_ref = 30.0

    def __init__(
        self,
        scale: float = 1.0,
        seed: int | None = None,
        n_iterations: int = 12,
        jacobian_lines: int = 7000,
    ) -> None:
        super().__init__(scale=scale, seed=seed)
        self.n_iterations = n_iterations
        #: Per-iteration line volume for each of a, b, c in the Jacobian phase.
        self.jacobian_lines = jacobian_lines

    def _declare(self) -> None:
        blk = self.scaled(768 * 1024)
        for name in ("a", "b", "c", "d"):
            self.symbols.declare(name, blk)
        self.symbols.declare("rsd", self.scaled(512 * 1024))
        self.symbols.declare("u", self.scaled(512 * 1024))
        self.symbols.declare("frct", self.scaled(384 * 1024))

    def _generate(self) -> Iterator[ReferenceBlock]:
        sym = self.symbols
        line = 64
        cursor = {name: 0 for name in ("a", "b", "c", "d", "rsd", "u", "frct")}
        jl = self.jacobian_lines

        def sweep(name: str, n_lines: int) -> np.ndarray:
            addrs = stream_lines(sym[name], n_lines, line, cursor[name])
            cursor[name] += n_lines
            return addrs

        for _iteration in range(self.n_iterations):
            # --- Jacobian phase: a, b, c interleaved, d and u alongside.
            # Emit in a few chunks so sample intervals can fall inside it.
            chunks = 4
            for _ in range(chunks):
                abc = interleave(
                    sweep("a", jl // chunks),
                    sweep("b", jl // chunks),
                    sweep("c", (jl - jl // 90) // chunks),
                )
                yield self.block(intra_line_hits(abc, 1), label="jacld")
                yield self.block(
                    intra_line_hits(sweep("d", int(jl * 0.695) // chunks), 1),
                    label="jacd",
                )
            yield self.block(
                intra_line_hits(sweep("u", int(jl * 0.18)), 1), label="ssor-u"
            )
            # --- RHS phase: rsd hot, a/b/c completely silent.
            yield self.block(
                intra_line_hits(sweep("rsd", int(jl * 0.302)), 1), label="rhs"
            )
            yield self.block(
                intra_line_hits(sweep("frct", int(jl * 0.145)), 1), label="rhs-frct"
            )
            yield self.block(
                intra_line_hits(sweep("d", int(jl * 0.048)), 1), label="rhs-d"
            )
