"""mgrid model: multigrid solver (SPEC95 107.mgrid).

Table 1 structure being reproduced: three arrays — the solution U
(40.8%), the residual R (40.4%) and the right-hand side V (18.8%).
The access structure is a V-cycle: full-resolution sweeps interleaving U
and R, then progressively coarser strided sweeps (stride 2, 4, 8 lines)
of the same arrays, with V read at roughly half the volume. The strided
sweeps are what give mgrid its distinctive cache behaviour (every level
misses, since even the coarse strides exceed a cache line).
"""

from __future__ import annotations

from typing import Iterator

from repro.sim.blocks import ReferenceBlock
from repro.workloads.base import Workload
from repro.workloads.patterns import interleave, intra_line_hits, stream_lines, strided_lines


class Mgrid(Workload):
    name = "mgrid"
    cycles_per_ref = 37.0

    def __init__(
        self,
        scale: float = 1.0,
        seed: int | None = None,
        n_vcycles: int = 9,
        fine_lines: int = 16_000,
    ) -> None:
        super().__init__(scale=scale, seed=seed)
        self.n_vcycles = n_vcycles
        self.fine_lines = fine_lines

    def _declare(self) -> None:
        size = self.scaled(1024 * 1024)
        self.symbols.declare("U", size)
        self.symbols.declare("R", size)
        self.symbols.declare("V", self.scaled(512 * 1024))

    def _generate(self) -> Iterator[ReferenceBlock]:
        u, r, v = self.symbols["U"], self.symbols["R"], self.symbols["V"]
        line = 64
        cur_u = cur_r = cur_v = 0
        # Each V-cycle is emitted as interleaved sub-slices (fine sweep,
        # interpolation, restriction, coarse levels) so that a search or
        # sampling interval sees the cycle's full array mix rather than a
        # single kernel; applu, not mgrid, is the phase showcase.
        slices = 8
        for _cycle in range(self.n_vcycles):
            fine = self.fine_lines // slices
            touch = self.fine_lines // 40 // slices
            v_lines = int(self.fine_lines * 0.86) // slices
            for _ in range(slices):
                # Fine level: residual computation touches U and R together.
                fine_u = stream_lines(u, fine, line, cur_u)
                fine_r = stream_lines(r, fine, line, cur_r)
                cur_u += fine
                cur_r += fine
                yield self.block(
                    intra_line_hits(interleave(fine_u, fine_r), 3), label="resid"
                )
                # Interpolation touch-up writes U alone, nudging it just
                # above R overall (the paper measures 40.8% vs 40.4%).
                yield self.block(
                    intra_line_hits(stream_lines(u, touch, line, cur_u), 3),
                    label="interp",
                )
                cur_u += touch
                # RHS restriction reads V.
                yield self.block(
                    intra_line_hits(stream_lines(v, v_lines, line, cur_v), 3),
                    label="rprj",
                )
                cur_v += v_lines
                # Coarser levels: strided sweeps over U and R.
                for stride in (2, 4, 8):
                    count = self.fine_lines // stride // slices
                    yield self.block(
                        intra_line_hits(
                            interleave(
                                strided_lines(u, stride, count, line, cur_u),
                                strided_lines(r, stride, count, line, cur_r),
                            ),
                            3,
                        ),
                        label=f"coarse{stride}",
                    )
                    cur_u += count * stride
                    cur_r += count * stride
