"""tomcatv model: vectorised mesh generation (SPEC95 101.tomcatv).

Table 1 structure being reproduced: seven equal-sized mesh arrays with
miss shares RY 22.5%, RX 22.5%, AA 15%, DD/X/Y/D 10% each.

The kernel's defining behaviour for this study is the *strict
alternation* of RX and RY misses: the residual sweep touches RX(i,j) and
RY(i,j) together, so their misses interleave one-for-one. Section 3.1 of
the paper shows this resonates with an even sampling period (every sample
lands on the same array of the pair, skewing 22.5/22.5 into 37.1/17.6)
while a prime period samples both fairly. Row boundaries here shift the
interleave phase by the parity of the surrounding row blocks, giving the
partial (not total) resonance the paper observed.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.sim.blocks import ReferenceBlock
from repro.workloads.base import Workload
from repro.workloads.patterns import interleave, intra_line_hits, stream_lines

#: Per-row line volumes, proportional to Table 1 miss shares.
#: (RX and RY are emitted interleaved, so they appear once here.)
_ROW_LINES = {
    "RXRY": 180,  # 90 lines each of RX and RY, interleaved
    "AA": 60,
    "DD": 40,
    "X": 40,
    "Y": 40,
    "D": 40,
}


class Tomcatv(Workload):
    name = "tomcatv"
    cycles_per_ref = 24.0

    def __init__(
        self,
        scale: float = 1.0,
        seed: int | None = None,
        n_steps: int = 10,
        rows_per_step: int = 24,
    ) -> None:
        super().__init__(scale=scale, seed=seed)
        self.n_steps = n_steps
        self.rows_per_step = rows_per_step

    def _declare(self) -> None:
        size = self.scaled(768 * 1024)
        for array in ("AA", "DD", "X", "Y", "RX", "RY", "D"):
            self.symbols.declare(array, size)

    def _generate(self) -> Iterator[ReferenceBlock]:
        sym = self.symbols
        rx, ry = sym["RX"], sym["RY"]
        aa, dd = sym["AA"], sym["DD"]
        x, y, d = sym["X"], sym["Y"], sym["D"]
        line = 64
        cursor = {name: 0 for name in ("RX", "RY", "AA", "DD", "X", "Y", "D")}

        for _step in range(self.n_steps):
            for row in range(self.rows_per_step):
                # Residual sweep: RX and RY strictly interleaved.
                half = _ROW_LINES["RXRY"] // 2
                rx_part = stream_lines(rx, half, line, cursor["RX"])
                ry_part = stream_lines(ry, half, line, cursor["RY"])
                cursor["RX"] += half
                cursor["RY"] += half
                yield self.block(
                    intra_line_hits(interleave(rx_part, ry_part), 1),
                    label="residual",
                )
                # Coefficient rows. Mesh boundary handling makes the AA
                # sweep one line longer on an *irregular* cadence (rows 0
                # and 3 of every 12). Each odd-length row flips the parity
                # of the global miss sequence, so an even sampling period —
                # which always lands on the same member of the RX/RY pair
                # within a parity segment — favours one array for 9 rows
                # out of every 12 and the other for 3: the partial
                # resonance of section 3.1 (paper: 37.1% vs 17.6%).
                aa_lines = _ROW_LINES["AA"] + (1 if row % 12 in (0, 3) else 0)
                coeff = [stream_lines(aa, aa_lines, line, cursor["AA"])]
                cursor["AA"] += aa_lines
                for obj, key in ((dd, "DD"), (x, "X"), (y, "Y"), (d, "D")):
                    coeff.append(stream_lines(obj, _ROW_LINES[key], line, cursor[key]))
                    cursor[key] += _ROW_LINES[key]
                yield self.block(
                    intra_line_hits(np.concatenate(coeff), 1), label="coeff"
                )
