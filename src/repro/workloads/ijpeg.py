"""ijpeg model: JPEG compression (SPEC95 132.ijpeg).

Table 1 structure being reproduced, including the paper's heap-block
naming: the dominant object is a dynamically allocated image buffer the
paper identifies only by its base address, ``0x141020000`` (84.7% of
misses), with a second small heap block ``0x14101e000`` (0.5%), the
global ``jpeg_compressed_data`` output state (12.5%) and the tiny
always-cached ``std_chrominance_quant_tbl`` (~0.0%). The allocation
order below makes the blocks land at exactly those addresses.

ijpeg has the *lowest* miss rate of the suite — 144 misses per million
cycles — because DCT blocks are re-read many times while resident; this
is why Figure 3 shows ijpeg with the largest relative perturbation from
instrumentation (a fixed number of instrumentation misses is divided by
a small baseline).
"""

from __future__ import annotations

from typing import Iterator

from repro.sim.blocks import ReferenceBlock
from repro.workloads.base import Workload
from repro.workloads.patterns import intra_line_hits, repeat_window, stream_lines


class Ijpeg(Workload):
    name = "ijpeg"
    cycles_per_ref = 50.0

    def __init__(
        self,
        scale: float = 1.0,
        seed: int | None = None,
        image_lines: int = 60_000,
        rows_per_chunk: int = 600,
    ) -> None:
        super().__init__(scale=scale, seed=seed)
        self.image_lines = image_lines
        self.rows_per_chunk = rows_per_chunk

    def _declare(self) -> None:
        self.symbols.declare("jpeg_compressed_data", self.scaled(512 * 1024))
        self.symbols.declare("std_chrominance_quant_tbl", 4096, align=4096)
        self.symbols.declare("std_luminance_quant_tbl", 4096, align=4096)
        # Allocation order reproduces the paper's block addresses: a
        # 0x1e000-byte colormap lands at heap base 0x141000000, the next
        # block at 0x14101e000, and the image buffer at 0x141020000.
        self._colormap = self.heap.malloc(0x1E000, alloc_site="jinit_color")
        self._rowbuf = self.heap.malloc(0x2000, alloc_site="alloc_sarray")
        self._image = self.heap.malloc(
            self.scaled(2 * 1024 * 1024), alloc_site="alloc_image"
        )

    def _generate(self) -> Iterator[ReferenceBlock]:
        image = self._image
        rowbuf = self._rowbuf
        out = self.symbols["jpeg_compressed_data"]
        quant_c = self.symbols["std_chrominance_quant_tbl"]
        quant_l = self.symbols["std_luminance_quant_tbl"]
        line = 64
        cur_img = cur_out = 0
        done = 0
        while done < self.image_lines:
            take = min(self.rows_per_chunk, self.image_lines - done)
            done += take
            # DCT: each image line is read cold once, then revisited many
            # times at word granularity (the 8x8 block transform).
            img_addrs = stream_lines(image, take, line, cur_img)
            yield self.block(intra_line_hits(img_addrs, 47), label="dct")
            cur_img += take
            # Quantisation tables: tiny, always resident after first touch.
            yield self.block(
                repeat_window(quant_c, 32, max(1, take // 8), line), label="quant"
            )
            yield self.block(
                repeat_window(quant_l, 32, max(1, take // 8), line), label="quant"
            )
            # Row staging buffer: small, heavily reused (hits; rare misses).
            yield self.block(
                repeat_window(rowbuf, rowbuf.size // line, 4, line), label="rowbuf"
            )
            # Entropy-coded output: ~0.147x the image miss volume.
            out_take = max(1, int(take * 0.147))
            out_addrs = stream_lines(out, out_take, line, cur_out)
            yield self.block(intra_line_hits(out_addrs, 23), label="emit")
            cur_out += out_take
