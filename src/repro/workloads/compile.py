"""Stream compilation: lower a workload into frozen reference arrays.

A workload's :meth:`~repro.workloads.base.Workload.blocks` generator is a
deterministic function of its constructor parameters, but replaying it is
pure-Python work — loop bookkeeping, address arithmetic, array assembly —
that the engine pays again on every run. :func:`compile_workload` runs
the generator **once** and captures the result as a
:class:`CompiledStream`: the same :class:`~repro.sim.blocks.ReferenceBlock`
sequence, with every address/write array materialised, made contiguous
and frozen read-only. A session driven from a compiled stream
(``SimulationSession.start(..., compiled=...)``) skips the generator
entirely and — when no tools/observers need per-chunk interleaving —
feeds the cache in bulk, which is where the end-to-end speedup comes
from (see DESIGN.md section 9).

Compiled streams are *bit-identity preserving* by construction: they are
the very arrays the generator produced, and the session replays the
generator path's chunk boundaries wherever those boundaries are
observable (RANDOM-policy eviction pools, cycle-carry rounding).

Two safety rules keep compilation honest:

* a workload class can opt out via ``compiled_stream_safe = False`` when
  its generator is *supposed* to mutate the substrate mid-stream (heap
  churn); replaying such a stream from arrays would leave the object map
  without the churned objects, silently skewing ground-truth attribution;
* even for opted-in classes, :func:`compile_workload` watches the heap
  allocator while the generator runs and refuses (``StreamCompileError``)
  if any alloc/free fires — the dynamic guard catches workloads whose
  churn the static flag missed.

Cache layout: streams are content-addressed by :func:`stream_fingerprint`
— workload class, every constructor parameter read back off the instance,
and the repository code-version tag — so any edit to workload/sim sources
invalidates cached streams exactly like it invalidates cached results.
``reprolint`` rules RPL601/RPL602 pin the fingerprint payload and the
parameter round-trip convention this relies on.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

import numpy as np

from repro.errors import WorkloadError
from repro.sim.blocks import ReferenceBlock

if TYPE_CHECKING:  # pragma: no cover
    from repro.workloads.base import Workload

#: Bumped whenever the CompiledStream layout changes, so stale cache
#: entries are recompiled rather than misread.
STREAM_FORMAT_VERSION = 1

#: Target number of references per fused group when block boundaries are
#: not observable (LRU/FIFO at every cache level). Groups never split a
#: block; they close at the first block that reaches the target.
FUSE_TARGET_REFS = 1 << 17


class StreamCompileError(WorkloadError):
    """Raised when a workload cannot be lowered to a compiled stream."""


# ------------------------------------------------------------ fingerprint

def workload_params(workload: "Workload") -> dict[str, object]:
    """Constructor parameters of ``workload``, read back off the instance.

    Every ``__init__`` parameter must round-trip through an instance
    attribute of the same name (the convention reprolint RPL602 enforces
    on workload classes); a parameter that does not is an error here —
    silently omitting it would let two different streams share one
    fingerprint.
    """
    cls = type(workload)
    params: dict[str, object] = {}
    for name, param in inspect.signature(cls.__init__).parameters.items():
        if name == "self":
            continue
        if param.kind in (param.VAR_POSITIONAL, param.VAR_KEYWORD):
            raise StreamCompileError(
                f"{cls.__name__}.__init__ uses *args/**kwargs; its streams "
                "cannot be content-addressed by parameters"
            )
        try:
            params[name] = getattr(workload, name)
        except AttributeError:
            raise StreamCompileError(
                f"{cls.__name__} does not store constructor parameter "
                f"{name!r} as an attribute; stream fingerprints require "
                "the parameter round-trip convention (RPL602)"
            ) from None
    return params


def stream_fingerprint(workload: "Workload") -> str:
    """Content address of ``workload``'s compiled reference stream.

    Keyed by the workload class, every constructor parameter and the
    repository code-version tag, so both parameter changes and source
    edits (workloads/, sim/, memory/ …) produce fresh streams. The
    payload keys are pinned by reprolint rule RPL601.
    """
    from repro.experiments.cache_store import code_version_tag, stable_hash

    payload = {
        "kind": "compiled-stream",
        "format": STREAM_FORMAT_VERSION,
        "workload": workload.name,
        "class": f"{type(workload).__module__}.{type(workload).__qualname__}",
        "params": workload_params(workload),
        "version": code_version_tag(),
    }
    return stable_hash(payload)


# --------------------------------------------------------- compiled stream

@dataclass(frozen=True)
class CompiledStream:
    """A workload's full reference stream, materialised and frozen.

    ``blocks`` are ordinary :class:`ReferenceBlock` objects whose arrays
    are read-only copies of what the generator produced; ``fingerprint``
    is the content address the stream was compiled under, which sessions
    verify against the workload they are asked to drive.
    """

    workload_name: str
    fingerprint: str
    blocks: tuple[ReferenceBlock, ...]
    n_refs: int

    def __len__(self) -> int:
        return self.n_refs

    def iter_blocks(self) -> Iterator[ReferenceBlock]:
        return iter(self.blocks)

    def fused_groups(
        self, chunk_invariant: bool, fuse_target: int = FUSE_TARGET_REFS
    ) -> Iterator[tuple[np.ndarray, np.ndarray | None, list[tuple[int, float, int]]]]:
        """Yield ``(addrs, writes, pieces)`` groups for the bulk path.

        ``pieces`` lists ``(n_refs, cycles_per_ref, extra_cycles)`` per
        source block so the session can replay the generator path's
        cycle-carry arithmetic exactly. When ``chunk_invariant`` is False
        (a RANDOM-replacement level exists, whose eviction-pool refills
        observe chunk lengths) every block is its own group and the
        caller must additionally slice it in ``chunk_size`` pieces; when
        True, consecutive blocks fuse up to ``fuse_target`` references —
        groups split where write-mask presence flips so read-only blocks
        stay on the kernels' fast path.
        """
        if not chunk_invariant:
            for b in self.blocks:
                yield b.addrs, b.writes, [_piece(b)]
            return
        group: list[ReferenceBlock] = []
        size = 0
        for b in self.blocks:
            if group and (
                size >= fuse_target
                or (group[0].writes is None) != (b.writes is None)
            ):
                yield _emit(group)
                group, size = [], 0
            group.append(b)
            size += len(b)
        if group:
            yield _emit(group)


def _piece(block: ReferenceBlock) -> tuple[int, float, int]:
    return (len(block.addrs), block.cycles_per_ref, block.extra_cycles)


def _emit(
    group: list[ReferenceBlock],
) -> tuple[np.ndarray, np.ndarray | None, list[tuple[int, float, int]]]:
    if len(group) == 1:
        b = group[0]
        return b.addrs, b.writes, [_piece(b)]
    addrs = np.concatenate([b.addrs for b in group])
    writes = None
    if group[0].writes is not None:
        writes = np.concatenate([b.writes for b in group])
    return addrs, writes, [_piece(b) for b in group]


def _frozen_copy(arr: np.ndarray | None, dtype) -> np.ndarray | None:
    if arr is None:
        return None
    out = np.ascontiguousarray(arr, dtype=dtype).copy()
    out.setflags(write=False)
    return out


def _freeze(stream: CompiledStream) -> CompiledStream:
    """Re-assert read-only flags (pickle round-trips drop them)."""
    for b in stream.blocks:
        b.addrs.setflags(write=False)
        if b.writes is not None:
            b.writes.setflags(write=False)
    return stream


# --------------------------------------------------------------- compiler

def compile_workload(
    workload: "Workload", fingerprint: str | None = None
) -> CompiledStream:
    """Run ``workload``'s generator once and capture it as arrays.

    The workload is reset afterwards, so the caller can immediately start
    a (compiled or generator) session over the same instance. Raises
    :class:`StreamCompileError` for classes that opt out via
    ``compiled_stream_safe = False`` and for any workload whose generator
    touches the heap allocator mid-stream.
    """
    cls = type(workload)
    if not getattr(cls, "compiled_stream_safe", True):
        raise StreamCompileError(
            f"{cls.__name__} is marked compiled_stream_safe=False "
            "(its generator mutates the substrate mid-stream); run it "
            "through the generator path instead"
        )
    if fingerprint is None:
        fingerprint = stream_fingerprint(workload)
    if workload.consumed:
        workload.reset()
    workload.prepare()

    churn: list[str] = []
    workload.heap.add_observer(lambda event, obj: churn.append(event))
    blocks: list[ReferenceBlock] = []
    n_refs = 0
    for b in workload.blocks():
        if churn:
            workload.reset()
            raise StreamCompileError(
                f"{cls.__name__} performed heap {churn[0]} while "
                "generating its stream; compiled replay would desync "
                "ground-truth attribution (set compiled_stream_safe=False)"
            )
        frozen = ReferenceBlock(
            addrs=_frozen_copy(b.addrs, np.uint64),
            cycles_per_ref=b.cycles_per_ref,
            writes=_frozen_copy(b.writes, bool),
            label=b.label,
            extra_cycles=b.extra_cycles,
        )
        # __post_init__'s ascontiguousarray is a no-op on an already
        # contiguous same-dtype array, so the flags survive construction.
        frozen.addrs.setflags(write=False)
        blocks.append(frozen)
        n_refs += len(frozen)
    if churn:
        workload.reset()
        raise StreamCompileError(
            f"{cls.__name__} performed heap {churn[0]} while generating "
            "its stream; compiled replay would desync ground-truth "
            "attribution (set compiled_stream_safe=False)"
        )
    # Drop the churn-guard observer (and generator cursor state) so the
    # next session over this instance sees a pristine substrate.
    workload.reset()
    return CompiledStream(
        workload_name=workload.name,
        fingerprint=fingerprint,
        blocks=tuple(blocks),
        n_refs=n_refs,
    )


def offset_stream(stream: CompiledStream, offset: int) -> CompiledStream:
    """``stream`` relocated by ``offset`` bytes (multi-core namespaces).

    Every address a workload generates is segment-base arithmetic, and
    ``Workload.address_offset`` shifts every segment base wholesale — so
    shifting a compiled stream's addresses is exactly the stream the
    offset workload would compile to (a test pins this equivalence).
    Done here, co-runners share one cached compilation of the unoffset
    stream instead of compiling (and caching) once per core slot; the
    fingerprint is kept because ``address_offset`` is deliberately not a
    fingerprinted constructor parameter (see
    :attr:`repro.workloads.base.Workload.address_offset`).
    """
    if offset == 0:
        return stream
    if offset < 0:
        raise StreamCompileError(f"stream offset must be >= 0, got {offset:#x}")
    shifted: list[ReferenceBlock] = []
    for b in stream.blocks:
        block = ReferenceBlock(
            addrs=b.addrs + np.uint64(offset),
            cycles_per_ref=b.cycles_per_ref,
            writes=b.writes,
            label=b.label,
            extra_cycles=b.extra_cycles,
        )
        block.addrs.setflags(write=False)
        shifted.append(block)
    return CompiledStream(
        workload_name=stream.workload_name,
        fingerprint=stream.fingerprint,
        blocks=tuple(shifted),
        n_refs=stream.n_refs,
    )


def compiled_stream_for(
    workload: "Workload", cache_dir: str | Path | None = None
) -> CompiledStream:
    """Compiled stream for ``workload``, via the on-disk stream cache.

    ``cache_dir`` is the experiments cache root (e.g. ``.repro-cache``);
    streams live under ``<cache_dir>/streams`` in the same
    content-addressed pickle layout as cached results. ``None`` compiles
    without caching.
    """
    fingerprint = stream_fingerprint(workload)
    if cache_dir is None:
        return compile_workload(workload, fingerprint=fingerprint)
    from repro.experiments.cache_store import ResultCache

    store = ResultCache(Path(cache_dir) / "streams")
    hit = store.get(fingerprint)
    if isinstance(hit, CompiledStream) and hit.fingerprint == fingerprint:
        return _freeze(hit)
    compiled = compile_workload(workload, fingerprint=fingerprint)
    store.put(fingerprint, compiled)
    return compiled
