"""Workload models standing in for the paper's SPEC95 applications.

The original study ran ATOM-instrumented Alpha binaries of tomcatv,
su2cor, applu, swim, mgrid, compress and ijpeg. Those binaries and inputs
are not reproducible offline, so each application is modelled as a
synthetic reference-stream generator that declares the same named data
structures and reproduces the published *behavioural structure*: per-object
miss shares (Table 1), relative miss rates (section 3.2), phase behaviour
(Figure 5, applu), access-pattern drift (section 3.4, su2cor) and the
interleaving that produces sampling resonance (section 3.1, tomcatv).
DESIGN.md section 2 records the substitution rationale.
"""

from repro.workloads.base import Workload
from repro.workloads.patterns import (
    interleave,
    random_lines,
    repeat_window,
    stream_lines,
    strided_lines,
)
from repro.workloads.tomcatv import Tomcatv
from repro.workloads.swim import Swim
from repro.workloads.su2cor import Su2cor
from repro.workloads.mgrid import Mgrid
from repro.workloads.applu import Applu
from repro.workloads.compress_ import Compress
from repro.workloads.ijpeg import Ijpeg
from repro.workloads.synthetic import FigureTwoLayout, SyntheticStreams, TreeChaser
from repro.workloads.trace import RecursiveCalls, TraceWorkload
from repro.workloads.registry import SPEC_WORKLOADS, make_workload, workload_names

__all__ = [
    "Workload",
    "interleave",
    "stream_lines",
    "strided_lines",
    "repeat_window",
    "random_lines",
    "Tomcatv",
    "Swim",
    "Su2cor",
    "Mgrid",
    "Applu",
    "Compress",
    "Ijpeg",
    "SyntheticStreams",
    "FigureTwoLayout",
    "TreeChaser",
    "TraceWorkload",
    "RecursiveCalls",
    "SPEC_WORKLOADS",
    "make_workload",
    "workload_names",
]
