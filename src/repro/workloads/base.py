"""Workload base class: a deterministic reference-stream generator bound
to its own simulated address space.

A workload owns the full memory substrate for one application — address
space, symbol table, heap allocator, object map, stack model — and yields
:class:`ReferenceBlock` chunks from :meth:`blocks`. Subclasses implement
:meth:`_declare` (lay out the application's data structures) and
:meth:`_generate` (emit the reference stream).
"""

from __future__ import annotations

import abc
from typing import Iterator

import numpy as np

from repro.errors import WorkloadError
from repro.memory.address_space import AddressSpace
from repro.memory.allocator import HeapAllocator
from repro.memory.object_map import ObjectMap
from repro.memory.stack import StackModel
from repro.memory.symbol_table import SymbolTable
from repro.sim.blocks import ReferenceBlock


class Workload(abc.ABC):
    """Base for all application models.

    ``scale`` multiplies data-structure sizes (1.0 targets a 256 KiB
    cache; use ~8.0 with the paper's 2 MB geometry). ``seed`` fixes any
    stochastic access decisions so runs are exactly reproducible.
    """

    name = "workload"
    #: Non-memory cycles charged per reference (sets the app's
    #: misses-per-Mcycle band; see DESIGN.md on miss-rate calibration).
    cycles_per_ref: float = 5.0
    #: Whether the reference stream may be lowered to frozen arrays by
    #: :mod:`repro.workloads.compile`. Set False on workloads whose
    #: generator mutates the substrate mid-stream (heap churn): replaying
    #: their stream from arrays would desync ground-truth attribution.
    #: A dynamic guard in the compiler backstops this flag.
    compiled_stream_safe: bool = True
    #: Whether the workload is valid under mechanism x size sweeps
    #: (``repro mechanisms``): its reference stream must not depend on
    #: the cache configuration it runs against. True for every stream
    #: that is a pure function of (constructor kwargs, seed) — which is
    #: all of them today; the flag exists so a future feedback-directed
    #: workload can opt out instead of silently invalidating the sweep's
    #: "identical stream" subtraction.
    mechanism_sweep_safe: bool = True

    def __init__(self, scale: float = 1.0, seed: int | None = None) -> None:
        if scale <= 0:
            raise WorkloadError(f"scale must be positive, got {scale}")
        self.scale = scale
        self.seed = seed
        #: Base-address shift applied to the whole substrate at
        #: :meth:`prepare` time. Deliberately *not* a constructor
        #: parameter: the reference stream is a pure function of
        #: (kwargs, seed) and the offset is a relocation of that same
        #: stream, so compiled-stream fingerprints (RPL601/602) stay
        #: offset-free and multi-core sessions can share one compiled
        #: stream across cores. Set by `MultiCoreSession` before prepare.
        self.address_offset: int = 0
        self._prepared = False
        self._consumed = False
        self.address_space: AddressSpace | None = None
        self.symbols: SymbolTable | None = None
        self.object_map: ObjectMap | None = None
        self.heap: HeapAllocator | None = None
        self.stack: StackModel | None = None

    # ------------------------------------------------------------- lifecycle

    def prepare(self) -> None:
        """Build the memory substrate and lay out data structures (idempotent)."""
        if self._prepared:
            return
        self.address_space = AddressSpace.with_offset(self.address_offset)
        self.symbols = SymbolTable(self.address_space.data)
        self.object_map = ObjectMap()
        self.heap = HeapAllocator(self.address_space.heap)
        self.heap.add_observer(self.object_map.observe_alloc)
        self.stack = StackModel(self.address_space.stack, self.object_map)
        self._declare()
        self.object_map.add_globals(self.symbols.objects)
        self.object_map.freeze_globals()
        self._prepared = True

    def blocks(self) -> Iterator[ReferenceBlock]:
        """The application's reference stream (prepares on first use).

        Opening the stream marks the instance *consumed*: generators may
        mutate the substrate as they run (heap churn, cursor state), so a
        second run over the same instance must :meth:`reset` first to see
        the same stream again. The engine does this automatically.
        """
        self.prepare()
        self._consumed = True
        return self._generate()

    @property
    def consumed(self) -> bool:
        """True once :meth:`blocks` has been opened since the last reset."""
        return self._consumed

    def reset(self) -> None:
        """Tear down the substrate so the next run is a deterministic replay.

        Rebuilding from scratch (rather than trying to undo generator side
        effects) guarantees run-twice == run-once-twice: every run sees a
        freshly declared address space, heap and object map.
        """
        self._prepared = False
        self._consumed = False
        self.address_space = None
        self.symbols = None
        self.object_map = None
        self.heap = None
        self.stack = None
        self._on_reset()

    # ------------------------------------------------------------- subclass

    @abc.abstractmethod
    def _declare(self) -> None:
        """Declare globals / perform startup heap allocations."""

    @abc.abstractmethod
    def _generate(self) -> Iterator[ReferenceBlock]:
        """Yield the reference stream."""

    def _on_reset(self) -> None:
        """Hook for subclasses holding state outside the substrate
        (e.g. lists of heap handles) to clear it on :meth:`reset`."""

    # --------------------------------------------------------------- helpers

    def scaled(self, nbytes: int, align: int = 4096) -> int:
        """Scale a byte size and round up to ``align``."""
        value = int(nbytes * self.scale)
        return max(align, (value + align - 1) & ~(align - 1))

    def block(self, addrs: np.ndarray, label: str = "", extra_cycles: int = 0) -> ReferenceBlock:
        """Wrap an address array in a block with this workload's cycle cost."""
        return ReferenceBlock(
            addrs=addrs,
            cycles_per_ref=self.cycles_per_ref,
            label=label,
            extra_cycles=extra_cycles,
        )

    def describe(self) -> str:
        self.prepare()
        objs = self.object_map.all_objects()
        total = sum(o.size for o in objs)
        return (
            f"{self.name}: {len(objs)} objects, {total / 1024:.0f} KiB data, "
            f"cycles/ref={self.cycles_per_ref}"
        )
