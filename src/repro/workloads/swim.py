"""swim model: shallow-water equations (SPEC95 102.swim).

Table 1/2 structure being reproduced: thirteen equal-sized grid arrays
each causing ~7.7% of the misses — a near-perfect tie, which is why the
paper's sampling and search runs rank them in different (all equally
valid) orders. The stream interleaves the arrays in the groups the
real kernel touches together (calc1: CU/CV/Z/H from U/V/P; calc2:
UNEW/VNEW/PNEW; calc3: the OLD copies).
"""

from __future__ import annotations

from typing import Iterator

from repro.sim.blocks import ReferenceBlock
from repro.workloads.base import Workload
from repro.workloads.patterns import interleave, intra_line_hits, stream_lines

_ARRAYS = [
    "U", "V", "P",
    "UNEW", "VNEW", "PNEW",
    "UOLD", "VOLD", "POLD",
    "CU", "CV", "Z", "H",
]

#: The kernel's array groupings: each step sweeps these tuples together.
_GROUPS = [
    ("CU", "CV", "Z", "H"),
    ("U", "V", "P"),
    ("UNEW", "VNEW", "PNEW"),
    ("UOLD", "VOLD", "POLD"),
]


class Swim(Workload):
    name = "swim"
    cycles_per_ref = 30.0

    def __init__(
        self,
        scale: float = 1.0,
        seed: int | None = None,
        n_steps: int = 9,
        lines_per_array_per_step: int = 3200,
    ) -> None:
        super().__init__(scale=scale, seed=seed)
        self.n_steps = n_steps
        self.lines_per_array_per_step = lines_per_array_per_step

    def _declare(self) -> None:
        size = self.scaled(640 * 1024)
        for array in _ARRAYS:
            self.symbols.declare(array, size)

    def _generate(self) -> Iterator[ReferenceBlock]:
        line = 64
        cursor = {name: 0 for name in _ARRAYS}
        chunk = 400  # lines per array per emitted block
        for _step in range(self.n_steps):
            remaining = self.lines_per_array_per_step
            while remaining > 0:
                take = min(chunk, remaining)
                for group in _GROUPS:
                    streams = []
                    for name in group:
                        streams.append(
                            stream_lines(self.symbols[name], take, line, cursor[name])
                        )
                        cursor[name] += take
                    yield self.block(
                        intra_line_hits(interleave(*streams), 1),
                        label=f"calc:{'+'.join(group)}",
                    )
                remaining -= take
