"""compress model: LZW text compression (SPEC95 129.compress).

Table 1 structure being reproduced: the input buffer orig_text_buffer
(63.0%), the output buffer comp_text_buffer (35.6%), and the hash tables
htab (1.3%) and codetab (0.2%). Unlike the floating-point codes, compress
is integer/bit-twiddling work with a *low* miss rate — the paper reports
361 misses per million cycles (second lowest after ijpeg) — so most
references here hit: the hash tables are probed mostly within a
cache-resident hot set, and every buffer line is touched many times at
word granularity while only the first touch misses. The high
``cycles_per_ref`` models the heavy non-memory instruction mix.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.sim.blocks import ReferenceBlock
from repro.util.rng import make_rng
from repro.workloads.base import Workload
from repro.workloads.patterns import intra_line_hits, random_lines, stream_lines


class Compress(Workload):
    name = "compress"
    cycles_per_ref = 45.0

    def __init__(
        self,
        scale: float = 1.0,
        seed: int | None = None,
        input_lines: int = 90_000,
        chunk_lines: int = 1_000,
    ) -> None:
        super().__init__(scale=scale, seed=seed)
        self.input_lines = input_lines
        self.chunk_lines = chunk_lines

    def _declare(self) -> None:
        self.symbols.declare("orig_text_buffer", self.scaled(1024 * 1024))
        self.symbols.declare("comp_text_buffer", self.scaled(768 * 1024))
        # htab is sized near the cache so its cold/conflict misses are a
        # small but non-zero share (paper: 1.3%).
        self.symbols.declare("htab", self.scaled(256 * 1024))
        self.symbols.declare("codetab", self.scaled(64 * 1024))

    def _generate(self) -> Iterator[ReferenceBlock]:
        rng = make_rng(self.seed)
        sym = self.symbols
        orig, comp = sym["orig_text_buffer"], sym["comp_text_buffer"]
        htab, codetab = sym["htab"], sym["codetab"]
        line = 64
        cur_in = cur_out = 0
        done = 0
        while done < self.input_lines:
            take = min(self.chunk_lines, self.input_lines - done)
            done += take
            # Read the input chunk: each line's bytes are consumed one by
            # one (many same-line hits per cold miss).
            in_addrs = stream_lines(orig, take, line, cur_in)
            yield self.block(intra_line_hits(in_addrs, 15), label="read")
            cur_in += take
            # Hash-table probes: mostly a hot, cache-resident subset (hits)
            # plus a cold strided component producing the small miss share.
            probes = random_lines(
                htab, take * 3, rng, line, hot_fraction=0.995, hot_lines=64
            )
            yield self.block(probes, label="hash")
            code_probes = random_lines(
                codetab, take * 2, rng, line, hot_fraction=0.999, hot_lines=32
            )
            yield self.block(code_probes, label="code")
            # Emit compressed output at ~0.565x the input volume.
            out_take = int(take * 0.565)
            out_addrs = stream_lines(comp, out_take, line, cur_out)
            yield self.block(intra_line_hits(out_addrs, 15), label="write")
            cur_out += out_take
