"""Trace-driven workload: replay a recorded reference stream.

Lets a user feed the profiling techniques a stream captured elsewhere —
a trace saved by :func:`repro.sim.trace_io.save_trace`, or one converted
from an external tool — while still declaring the memory objects the
addresses belong to (the profilers cannot attribute without an object
map).

**Trace file format** (the contract external converters target; the
reference implementation is :mod:`repro.sim.trace_io`): a compressed
NumPy ``.npz`` archive holding

* ``manifest`` — a ``uint8`` array of UTF-8 JSON:
  ``{"version": 1, "blocks": [<block-meta>, ...]}`` where each
  block-meta is ``{"cycles_per_ref": float, "label": str|null,
  "extra_cycles": int, "has_writes": bool}``, in stream order;
* ``addrs_<i>`` — one ``uint64`` array of *byte* addresses per block
  (virtual addresses in the simulated layout; line splitting happens at
  simulation time from the cache config, so traces are line-size
  agnostic);
* ``writes_<i>`` — a ``bool`` array parallel to ``addrs_<i>``, present
  exactly when block ``i``'s meta says ``has_writes`` (absent means an
  all-read block).

``version`` gates compatibility: readers reject any other value rather
than guessing. A write -> read round trip is exact
(``tests/workloads/test_trace_roundtrip.py`` pins it).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

from repro.errors import WorkloadError
from repro.sim.blocks import ReferenceBlock
from repro.sim.trace_io import load_trace
from repro.workloads.base import Workload


class TraceWorkload(Workload):
    """Replays blocks from a trace file (or an in-memory block list).

    ``layout`` declares the named variables the trace's addresses fall
    into: ``{"name": (base, size)}``. Bases must lie inside the standard
    data segment (globals) or heap segment (blocks are then registered
    through the allocator so heap-map code paths are exercised).
    """

    name = "trace"
    #: A replayed trace is already array-backed, and an arbitrary user
    #: trace (file path or in-memory blocks) cannot be content-addressed
    #: by constructor parameters — so stream compilation is opted out
    #: rather than fingerprinted unsoundly (see RPL602).
    compiled_stream_safe = False
    #: Recorded traces are frozen address streams: replaying one against
    #: a decorated stack cannot feed back into the stream, so mechanism
    #: x size sweeps over traces are sound even though compilation is
    #: not (the marker ROADMAP item 4's trace ingestion relies on).
    mechanism_sweep_safe = True

    def __init__(
        self,
        trace: str | Path | list[ReferenceBlock],
        layout: dict[str, tuple[int, int]],
        seed: int | None = None,
    ) -> None:
        super().__init__(seed=seed)
        if not layout:
            raise WorkloadError("trace workload needs at least one declared object")
        self._trace_source = trace
        self.layout = dict(layout)
        self._blocks: list[ReferenceBlock] | None = (
            list(trace) if isinstance(trace, list) else None
        )

    def _declare(self) -> None:
        data = self.address_space.data
        heap = self.address_space.heap
        # Declare objects at their exact recorded addresses. The symbol
        # table lays variables out itself, so exact placement goes through
        # the object map directly for data-segment objects and through a
        # placement-checked malloc for heap ones.
        from repro.memory.objects import MemoryObject, ObjectKind

        for name, (base, size) in sorted(self.layout.items(), key=lambda kv: kv[1][0]):
            if data.contains(base):
                self.object_map.add_global(
                    MemoryObject(name=name, base=base, size=size, kind=ObjectKind.GLOBAL)
                )
            elif heap.contains(base):
                # Reproduce the block via the allocator when it lands where
                # first-fit would put it; otherwise register it directly.
                blk = self.heap.malloc(size, name=name)
                if blk.base != base:
                    self.heap.free(blk)
                    self.object_map.observe_alloc(
                        "alloc",
                        MemoryObject(
                            name=name, base=base, size=size, kind=ObjectKind.HEAP
                        ),
                    )
            else:
                raise WorkloadError(
                    f"object {name!r} at {base:#x} is outside the data and "
                    "heap segments"
                )

    def _generate(self) -> Iterator[ReferenceBlock]:
        if self._blocks is None:
            self._blocks = load_trace(self._trace_source)
        yield from self._blocks


class RecursiveCalls(Workload):
    """A recursive kernel exercising the stack model (paper section 5).

    ``fib``-style recursion to ``depth``: every activation allocates the
    locals ``frame_buf`` (a scratch array) and ``acc`` on the simulated
    stack and touches them, plus a shared global table. All instances of
    a local share one aggregation name (``fib:frame_buf``), so sampling
    attributes the whole recursion's stack traffic to two source-level
    variables — the paper's proposed aggregation, working end-to-end.
    """

    name = "recursive"
    cycles_per_ref = 10.0

    def __init__(
        self,
        scale: float = 1.0,
        seed: int | None = None,
        depth: int = 12,
        repeats: int = 30,
        buf_bytes: int = 8192,
    ) -> None:
        super().__init__(scale=scale, seed=seed)
        self.depth = depth
        self.repeats = repeats
        self.buf_bytes = buf_bytes

    def _declare(self) -> None:
        self.symbols.declare("memo_table", self.scaled(512 * 1024))

    def _descend(self, level: int) -> Iterator[ReferenceBlock]:
        import numpy as np

        frame = self.stack.push_frame(
            "fib", {"frame_buf": self.buf_bytes, "acc": 64}
        )
        buf = frame.locals[0]
        acc = frame.locals[1]
        # Touch the frame buffer (line stride) and the accumulator.
        buf_addrs = np.arange(buf.base, buf.end, 64, dtype=np.uint64)
        acc_addrs = np.full(4, acc.base, dtype=np.uint64)
        yield ReferenceBlock(
            addrs=np.concatenate([buf_addrs, acc_addrs]),
            cycles_per_ref=self.cycles_per_ref,
            label=f"fib[{level}]",
        )
        # Global memo probe.
        memo = self.symbols["memo_table"]
        yield ReferenceBlock(
            addrs=np.arange(memo.base, memo.base + 64 * 32, 64, dtype=np.uint64)
            + np.uint64((level * 4096) % max(64, memo.size - 64 * 32)),
            cycles_per_ref=self.cycles_per_ref,
            label="memo",
        )
        if level > 0:
            yield from self._descend(level - 1)
        self.stack.pop_frame()

    def _generate(self) -> Iterator[ReferenceBlock]:
        for _ in range(self.repeats):
            yield from self._descend(self.depth)
