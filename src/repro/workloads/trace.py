"""Trace-driven workload: replay a recorded reference stream.

Lets a user feed the profiling techniques a stream captured elsewhere —
a trace saved by :func:`repro.sim.trace_io.save_trace`, or one converted
from an external tool — while still declaring the memory objects the
addresses belong to (the profilers cannot attribute without an object
map).

**Trace file format** (the contract external converters target; the
reference implementation is :mod:`repro.sim.trace_io`): a compressed
NumPy ``.npz`` archive holding

* ``manifest`` — a ``uint8`` array of UTF-8 JSON:
  ``{"version": 1, "blocks": [<block-meta>, ...]}`` where each
  block-meta is ``{"cycles_per_ref": float, "label": str|null,
  "extra_cycles": int, "has_writes": bool}``, in stream order;
* ``addrs_<i>`` — one ``uint64`` array of *byte* addresses per block
  (virtual addresses in the simulated layout; line splitting happens at
  simulation time from the cache config, so traces are line-size
  agnostic);
* ``writes_<i>`` — a ``bool`` array parallel to ``addrs_<i>``, present
  exactly when block ``i``'s meta says ``has_writes`` (absent means an
  all-read block).

``version`` gates compatibility: readers reject any other value rather
than guessing. A write -> read round trip is exact
(``tests/workloads/test_trace_roundtrip.py`` pins it).
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.errors import WorkloadError
from repro.sim.blocks import ReferenceBlock
from repro.sim.trace_io import TraceError, load_trace, save_trace
from repro.workloads.base import Workload

#: References per block when chunking a flat text trace (one block per
#: chunk keeps replay memory bounded for arbitrarily long captures).
TEXT_TRACE_BLOCK_REFS = 1 << 16

_GZIP_MAGIC = b"\x1f\x8b"
_ZIP_MAGIC = b"PK"


def sniff_trace_format(path: "str | Path") -> str:
    """Identify a trace file by content, never by extension.

    Returns one of ``"npz"`` (the canonical :mod:`repro.sim.trace_io`
    archive), ``"npz.gz"`` (the same archive gzip-compressed), ``"text"``
    (one ``R|W <address>`` line per reference) or ``"text.gz"``.
    """
    path = Path(path)
    try:
        with path.open("rb") as fh:
            head = fh.read(2)
    except OSError as exc:
        raise TraceError(f"cannot read trace {path}: {exc}") from exc
    if head == _ZIP_MAGIC:
        return "npz"
    if head == _GZIP_MAGIC:
        try:
            with gzip.open(path, "rb") as fh:
                inner = fh.read(2)
        except OSError as exc:
            raise TraceError(f"corrupt gzip trace {path}: {exc}") from exc
        return "npz.gz" if inner == _ZIP_MAGIC else "text.gz"
    return "text"


def read_text_trace(
    source, cycles_per_ref: float = 1.0, block_refs: int = TEXT_TRACE_BLOCK_REFS
) -> list[ReferenceBlock]:
    """Parse a text address trace into reference blocks.

    The text format external capture tools most easily emit: one
    reference per line as ``R <address>`` or ``W <address>`` (hex with a
    ``0x`` prefix, or decimal), with ``#`` comments and blank lines
    ignored. ``source`` is a path or an open text file. The flat stream
    is chunked into blocks of ``block_refs`` references; write masks are
    attached only to blocks that contain at least one ``W`` line.
    """
    if block_refs <= 0:
        raise TraceError(f"block_refs must be positive, got {block_refs}")
    if hasattr(source, "read"):
        lines = source
        name = getattr(source, "name", "<trace>")
    else:
        lines = Path(source).open("r", encoding="utf-8")
        name = str(source)
    addrs: list[int] = []
    writes: list[bool] = []
    blocks: list[ReferenceBlock] = []

    def flush() -> None:
        if not addrs:
            return
        arr = np.array(addrs, dtype=np.uint64)
        mask = np.array(writes, dtype=bool) if any(writes) else None
        blocks.append(
            ReferenceBlock(
                addrs=arr,
                cycles_per_ref=cycles_per_ref,
                writes=mask,
                label=f"text[{len(blocks)}]",
            )
        )
        addrs.clear()
        writes.clear()

    try:
        for lineno, raw in enumerate(lines, start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) != 2 or parts[0].upper() not in ("R", "W"):
                raise TraceError(
                    f"{name}:{lineno}: expected 'R <addr>' or 'W <addr>', "
                    f"got {raw.strip()!r}"
                )
            try:
                addr = int(parts[1], 0)
            except ValueError:
                raise TraceError(
                    f"{name}:{lineno}: bad address {parts[1]!r}"
                ) from None
            if addr < 0:
                raise TraceError(f"{name}:{lineno}: negative address {addr}")
            addrs.append(addr)
            writes.append(parts[0].upper() == "W")
            if len(addrs) >= block_refs:
                flush()
    finally:
        if not hasattr(source, "read"):
            lines.close()
    flush()
    if not blocks:
        raise TraceError(f"{name}: trace contains no references")
    return blocks


def load_any_trace(path: "str | Path") -> list[ReferenceBlock]:
    """Load a trace in any supported format (content-sniffed).

    Canonical ``.npz`` archives load directly; gzip'd archives are
    decompressed in memory first; text traces (plain or gzip'd) go
    through :func:`read_text_trace`.
    """
    path = Path(path)
    fmt = sniff_trace_format(path)
    if fmt == "npz":
        return load_trace(path)
    if fmt == "npz.gz":
        # np.load wants a seekable file; a GzipFile only emulates seeks,
        # so decompress into memory (traces are chunked arrays, not huge).
        with gzip.open(path, "rb") as fh:
            return load_trace(io.BytesIO(fh.read()))
    if fmt == "text.gz":
        with gzip.open(path, "rt", encoding="utf-8") as fh:
            return read_text_trace(fh)
    return read_text_trace(path)


def import_trace(source: "str | Path", dest: "str | Path") -> Path:
    """Convert any supported trace into the canonical ``.npz`` archive.

    The ``repro trace import`` verb: sniff, load, re-save through
    :func:`repro.sim.trace_io.save_trace`. Round-trips are exact — the
    written archive replays the same addresses/writes in the same block
    structure the reader produced.
    """
    dest = Path(dest)
    if dest.suffix != ".npz":
        # np.savez appends .npz itself; mirror that so we return the
        # path that actually exists afterwards.
        dest = dest.with_suffix(dest.suffix + ".npz")
    save_trace(dest, load_any_trace(source))
    return dest


def derive_layout(
    blocks: list[ReferenceBlock],
    max_objects: int = 8,
    min_gap: int = 1 << 16,
) -> dict[str, tuple[int, int]]:
    """A plausible object layout for an unannotated trace.

    Clusters the referenced cache lines by address gaps (a new object
    starts wherever consecutive touched lines are more than ``min_gap``
    bytes apart), largest clusters first, at most ``max_objects`` named
    ``t0`` .. ``tN`` in address order. A convenience for ``repro trace
    info`` and for bootstrapping a :class:`TraceWorkload` layout —
    real converters should declare the program's actual symbols.
    """
    if not blocks:
        raise TraceError("cannot derive a layout from an empty trace")
    lines = np.unique(
        np.concatenate([b.addrs for b in blocks]) & ~np.uint64(63)
    )
    gaps = np.flatnonzero(np.diff(lines) > np.uint64(min_gap))
    starts = np.concatenate([[0], gaps + 1])
    ends = np.concatenate([gaps, [len(lines) - 1]])
    clusters = [
        (int(lines[s]), int(lines[e]) + 64 - int(lines[s]), int(e - s + 1))
        for s, e in zip(starts, ends)
    ]
    clusters.sort(key=lambda c: -c[2])
    kept = sorted(clusters[:max_objects])
    return {
        f"t{i}": (base, size) for i, (base, size, _) in enumerate(kept)
    }


class TraceWorkload(Workload):
    """Replays blocks from a trace file (or an in-memory block list).

    ``layout`` declares the named variables the trace's addresses fall
    into: ``{"name": (base, size)}``. Bases must lie inside the standard
    data segment (globals) or heap segment (blocks are then registered
    through the allocator so heap-map code paths are exercised).
    """

    name = "trace"
    #: A replayed trace is already array-backed, and an arbitrary user
    #: trace (file path or in-memory blocks) cannot be content-addressed
    #: by constructor parameters — so stream compilation is opted out
    #: rather than fingerprinted unsoundly (see RPL602).
    compiled_stream_safe = False
    #: Recorded traces are frozen address streams: replaying one against
    #: a decorated stack cannot feed back into the stream, so mechanism
    #: x size sweeps over traces are sound even though compilation is
    #: not (the marker ROADMAP item 4's trace ingestion relies on).
    mechanism_sweep_safe = True

    def __init__(
        self,
        trace: str | Path | list[ReferenceBlock],
        layout: dict[str, tuple[int, int]],
        seed: int | None = None,
    ) -> None:
        super().__init__(seed=seed)
        if not layout:
            raise WorkloadError("trace workload needs at least one declared object")
        self._trace_source = trace
        self.layout = dict(layout)
        self._blocks: list[ReferenceBlock] | None = (
            list(trace) if isinstance(trace, list) else None
        )

    def _declare(self) -> None:
        data = self.address_space.data
        heap = self.address_space.heap
        # Declare objects at their exact recorded addresses. The symbol
        # table lays variables out itself, so exact placement goes through
        # the object map directly for data-segment objects and through a
        # placement-checked malloc for heap ones.
        from repro.memory.objects import MemoryObject, ObjectKind

        for name, (raw, size) in sorted(self.layout.items(), key=lambda kv: kv[1][0]):
            # Recorded traces hold absolute addresses; relocating into a
            # per-core namespace (multi-core sessions) shifts the whole
            # capture — layout here, replayed blocks in _generate.
            base = raw + self.address_offset
            if data.contains(base):
                self.object_map.add_global(
                    MemoryObject(name=name, base=base, size=size, kind=ObjectKind.GLOBAL)
                )
            elif heap.contains(base):
                # Reproduce the block via the allocator when it lands where
                # first-fit would put it; otherwise register it directly.
                blk = self.heap.malloc(size, name=name)
                if blk.base != base:
                    self.heap.free(blk)
                    self.object_map.observe_alloc(
                        "alloc",
                        MemoryObject(
                            name=name, base=base, size=size, kind=ObjectKind.HEAP
                        ),
                    )
            else:
                raise WorkloadError(
                    f"object {name!r} at {base:#x} is outside the data and "
                    "heap segments"
                )

    def _generate(self) -> Iterator[ReferenceBlock]:
        if self._blocks is None:
            # Content-sniffed, so compressed captures replay without an
            # explicit `repro trace import` conversion step.
            self._blocks = load_any_trace(self._trace_source)
        if not self.address_offset:
            yield from self._blocks
            return
        offset = np.uint64(self.address_offset)
        for block in self._blocks:
            yield ReferenceBlock(
                addrs=block.addrs + offset,
                cycles_per_ref=block.cycles_per_ref,
                writes=block.writes,
                label=block.label,
                extra_cycles=block.extra_cycles,
            )


class RecursiveCalls(Workload):
    """A recursive kernel exercising the stack model (paper section 5).

    ``fib``-style recursion to ``depth``: every activation allocates the
    locals ``frame_buf`` (a scratch array) and ``acc`` on the simulated
    stack and touches them, plus a shared global table. All instances of
    a local share one aggregation name (``fib:frame_buf``), so sampling
    attributes the whole recursion's stack traffic to two source-level
    variables — the paper's proposed aggregation, working end-to-end.
    """

    name = "recursive"
    cycles_per_ref = 10.0

    def __init__(
        self,
        scale: float = 1.0,
        seed: int | None = None,
        depth: int = 12,
        repeats: int = 30,
        buf_bytes: int = 8192,
    ) -> None:
        super().__init__(scale=scale, seed=seed)
        self.depth = depth
        self.repeats = repeats
        self.buf_bytes = buf_bytes

    def _declare(self) -> None:
        self.symbols.declare("memo_table", self.scaled(512 * 1024))

    def _descend(self, level: int) -> Iterator[ReferenceBlock]:
        import numpy as np

        frame = self.stack.push_frame(
            "fib", {"frame_buf": self.buf_bytes, "acc": 64}
        )
        buf = frame.locals[0]
        acc = frame.locals[1]
        # Touch the frame buffer (line stride) and the accumulator.
        buf_addrs = np.arange(buf.base, buf.end, 64, dtype=np.uint64)
        acc_addrs = np.full(4, acc.base, dtype=np.uint64)
        yield ReferenceBlock(
            addrs=np.concatenate([buf_addrs, acc_addrs]),
            cycles_per_ref=self.cycles_per_ref,
            label=f"fib[{level}]",
        )
        # Global memo probe.
        memo = self.symbols["memo_table"]
        yield ReferenceBlock(
            addrs=np.arange(memo.base, memo.base + 64 * 32, 64, dtype=np.uint64)
            + np.uint64((level * 4096) % max(64, memo.size - 64 * 32)),
            cycles_per_ref=self.cycles_per_ref,
            label="memo",
        )
        if level > 0:
            yield from self._descend(level - 1)
        self.stack.pop_frame()

    def _generate(self) -> Iterator[ReferenceBlock]:
        for _ in range(self.repeats):
            yield from self._descend(self.depth)
