"""Workload registry: the paper's seven applications by name."""

from __future__ import annotations

from typing import Callable

from repro.errors import WorkloadError
from repro.workloads.applu import Applu
from repro.workloads.base import Workload
from repro.workloads.compress_ import Compress
from repro.workloads.ijpeg import Ijpeg
from repro.workloads.mgrid import Mgrid
from repro.workloads.su2cor import Su2cor
from repro.workloads.swim import Swim
from repro.workloads.synthetic import SyntheticStreams
from repro.workloads.tomcatv import Tomcatv

#: The applications of the paper's evaluation, in its presentation order.
SPEC_WORKLOADS: dict[str, Callable[..., Workload]] = {
    "tomcatv": Tomcatv,
    "swim": Swim,
    "su2cor": Su2cor,
    "mgrid": Mgrid,
    "applu": Applu,
    "compress": Compress,
    "ijpeg": Ijpeg,
}

#: Constructible by name (for task specs and grids) but not part of the
#: paper's seven-application evaluation set.
EXTRA_WORKLOADS: dict[str, Callable[..., Workload]] = {
    "synthetic-streams": SyntheticStreams,
}


def workload_names() -> list[str]:
    return list(SPEC_WORKLOADS)


def make_workload(name: str, **kwargs) -> Workload:
    """Instantiate a registered workload by name."""
    factory = SPEC_WORKLOADS.get(name) or EXTRA_WORKLOADS.get(name)
    if factory is None:
        available = ", ".join([*SPEC_WORKLOADS, *EXTRA_WORKLOADS])
        raise WorkloadError(f"unknown workload {name!r}; available: {available}")
    return factory(**kwargs)
