"""Workload registry: the paper's seven applications by name."""

from __future__ import annotations

from typing import Callable

from repro.errors import WorkloadError
from repro.workloads.applu import Applu
from repro.workloads.base import Workload
from repro.workloads.compress_ import Compress
from repro.workloads.ijpeg import Ijpeg
from repro.workloads.mgrid import Mgrid
from repro.workloads.su2cor import Su2cor
from repro.workloads.swim import Swim
from repro.workloads.tomcatv import Tomcatv

#: The applications of the paper's evaluation, in its presentation order.
SPEC_WORKLOADS: dict[str, Callable[..., Workload]] = {
    "tomcatv": Tomcatv,
    "swim": Swim,
    "su2cor": Su2cor,
    "mgrid": Mgrid,
    "applu": Applu,
    "compress": Compress,
    "ijpeg": Ijpeg,
}


def workload_names() -> list[str]:
    return list(SPEC_WORKLOADS)


def make_workload(name: str, **kwargs) -> Workload:
    """Instantiate a registered workload by name."""
    try:
        factory = SPEC_WORKLOADS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown workload {name!r}; available: {', '.join(SPEC_WORKLOADS)}"
        ) from None
    return factory(**kwargs)
