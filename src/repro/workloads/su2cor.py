"""su2cor model: quantum-physics Monte Carlo (SPEC95 103.su2cor).

Two behaviours from the paper are reproduced:

* **Table 1 shares** — one dominant array U (~57%), a handful of mid-size
  arrays (R, S, the two halves of workspace W2, B) and a tail of small
  arrays below B's 2.3%.
* **Changing access patterns** (section 3.4) — the run moves through
  three eras: an early *thermalisation* era in which the sweep arrays (R,
  W2-sweep) are hot and U only warm; a middle era near the overall mix;
  and a late *measurement* era dominated by U in which R is completely
  cold. The paper's asymmetric outcome falls out of this timeline: the
  **10-way** search converges during the representative middle era, so
  its post-search estimates match the actual shares; the **2-way** search
  — with only two counters it refines one region per iteration — reaches
  single-object granularity on early-hot R first (R's early share tops
  the queue) and terminates, and by the time its estimation pass runs the
  late era has begun and R measures ~0%, with U never refined at all.
  That is Table 2's su2cor row: R rank 1 at 0.0%, U absent.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.sim.blocks import ReferenceBlock
from repro.workloads.base import Workload
from repro.workloads.patterns import intra_line_hits, stream_lines

_SMALL = {f"G{i}": 1.0 for i in range(10)}

#: The three eras: (fraction of all misses, per-array share within the era).
#: Shares are normalised per era; the weighted mix reproduces Table 1
#: (U 57.1, R ~7.0, S 6.6, W2-intact 3.9, W2-sweep 3.7, B 2.3, tail < 2.3).
_ERAS = [
    (
        0.25,  # thermalisation: sweep arrays hot, U warm
        {
            "R": 20.0, "S": 13.0, "W2-sweep": 11.0, "U": 16.0, "B": 1.0,
            **{k: 3.9 for k in _SMALL},
        },
    ),
    (
        0.35,  # mixed era: close to the overall profile
        {
            "U": 57.0, "R": 6.0, "S": 5.5, "W2-intact": 4.0, "W2-sweep": 2.7,
            "B": 3.0, **{k: 2.18 for k in _SMALL},
        },
    ),
    (
        0.40,  # measurement era: U dominant, R completely cold
        {
            "U": 83.0, "S": 3.5, "W2-intact": 5.0, "B": 2.5,
            **{k: 0.6 for k in _SMALL},
        },
    ),
]


class Su2cor(Workload):
    name = "su2cor"
    cycles_per_ref = 30.0

    def __init__(
        self,
        scale: float = 1.0,
        seed: int | None = None,
        total_lines: int = 400_000,
        slices_per_era: int = 40,
    ) -> None:
        super().__init__(scale=scale, seed=seed)
        self.total_lines = total_lines
        #: Fine-grained round-robin slices per era, so every search/sample
        #: interval sees the era's full array mix.
        self.slices_per_era = slices_per_era

    def _declare(self) -> None:
        self.symbols.declare("U", self.scaled(1536 * 1024))
        self.symbols.declare("R", self.scaled(512 * 1024))
        self.symbols.declare("S", self.scaled(512 * 1024))
        # W2 is one workspace array used as two distinct sections; the
        # paper reports "W2 - intact" and "W2 - sweep" separately, so they
        # are declared as adjacent arrays here.
        self.symbols.declare("W2-intact", self.scaled(384 * 1024))
        self.symbols.declare("W2-sweep", self.scaled(384 * 1024))
        self.symbols.declare("B", self.scaled(256 * 1024))
        for name in _SMALL:
            self.symbols.declare(name, self.scaled(192 * 1024))

    def _generate(self) -> Iterator[ReferenceBlock]:
        line = 64
        cursor: dict[str, int] = {}
        for era_fraction, shares in _ERAS:
            era_lines = int(self.total_lines * era_fraction)
            total_share = sum(shares.values())
            for _ in range(self.slices_per_era):
                pieces = []
                for name, share in shares.items():
                    n_lines = int(era_lines * share / total_share / self.slices_per_era)
                    if n_lines <= 0:
                        continue
                    pieces.append(
                        stream_lines(
                            self.symbols[name], n_lines, line, cursor.get(name, 0)
                        )
                    )
                    cursor[name] = cursor.get(name, 0) + n_lines
                yield self.block(
                    intra_line_hits(np.concatenate(pieces), 1), label="slice"
                )
