"""Vectorised access-pattern generators.

Every generator returns a NumPy uint64 address array; workloads compose
these into :class:`~repro.sim.blocks.ReferenceBlock` chunks. Nothing here
loops per reference — address streams are built with ``arange``,
broadcasting and reshapes, per the hpc-parallel guides.
"""

from __future__ import annotations

import numpy as np

from repro.memory.objects import MemoryObject


def stream_lines(
    obj: MemoryObject,
    n_lines: int,
    line_size: int = 64,
    start_line: int = 0,
    offset: int = 0,
) -> np.ndarray:
    """Sequential line-stride sweep: one reference per cache line.

    Wraps around the object if ``start_line + n_lines`` exceeds its size,
    so a caller can keep streaming volume independent of object size.
    """
    capacity = max(1, obj.size // line_size)
    idx = (np.arange(start_line, start_line + n_lines, dtype=np.uint64)) % np.uint64(
        capacity
    )
    return np.uint64(obj.base + offset) + idx * np.uint64(line_size)


def strided_lines(
    obj: MemoryObject,
    stride_lines: int,
    count: int,
    line_size: int = 64,
    start_line: int = 0,
) -> np.ndarray:
    """Strided sweep touching every ``stride_lines``-th cache line."""
    capacity = max(1, obj.size // line_size)
    idx = (
        np.uint64(start_line)
        + np.arange(count, dtype=np.uint64) * np.uint64(stride_lines)
    ) % np.uint64(capacity)
    return np.uint64(obj.base) + idx * np.uint64(line_size)


def repeat_window(
    obj: MemoryObject,
    window_lines: int,
    sweeps: int,
    line_size: int = 64,
    start_line: int = 0,
) -> np.ndarray:
    """Repeatedly sweep a small window: one cold pass then hot re-use.

    This is the hit generator — the window fits in cache, so only the
    first sweep misses. Used to give compress/ijpeg their low miss rates.
    """
    single = stream_lines(obj, window_lines, line_size, start_line)
    return np.tile(single, max(1, sweeps))


def random_lines(
    obj: MemoryObject,
    count: int,
    rng: np.random.Generator,
    line_size: int = 64,
    hot_fraction: float | None = None,
    hot_lines: int = 64,
) -> np.ndarray:
    """Uniformly random line accesses, optionally biased to a hot subset.

    ``hot_fraction`` sends that fraction of accesses to the first
    ``hot_lines`` lines (hash-table-like skew: a few buckets absorb most
    probes and stay cached).
    """
    capacity = max(1, obj.size // line_size)
    idx = rng.integers(0, capacity, size=count).astype(np.uint64)
    if hot_fraction is not None:
        hot = rng.random(count) < hot_fraction
        idx[hot] = (idx[hot] % np.uint64(min(hot_lines, capacity)))
    return np.uint64(obj.base) + idx * np.uint64(line_size)


def interleave(*streams: np.ndarray) -> np.ndarray:
    """Element-wise round-robin interleave of equal-length streams.

    ``interleave(a, b)`` yields ``a0 b0 a1 b1 ...`` — the pattern a
    stencil touching several arrays per grid point produces, and the
    source of tomcatv's sampling resonance (misses alternate strictly
    between RX and RY, so an even sampling period lands every sample on
    the same array).
    """
    if not streams:
        raise ValueError("need at least one stream")
    n = min(len(s) for s in streams)
    trimmed = [np.asarray(s[:n], dtype=np.uint64) for s in streams]
    return np.stack(trimmed, axis=1).reshape(-1)


def intra_line_hits(addrs: np.ndarray, extra_per_line: int, line_size: int = 64) -> np.ndarray:
    """Expand a line-stride stream with ``extra_per_line`` same-line touches.

    Models word-granularity accesses within each line: the first touch
    misses, the extras hit, multiplying reference volume without changing
    miss counts.
    """
    if extra_per_line <= 0:
        return addrs
    word = 8
    reps = extra_per_line + 1
    offsets = (np.arange(reps, dtype=np.uint64) * np.uint64(word)) % np.uint64(
        line_size
    )
    return (addrs[:, None] + offsets[None, :]).reshape(-1)
