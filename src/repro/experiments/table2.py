"""Experiment E2 — Table 2: two-way versus ten-way search.

Section 3.4: a 2-way search can only identify the top one or two objects
(an n-way search returns n-1 results), and on su2cor its post-search
estimation reads ~0% for the found array because the access pattern
changed after the search converged — the 10-way search is immune thanks
to faster convergence and averaging.
"""

from __future__ import annotations

from repro.experiments.records import PAPER_TABLE2_TWO_WAY, ExperimentReport
from repro.experiments.runner import ExperimentRunner
from repro.util.format import Table, render_table
from repro.util.units import fmt_pct


def run_table2(
    runner: ExperimentRunner,
    apps: list[str] | None = None,
    top_k: int = 7,
) -> ExperimentReport:
    apps = apps or runner.apps()
    table = Table(
        [
            "app", "object",
            "actual rank", "actual %",
            "2-way rank", "2-way %",
            "10-way rank", "10-way %",
        ],
        title="Table 2: two-way versus ten-way search",
    )
    values: dict = {}
    for app in apps:
        actual = runner.baseline(app).actual
        two = runner.with_search(app, n=2).measured
        ten = runner.with_search(app, n=10).measured

        names = [s.name for s in actual.top(top_k)]
        for prof in (two, ten):
            for s in prof.top(top_k):
                if s.name not in names:
                    names.append(s.name)
        for name in names:
            table.add_row(
                [
                    app,
                    name,
                    actual.rank_of(name) or "-",
                    fmt_pct(actual.share_of(name)) if actual.rank_of(name) else "-",
                    two.rank_of(name) or "-",
                    fmt_pct(two.share_of(name)) if two.rank_of(name) else "-",
                    ten.rank_of(name) or "-",
                    fmt_pct(ten.share_of(name)) if ten.rank_of(name) else "-",
                ]
            )
        table.add_separator()
        values[app] = {
            "actual": actual.as_dict(),
            "two_way": two.as_dict(),
            "ten_way": ten.as_dict(),
            "two_way_found": two.names(),
            "ten_way_found": ten.names(),
            "paper_two_way": PAPER_TABLE2_TWO_WAY.get(app, {}),
        }
    notes = [
        "a 2-way search reports at most n-1 = 1 object per terminated branch "
        "(occasionally 2), so sparse 2-way columns are expected",
        "watch su2cor: the 2-way search should miss U and/or estimate its "
        "find at ~0% (post-search pattern change), per section 3.4",
    ]
    return ExperimentReport(
        experiment="table2", table=render_table(table), values=values, notes=notes
    )
