"""Experiment E7 — Figure 2: why the search needs its priority queue.

Runs the Figure-2 layout (region aggregating 60% of misses vs a sibling
containing the single hottest array E at 35%) under the real
backtracking search and under the greedy variant. Expected shape: the
priority-queue search ranks E first; the greedy search terminates on an
array from the 60% region (the paper's diagram ends on C) and misses E.
"""

from __future__ import annotations

from repro.core.greedy_search import GreedySearch
from repro.core.search import NWaySearch
from repro.experiments.records import ExperimentReport
from repro.experiments.runner import ExperimentRunner
from repro.util.format import Table, render_table
from repro.util.units import fmt_pct
from repro.workloads.synthetic import FigureTwoLayout


def run_fig2(
    runner: ExperimentRunner,
    n: int = 2,
    rounds: int = 120,
) -> ExperimentReport:
    def fresh():
        return FigureTwoLayout(seed=runner.config.seed, rounds=rounds)

    base = runner.simulator.run(fresh())
    interval = max(10_000, base.stats.app_cycles // runner.config.intervals_per_run)

    pq_run = runner.simulator.run(
        fresh(), tool=NWaySearch(n=n, interval_cycles=interval)
    )
    greedy_run = runner.simulator.run(
        fresh(), tool=GreedySearch(n=n, interval_cycles=interval)
    )

    actual = base.actual
    table = Table(
        ["object", "actual %", "PQ-search rank", "greedy rank"],
        title=f"Figure 2: {n}-way search with vs without the priority queue",
    )
    for share in actual.top(6):
        table.add_row(
            [
                share.name,
                fmt_pct(share.share),
                pq_run.measured.rank_of(share.name) or "-",
                greedy_run.measured.rank_of(share.name) or "-",
            ]
        )
    pq_top = pq_run.measured.names()[0] if pq_run.measured.names() else None
    greedy_top = greedy_run.measured.names()[0] if greedy_run.measured.names() else None
    values = {
        "actual": actual.as_dict(),
        "pq_found": pq_run.measured.names(),
        "greedy_found": greedy_run.measured.names(),
        "pq_top": pq_top,
        "greedy_top": greedy_top,
        "hottest": actual.names()[0],
    }
    notes = [
        f"hottest array: {actual.names()[0]} "
        f"(PQ search top: {pq_top}; greedy top: {greedy_top})",
        "expected: PQ search finds E; greedy terminates inside the 60% region",
    ]
    return ExperimentReport(
        experiment="fig2", table=render_table(table), values=values, notes=notes
    )
