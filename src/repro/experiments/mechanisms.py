"""Experiment E13 — mechanism sweep: VC / MC / SB x cache size.

The paper isolates *where* misses come from; the natural follow-up
question is which classic mechanism would rescue them. This driver runs
each application against mechanism-decorated cache stacks
(:mod:`repro.cache.components` — victim cache, miss cache, stream
buffers, after Jouppi's ISCA 1990 designs) across a small cache-size
grid, and attributes the rescued misses back to the paper's memory
objects: the per-object ground-truth profiles of the baseline and the
decorated run subtract directly, because decorating never changes the
reference stream.

Every cell is an ordinary :class:`~repro.experiments.parallel.TaskSpec`
whose cache config carries the mechanism stack
(``CacheConfig.mechanisms`` is part of the content-addressed cache
key), so cells fan out through the :class:`ParallelRunner`, land in the
persistent result cache, and are bit-identical however they execute.

Unlike the MRC engine (which *refuses* decorated configs — no
stack-distance argument models a victim cache), this sweep is exact
simulation throughout.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING

from repro.cache import parse_mechanisms
from repro.experiments.parallel import ParallelRunner
from repro.experiments.records import ExperimentReport
from repro.util.format import Table, render_table
from repro.util.units import fmt_bytes, fmt_count, fmt_pct

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.profile import DataProfile
    from repro.experiments.parallel import TaskSpec
    from repro.experiments.runner import ExperimentRunner
    from repro.sim.engine import RunResult

#: The mechanism stacks the CLI sweep covers: each mechanism alone plus
#: the two classic pairings (a victim or miss cache catching conflict
#: misses while stream buffers catch the sequential ones).
MECHANISM_CHOICES = ("vc", "mc", "sb", "vc+sb", "mc+sb")

#: Default application subset: a conflict-heavy stencil, a multigrid
#: walker, and a sequential integer code — one workload per miss flavour
#: the mechanisms target.
DEFAULT_APPS = ["tomcatv", "mgrid", "compress"]


def mechanism_task(
    runner: "ExperimentRunner",
    app: str,
    mechanisms: "str | tuple | None",
    size: int | None = None,
) -> "TaskSpec":
    """One exact-simulation cell: the runner's geometry resized to
    ``size`` bytes with ``mechanisms`` decorating the cache.

    ``mechanisms=None``/``""`` is the undecorated baseline at the same
    size. The stack rides in ``sim.cache.mechanisms``, so the cell's
    cache key covers it and the baseline cell is *the same cell* any
    other experiment produces for that geometry.
    """
    specs = parse_mechanisms(mechanisms)
    cache = dataclasses.replace(
        runner.config.cache,
        size=size if size is not None else runner.config.cache.size,
        mechanisms=specs,
    )
    stack = "+".join(m.describe() for m in specs) if specs else "base"
    return dataclasses.replace(
        runner.task(app),
        sim=dataclasses.replace(runner.sim_spec, cache=cache),
        label=f"{app}/mech({stack},{cache.size // 1024}K)",
    )


def _counts(profile: "DataProfile | None") -> dict[str, int]:
    """Raw per-object miss counts from a ground-truth profile."""
    if profile is None:
        return {}
    return {s.name: s.count for s in profile.shares}


def _mechanism_events(result: "RunResult") -> dict[str, int]:
    """All mechanism ledger events of a run, merged across decorators.

    The outermost ledger only carries the outermost decorator's events
    ("vc+sb" stacks keep vc_* in the inner ledger), so walk the full
    component list.
    """
    events: dict[str, int] = {}
    for _, stats in result.component_stats or []:
        for event, count in stats.mechanism.items():
            events[event] = events.get(event, 0) + count
    return events


def _run_grid(
    runner: "ExperimentRunner", cells: "list[TaskSpec]"
) -> "dict[str, RunResult]":
    """Execute cells (parallel when the runner has workers), key -> result."""
    if runner.jobs > 1:
        pool = ParallelRunner(
            jobs=runner.jobs,
            cache=runner.result_cache,
            manifest=runner.manifest,
            checkpoints=runner.checkpoints,
            stream_cache_dir=runner.stream_cache_dir,
        )
        fresh, seen = [], set()
        for spec in cells:
            key = spec.key()
            if key not in runner._memo and key not in seen:
                seen.add(key)
                fresh.append(spec)
        for spec, result in zip(fresh, pool.run(fresh)):
            runner._memo[spec.key()] = result
    # Serial path and memo/disk readback share run_task, so parallel
    # execution stays bit-identical with --jobs 1.
    return {spec.key(): runner.run_task(spec) for spec in cells}


def run_mechanisms(
    runner: "ExperimentRunner",
    apps: "list[str] | None" = None,
    mechanisms: "tuple | list | None" = None,
    sizes: "list[int] | None" = None,
    top_k: int = 3,
) -> ExperimentReport:
    """The mechanism x size grid with per-object rescue attribution."""
    apps = apps or DEFAULT_APPS
    stacks = list(mechanisms or MECHANISM_CHOICES)
    sizes = sizes or [runner.config.cache.size // 2, runner.config.cache.size]

    cells: "list[TaskSpec]" = []
    grid: dict = {}
    for app in apps:
        for size in sizes:
            base = mechanism_task(runner, app, None, size=size)
            decorated = {
                m: mechanism_task(runner, app, m, size=size) for m in stacks
            }
            grid[(app, size)] = (base, decorated)
            cells.append(base)
            cells.extend(decorated.values())
    results = _run_grid(runner, cells)

    table = Table(
        [
            "app", "size", "stack",
            "base misses", "misses", "rescued", "rescued %",
            "mechanism events",
        ],
        title="E13: miss-rescue mechanisms (victim/miss cache, stream buffers)",
    )
    values: dict = {"sizes": sizes, "mechanisms": stacks, "apps": {}}
    for app in apps:
        per_app: dict = {}
        for size in sizes:
            base_spec, decorated = grid[(app, size)]
            base = results[base_spec.key()]
            base_misses = base.stats.app_misses
            base_counts = _counts(base.actual)
            per_size: dict = {
                "baseline_misses": base_misses,
                "baseline_objects": base_counts,
                "stacks": {},
            }
            for m in stacks:
                run = results[decorated[m].key()]
                misses = run.stats.app_misses
                rescued = base_misses - misses
                events = _mechanism_events(run)
                counts = _counts(run.actual)
                per_size["stacks"][m] = {
                    "misses": misses,
                    "rescued": rescued,
                    "events": events,
                    "objects": counts,
                    "rescued_by_object": {
                        name: base_counts[name] - counts.get(name, 0)
                        for name in base_counts
                    },
                }
                table.add_row(
                    [
                        app,
                        fmt_bytes(size),
                        m,
                        fmt_count(base_misses),
                        fmt_count(misses),
                        fmt_count(rescued),
                        fmt_pct(rescued / base_misses) if base_misses else "-",
                        " ".join(
                            f"{k}={fmt_count(v)}" for k, v in sorted(events.items())
                        ),
                    ]
                )
            per_app[size] = per_size
        table.add_separator()
        values["apps"][app] = per_app

    # Per-object attribution at the runner's configured size: which of
    # the paper's memory objects each mechanism actually rescues.
    primary = sizes[-1]
    obj_table = Table(
        ["app", "object", "base misses"] + [f"rescued ({m})" for m in stacks],
        title=f"E13 attribution: misses rescued per object at {fmt_bytes(primary)}",
    )
    for app in apps:
        per_size = values["apps"][app][primary]
        base_counts = per_size["baseline_objects"]
        base = results[grid[(app, primary)][0].key()]
        names = [s.name for s in base.actual.top(top_k)] if base.actual else []
        for name in names:
            obj_table.add_row(
                [app, name, fmt_count(base_counts[name])]
                + [
                    fmt_count(
                        per_size["stacks"][m]["rescued_by_object"][name]
                    )
                    for m in stacks
                ]
            )
        obj_table.add_separator()

    notes = [
        "rescued = baseline misses - decorated misses over the identical "
        "reference stream (decorating never perturbs the workload)",
        "per-object attribution subtracts ground-truth profiles; a "
        "negative rescue means the mechanism displaced that object's lines",
        "exact simulation throughout — decorated stacks bypass the MRC "
        "engine's binomial model (see experiments/mrc.py)",
    ]
    return ExperimentReport(
        experiment="mechanisms",
        table=render_table(table) + "\n\n" + render_table(obj_table),
        values=values,
        notes=notes,
    )
