"""Experiment E5 — Figure 5: applu's per-array misses over time.

Runs applu with the ground-truth time series enabled and renders the
per-bucket miss counts for a, b, c (which share one curve in the paper —
"almost exactly the same access pattern"), d and rsd. The reproduced
shape: a/b/c periodically drop to *zero* misses in a bucket while rsd
spikes — the phase behaviour that motivates the search's zero-miss
retention heuristic.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.records import ExperimentReport
from repro.experiments.runner import ExperimentRunner
from repro.util.charts import line_chart
from repro.util.format import Table, render_table

_ARRAYS = ["a", "b", "c", "d", "rsd"]


def run_fig5(
    runner: ExperimentRunner,
    n_buckets: int = 48,
) -> ExperimentReport:
    base = runner.baseline("applu")
    bucket_cycles = max(1, base.stats.app_cycles // n_buckets)
    run = runner.baseline("applu", series_bucket_cycles=bucket_cycles)
    series = run.series

    data = {name: series.series_for(name) for name in _ARRAYS}
    n = max(len(v) for v in data.values())
    table = Table(
        ["bucket"] + _ARRAYS + ["abc_zero?"],
        title=f"Figure 5: applu misses per {bucket_cycles:,} cycles",
    )
    abc_zero_buckets = 0
    rsd_spike_buckets = 0
    for i in range(n):
        row = [i]
        vals = {}
        for name in _ARRAYS:
            v = int(data[name][i]) if i < len(data[name]) else 0
            vals[name] = v
            row.append(v)
        abc_zero = vals["a"] == 0 and vals["b"] == 0 and vals["c"] == 0
        if abc_zero and any(vals[k] > 0 for k in ("d", "rsd")):
            abc_zero_buckets += 1
        if vals["rsd"] > vals["a"]:
            rsd_spike_buckets += 1
        row.append("YES" if abc_zero else "")
        table.add_row(row)

    values = {
        "bucket_cycles": bucket_cycles,
        "series": {name: data[name].tolist() for name in _ARRAYS},
        "abc_zero_buckets": abc_zero_buckets,
        "rsd_exceeds_a_buckets": rsd_spike_buckets,
        "total_buckets": n,
    }
    notes = [
        f"{abc_zero_buckets}/{n} buckets have a=b=c=0 while other arrays miss "
        "(the paper: 'A, B, and C periodically cause no cache misses during "
        "a sample interval')",
    ]
    chart = line_chart(
        {name: data[name].tolist() for name in _ARRAYS},
        title="Figure 5 (chart): applu misses over time",
    )
    return ExperimentReport(
        experiment="fig5",
        table=render_table(table) + "\n\n" + chart,
        values=values,
        notes=notes,
    )
