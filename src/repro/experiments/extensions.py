"""Extension experiments: features beyond the published evaluation.

* **skid** — sampling accuracy as the reported miss address lags the
  triggering event (the imprecise-counter reality section 2.1 warns
  about; the paper assumes a precise Itanium-style register = skid 0).
* **continuation** — the section 6 proposal: re-search set-aside regions
  after reporting a batch, lifting the n-1 result cap.
* **hierarchy** — the techniques driven by L2 misses behind a filtering
  L1, the configuration a real last-level-cache HPM would present.
* **prefetch** — a next-line prefetcher removes many sequential misses;
  do the rankings survive?
"""

from __future__ import annotations

from repro.cache import CacheConfig
from repro.core.report import max_share_error
from repro.core.sampling import PeriodSchedule, SamplingProfiler
from repro.experiments.records import ExperimentReport
from repro.experiments.runner import ExperimentRunner
from repro.sim.engine import Simulator
from repro.util.format import Table, render_table
from repro.util.units import fmt_pct


def run_skid_ablation(
    runner: ExperimentRunner,
    app: str = "su2cor",
    skids: tuple[int, ...] = (0, 1, 4, 16),
) -> ExperimentReport:
    """Sampling accuracy vs interrupt skid."""
    actual = runner.baseline(app).actual
    period = runner.scaled_sampling_period(app)
    table = Table(
        ["skid (misses)", "top object", "top share est %", "max share error %"],
        title=f"Extension: sampling skid on {app}",
    )
    values: dict = {"actual": actual.as_dict(), "period": period}
    for skid in skids:
        tool = SamplingProfiler(
            period=period,
            schedule=PeriodSchedule.PRIME,
            seed=runner.config.seed,
            skid=skid,
        )
        run = runner.simulator.run(runner.make(app), tool=tool)
        err = max_share_error(actual, run.measured)
        top = run.measured.names()[0] if len(run.measured) else "-"
        table.add_row([skid, top, fmt_pct(run.measured.share_of(top)), fmt_pct(err)])
        values[f"skid_{skid}"] = {
            "top": top,
            "max_error": err,
            "measured": run.measured.as_dict(),
        }
    notes = [
        "expected: attribution degrades gracefully — consecutive misses "
        "usually stay within one large object, so small skids barely move "
        "the shares; the top object survives even large skids",
    ]
    return ExperimentReport(
        experiment="ext-skid", table=render_table(table), values=values, notes=notes
    )


def run_continuation(
    runner: ExperimentRunner,
    app: str = "su2cor",
    n: int = 4,
    rounds: int = 3,
) -> ExperimentReport:
    """Search continuation: objects reported with and without re-search."""
    base = runner.baseline(app)
    interval = max(10_000, base.stats.app_cycles // 70)
    plain = runner.with_search(app, n=n, interval_cycles=interval)
    cont = runner.with_search(
        app, n=n, interval_cycles=interval, continuation_rounds=rounds,
        estimate_rounds=4,
    )
    actual = base.actual
    table = Table(
        ["variant", "objects found", "batches", "top-5 coverage"],
        title=f"Extension: {n}-way search continuation on {app}",
    )
    values: dict = {"actual": actual.as_dict()}
    top5 = [s.name for s in actual.top(5)]
    for label, run in (("single batch (paper)", plain), (f"+{rounds} rounds", cont)):
        found = run.measured.names()
        coverage = sum(1 for nm in top5 if nm in found) / len(top5)
        table.add_row(
            [label, len(found), run.measured.meta["batches"], f"{coverage:.2f}"]
        )
        values[label] = {"found": found, "coverage": coverage}
    notes = [
        f"a {n}-way search reports at most {n - 1} objects per batch; "
        "continuation (paper section 6) lifts the cap by retiring each "
        "batch and re-searching the remaining queue",
    ]
    return ExperimentReport(
        experiment="ext-continuation",
        table=render_table(table),
        values=values,
        notes=notes,
    )


def run_hierarchy(
    runner: ExperimentRunner,
    app: str = "mgrid",
) -> ExperimentReport:
    """Profiling behind an L1 filter: do L2-miss rankings match?"""
    single = runner.baseline(app)
    cfg = runner.config.cache
    l1 = CacheConfig(size=cfg.size // 16, line_size=cfg.line_size, assoc=2)
    hier_sim = Simulator(
        cache_config=cfg, l1_config=l1, seed=runner.config.seed
    )
    hier_base = hier_sim.run(runner.make(app))
    period = max(16, hier_base.stats.app_misses // runner.config.target_samples)
    sampled = hier_sim.run(
        runner.make(app),
        tool=SamplingProfiler(
            period=period, schedule=PeriodSchedule.PRIME, seed=runner.config.seed
        ),
    )
    table = Table(
        ["object", "single-level actual %", "L2 actual %", "L2 sampled %"],
        title=f"Extension: profiling through an L1+L2 hierarchy ({app})",
    )
    values: dict = {
        "single_misses": single.stats.app_misses,
        "l2_misses": hier_base.stats.app_misses,
    }
    for share in single.actual.top(5):
        table.add_row(
            [
                share.name,
                fmt_pct(share.share),
                fmt_pct(hier_base.actual.share_of(share.name)),
                fmt_pct(sampled.measured.share_of(share.name)),
            ]
        )
    values["single_actual"] = single.actual.as_dict()
    values["l2_actual"] = hier_base.actual.as_dict()
    values["l2_sampled"] = sampled.measured.as_dict()
    notes = [
        "the L1 filters hits, not (streaming) misses, so per-object L2 "
        "shares track the single-level shares and sampling on L2 misses "
        "finds the same bottlenecks a single-level monitor would",
    ]
    return ExperimentReport(
        experiment="ext-hierarchy",
        table=render_table(table),
        values=values,
        notes=notes,
    )


def run_prefetch_ablation(
    runner: ExperimentRunner,
    app: str = "tomcatv",
) -> ExperimentReport:
    """Rankings with a next-line prefetcher absorbing sequential misses."""
    plain = runner.baseline(app)
    pf_sim = Simulator(
        cache_config=runner.config.cache,
        prefetch_next_line=True,
        seed=runner.config.seed,
    )
    pf_base = pf_sim.run(runner.make(app))
    period = max(16, pf_base.stats.app_misses // runner.config.target_samples)
    sampled = pf_sim.run(
        runner.make(app),
        tool=SamplingProfiler(
            period=period, schedule=PeriodSchedule.PRIME, seed=runner.config.seed
        ),
    )
    table = Table(
        ["object", "no-prefetch actual %", "prefetch actual %", "prefetch sampled %"],
        title=f"Extension: next-line prefetch ({app})",
    )
    for share in plain.actual.top(5):
        table.add_row(
            [
                share.name,
                fmt_pct(share.share),
                fmt_pct(pf_base.actual.share_of(share.name)),
                fmt_pct(sampled.measured.share_of(share.name)),
            ]
        )
    values = {
        "misses_without": plain.stats.app_misses,
        "misses_with": pf_base.stats.app_misses,
        "plain_actual": plain.actual.as_dict(),
        "prefetch_actual": pf_base.actual.as_dict(),
        "prefetch_sampled": sampled.measured.as_dict(),
    }
    notes = [
        f"prefetch removed {1 - pf_base.stats.app_misses / plain.stats.app_misses:.0%} "
        "of misses; expected: per-object shares (and therefore rankings) "
        "change little, since next-line prefetch thins every streaming "
        "array about equally",
    ]
    return ExperimentReport(
        experiment="ext-prefetch",
        table=render_table(table),
        values=values,
        notes=notes,
    )
