"""Content-addressed on-disk cache for simulation results.

The experiment grid is a matrix of *pure* simulations: every
:class:`~repro.sim.engine.RunResult` is a deterministic function of the
workload (name + construction kwargs), the simulator configuration, the
instrumentation tool configuration and the seed. This module exploits
that purity: results are stored on disk under a stable content hash of
exactly those inputs, plus a *code version tag* derived from the source
of the simulation-relevant packages — so editing the engine, a cache
model or a workload silently invalidates every stale entry, while
re-running an unchanged grid is served from disk instead of being
re-simulated.

Alongside the cache lives the :class:`Manifest`: an append-only JSONL
log with one record per task (label, workload, seed, key, hit/miss,
wall-clock seconds) that makes parallel runs observable and lets tests
assert on hit rates.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import pickle
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any
from pathlib import Path

__all__ = [
    "ResultCache",
    "Manifest",
    "TaskRecord",
    "CacheEntry",
    "canonical",
    "stable_hash",
    "code_version_tag",
    "source_files",
]


# --------------------------------------------------------------- hashing

def canonical(value: object) -> object:
    """Reduce ``value`` to a JSON-serialisable canonical form.

    Dataclasses become field dicts, enums their values, tuples lists and
    dict keys are sorted, so two configurations that compare equal hash
    identically regardless of construction order or container type.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, enum.Enum):
        return canonical(value.value)
    if isinstance(value, dict):
        return {
            str(k): canonical(v)
            for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))
        }
    if isinstance(value, (list, tuple)):
        return [canonical(v) for v in value]
    if value is None or isinstance(value, (str, bool)):
        return value
    if isinstance(value, (int, float)):
        return int(value) if float(value).is_integer() else float(value)
    # numpy scalars and anything else with an exact int/float identity.
    try:
        return canonical(value.item())
    except AttributeError:
        return repr(value)


def stable_hash(payload: object) -> str:
    """Hex digest of the canonical JSON encoding of ``payload``."""
    encoded = json.dumps(
        canonical(payload), sort_keys=True, separators=(",", ":")
    ).encode()
    return hashlib.sha256(encoded).hexdigest()


#: Packages whose source defines simulation semantics; editing any file
#: in them changes the version tag and invalidates every cache entry.
#: Subpackages (e.g. ``cache/kernels``) are covered by the recursive glob.
_CODE_PACKAGES = ("cache", "core", "hpm", "memory", "sim", "util", "workloads")


def source_files() -> list[Path]:
    """Every source file participating in :func:`code_version_tag`.

    Exposed separately so tests can assert that semantics-bearing modules
    (the cache kernels in particular) actually invalidate the cache.
    """
    root = Path(__file__).resolve().parent.parent
    files: list[Path] = []
    for package in _CODE_PACKAGES:
        files.extend(sorted((root / package).rglob("*.py")))
    return files


def _compute_code_version_tag() -> str:
    root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in source_files():
        digest.update(path.relative_to(root).as_posix().encode())
        digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


#: Computed eagerly at import time (RPL701): an lru_cache memo here would
#: be fork-copied into pool workers warm, so source edited between import
#: and fork could serve a stale tag in some processes but not others.
#: Import-time evaluation pins one value for the whole process tree.
_CODE_VERSION_TAG = _compute_code_version_tag()


def code_version_tag() -> str:
    """Digest of the simulation-relevant source, the cache's version key.

    Result keys embed this tag, so a cache directory never serves results
    computed by different simulation code — the invalidation rule is
    "any edit under src/repro/{cache,core,hpm,memory,sim,util,workloads}".
    """
    return _CODE_VERSION_TAG


# ---------------------------------------------------------------- storage

@dataclass(frozen=True)
class CacheEntry:
    """One stored result, as reported by :meth:`ResultCache.entries`."""

    key: str
    path: Path
    size_bytes: int
    mtime: float


class ResultCache:
    """Pickle store addressed by result key, with atomic writes.

    Layout: ``<root>/entries/<key[:2]>/<key>.pkl`` plus
    ``<root>/manifest.jsonl`` (written by the runners, not by the cache
    itself). Corrupt or unreadable entries are treated as misses and
    removed, so a killed writer can never poison later runs.
    """

    def __init__(self, root: str | os.PathLike[str]) -> None:
        self.root = Path(root)
        (self.root / "entries").mkdir(parents=True, exist_ok=True)

    @property
    def manifest_path(self) -> Path:
        return self.root / "manifest.jsonl"

    def path_for(self, key: str) -> Path:
        return self.root / "entries" / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Any:
        """The stored value for ``key``, or None on miss/corruption."""
        path = self.path_for(key)
        try:
            with path.open("rb") as fh:
                return pickle.load(fh)
        except FileNotFoundError:
            return None
        except Exception:
            path.unlink(missing_ok=True)
            return None

    def put(self, key: str, value: object) -> Path:
        """Store ``value`` under ``key`` (atomic rename, last writer wins)."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            Path(tmp).unlink(missing_ok=True)
            raise
        return path

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def entries(self) -> list[CacheEntry]:
        found: list[CacheEntry] = []
        for path in sorted((self.root / "entries").rglob("*.pkl")):
            stat = path.stat()
            found.append(
                CacheEntry(
                    key=path.stem,
                    path=path,
                    size_bytes=stat.st_size,
                    mtime=stat.st_mtime,
                )
            )
        return found

    def __len__(self) -> int:
        return len(self.entries())

    def total_bytes(self) -> int:
        return sum(e.size_bytes for e in self.entries())

    def clear(self) -> int:
        """Remove every entry (and the manifest); returns entries removed."""
        removed = 0
        for entry in self.entries():
            entry.path.unlink(missing_ok=True)
            removed += 1
        self.manifest_path.unlink(missing_ok=True)
        return removed

    def describe(self) -> str:
        entries = self.entries()
        size = sum(e.size_bytes for e in entries)
        return (
            f"result cache at {self.root}: {len(entries)} entries, "
            f"{size / 1024:.1f} KiB, code version {code_version_tag()}"
        )


# --------------------------------------------------------------- manifest

@dataclass(frozen=True)
class TaskRecord:
    """One executed (or cache-served) grid task."""

    task: str           #: display label, e.g. ``"tomcatv/sample(1/83)"``
    workload: str
    seed: int | None
    key: str            #: result-cache key (full hash)
    cached: bool        #: True = served from the result cache
    wall_s: float       #: wall-clock seconds spent (0 for hits)
    #: Manifest telemetry (when the task ran), never read by any result
    #: path — the one sanctioned wall-clock read in experiments/.
    when: float = field(default_factory=time.time)  # reprolint: disable=RPL103 -- manifest telemetry only, never read by a result path

    def as_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)


@dataclass
class Manifest:
    """In-memory task log, optionally mirrored to an append-only JSONL."""

    path: Path | None = None
    records: list[TaskRecord] = field(default_factory=list)

    def record(
        self,
        *,
        task: str,
        workload: str,
        seed: int | None,
        key: str,
        cached: bool,
        wall_s: float,
    ) -> TaskRecord:
        rec = TaskRecord(
            task=task,
            workload=workload,
            seed=seed,
            key=key,
            cached=cached,
            wall_s=wall_s,
        )
        self.records.append(rec)
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self.path.open("a") as fh:
                fh.write(json.dumps(rec.as_dict(), sort_keys=True) + "\n")
        return rec

    @property
    def hits(self) -> int:
        return sum(1 for r in self.records if r.cached)

    @property
    def misses(self) -> int:
        return sum(1 for r in self.records if not r.cached)

    def counts(self) -> dict[str, int]:
        return {"hit": self.hits, "miss": self.misses}

    def total_wall_s(self) -> float:
        return sum(r.wall_s for r in self.records)

    def summary(self) -> str:
        return (
            f"{len(self.records)} tasks: {self.hits} cache hits, "
            f"{self.misses} simulated, {self.total_wall_s():.1f}s simulating"
        )

    @staticmethod
    def load(path: str | os.PathLike[str]) -> list[dict[str, Any]]:
        """Parse a manifest JSONL back into dicts (for tooling/tests)."""
        out: list[dict[str, Any]] = []
        with Path(path).open() as fh:
            for line in fh:
                line = line.strip()
                if line:
                    out.append(json.loads(line))
        return out
