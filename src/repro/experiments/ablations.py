"""Experiment E8 — ablations of the design choices the paper calls out.

* **Split alignment** (section 2.2): splitting regions at raw midpoints
  lets objects span region boundaries; an array straddling a cut may not
  attract the search. Compared on a layout engineered so the hottest
  array straddles the midpoint.
* **Phase heuristic** (section 3.5): disabling zero-miss retention makes
  the search on applu (strong phases) drop hot regions that happened to
  be silent for one interval.
* **Counter multiplexing** (section 2.2/3.4): emulating the n counters by
  time-sharing one conditional counter adds extrapolation error.
* **Replacement policy**: the techniques' rankings should be robust to
  LRU/FIFO/random replacement (the paper does not pin a policy).
"""

from __future__ import annotations

from repro.cache import CacheConfig, ReplacementPolicy
from repro.core.search import NWaySearch
from repro.experiments.records import ExperimentReport
from repro.experiments.runner import ExperimentRunner
from repro.sim.engine import Simulator
from repro.util.format import Table, render_table
from repro.util.units import fmt_pct
from repro.workloads.synthetic import SyntheticStreams


def _straddle_spec() -> dict[str, tuple[int, float]]:
    """A layout whose hottest array sits mid-address-space, so naive
    midpoint splits cut straight through it."""
    return {
        "left_a": (512 * 1024, 14),
        "left_b": (512 * 1024, 12),
        "HOT": (1024 * 1024, 44),
        "right_a": (512 * 1024, 16),
        "right_b": (512 * 1024, 14),
    }


def run_alignment_ablation(runner: ExperimentRunner) -> ExperimentReport:
    def fresh():
        return SyntheticStreams(
            _straddle_spec(), rounds=60, interleaved=True, seed=runner.config.seed
        )

    base = runner.simulator.run(fresh())
    interval = max(10_000, base.stats.app_cycles // runner.config.intervals_per_run)
    aligned = runner.simulator.run(
        fresh(), tool=NWaySearch(n=4, interval_cycles=interval, align_splits=True)
    )
    naive = runner.simulator.run(
        fresh(), tool=NWaySearch(n=4, interval_cycles=interval, align_splits=False)
    )
    table = Table(
        ["variant", "HOT rank", "HOT est %", "objects found"],
        title="Ablation: object-aligned vs naive midpoint splits",
    )
    rows = (("aligned", aligned), ("naive midpoint", naive))
    for label, run in rows:
        table.add_row(
            [
                label,
                run.measured.rank_of("HOT") or "-",
                fmt_pct(run.measured.share_of("HOT")),
                len(run.measured),
            ]
        )
    values = {
        "actual_hot": base.actual.share_of("HOT"),
        "aligned": {
            "hot_rank": aligned.measured.rank_of("HOT"),
            "hot_share": aligned.measured.share_of("HOT"),
        },
        "naive": {
            "hot_rank": naive.measured.rank_of("HOT"),
            "hot_share": naive.measured.share_of("HOT"),
        },
    }
    notes = [
        "expected: aligned split ranks HOT first with a share near "
        f"{fmt_pct(base.actual.share_of('HOT'))}%; the naive split either "
        "misses HOT or underestimates it (each half sees only part of it)",
    ]
    return ExperimentReport(
        experiment="ablation-alignment",
        table=render_table(table),
        values=values,
        notes=notes,
    )


def run_phase_heuristic_ablation(runner: ExperimentRunner) -> ExperimentReport:
    app = "applu"
    base = runner.baseline(app)
    # Short intervals relative to applu's phases stress the heuristic.
    interval = max(10_000, base.stats.app_cycles // 90)
    with_h = runner.with_search(app, n=10, interval_cycles=interval)
    without_h = runner.with_search(
        app, n=10, interval_cycles=interval, zero_keep_max=0, interval_growth=1.0
    )
    actual = base.actual
    table = Table(
        ["variant", "found", "a rank", "rsd rank", "top-5 hit rate"],
        title="Ablation: phase heuristic on applu",
    )
    values: dict = {"actual": actual.as_dict()}
    for label, run in (("with heuristic", with_h), ("without", without_h)):
        found = run.measured.names()
        top5 = [s.name for s in actual.top(5)]
        hit = sum(1 for nm in top5 if nm in found) / len(top5)
        table.add_row(
            [
                label,
                len(found),
                run.measured.rank_of("a") or "-",
                run.measured.rank_of("rsd") or "-",
                f"{hit:.2f}",
            ]
        )
        values[label] = {"found": found, "top5_hit_rate": hit}
    notes = [
        "expected: disabling zero-miss retention loses phase-quiet arrays "
        "(a/b/c go silent during applu's RHS phase) or finds fewer of the top 5",
    ]
    return ExperimentReport(
        experiment="ablation-phase",
        table=render_table(table),
        values=values,
        notes=notes,
    )


def run_multiplex_ablation(runner: ExperimentRunner, app: str = "su2cor") -> ExperimentReport:
    base = runner.baseline(app)
    interval = max(10_000, base.stats.app_cycles // runner.config.intervals_per_run)
    real = runner.with_search(app, n=10, interval_cycles=interval)

    mux_sim = Simulator(
        cache_config=runner.config.cache,
        n_region_counters=10,
        multiplexed_counters=True,
        seed=runner.config.seed,
    )
    mux = mux_sim.run(
        runner.make(app), tool=NWaySearch(n=10, interval_cycles=interval)
    )
    actual = base.actual
    table = Table(
        ["variant", "found", "top obj", "top share est %", "actual top share %"],
        title=f"Ablation: dedicated counters vs 1 multiplexed counter ({app})",
    )
    values: dict = {"actual": actual.as_dict()}
    for label, run in (("10 real counters", real), ("multiplexed", mux)):
        names = run.measured.names()
        top = names[0] if names else "-"
        table.add_row(
            [
                label,
                len(names),
                top,
                fmt_pct(run.measured.share_of(top)) if names else "-",
                fmt_pct(actual.share_of(top)) if names else "-",
            ]
        )
        values[label] = {"found": names, "measured": run.measured.as_dict()}
    notes = [
        "expected: multiplexing still finds the dominant object but with "
        "noisier estimates (each region observed 1/n of the time, scaled up)",
    ]
    return ExperimentReport(
        experiment="ablation-multiplex",
        table=render_table(table),
        values=values,
        notes=notes,
    )


def run_policy_ablation(runner: ExperimentRunner, app: str = "tomcatv") -> ExperimentReport:
    table = Table(
        ["policy", "top-3 actual", "top-3 sampled"],
        title=f"Ablation: replacement policy robustness ({app})",
    )
    values: dict = {}
    for policy in (ReplacementPolicy.LRU, ReplacementPolicy.FIFO, ReplacementPolicy.RANDOM):
        cache = CacheConfig(
            size=runner.config.cache.size,
            line_size=runner.config.cache.line_size,
            assoc=runner.config.cache.assoc,
            policy=policy,
        )
        sim = Simulator(cache_config=cache, seed=runner.config.seed)
        base = sim.run(runner.make(app))
        period = max(16, base.stats.app_misses // runner.config.target_samples)
        from repro.core.sampling import SamplingProfiler, PeriodSchedule

        run = sim.run(
            runner.make(app),
            tool=SamplingProfiler(
                period=period, schedule=PeriodSchedule.PRIME, seed=runner.config.seed
            ),
        )
        actual3 = [s.name for s in base.actual.top(3)]
        sampled3 = [s.name for s in run.measured.top(3)]
        table.add_row([policy.value, ",".join(actual3), ",".join(sampled3)])
        values[policy.value] = {"actual_top3": actual3, "sampled_top3": sampled3}
    notes = ["expected: the top-3 object set is stable across replacement policies"]
    return ExperimentReport(
        experiment="ablation-policy",
        table=render_table(table),
        values=values,
        notes=notes,
    )
