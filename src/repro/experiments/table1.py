"""Experiment E1 — Table 1: actual vs sampling vs 10-way search.

For each application: an uninstrumented baseline provides the exact
"Actual" ranks/percentages; a sampling run at the scaled 1-in-50,000
equivalent period and a 10-way search run provide the two estimates.
The report renders the three side by side, paper-style.
"""

from __future__ import annotations

from repro.core.report import max_share_error, rank_agreement
from repro.experiments.records import PAPER_TABLE1, ExperimentReport
from repro.experiments.runner import ExperimentRunner
from repro.util.format import Table, render_table
from repro.util.units import fmt_pct


def run_table1(
    runner: ExperimentRunner,
    apps: list[str] | None = None,
    top_k: int = 7,
) -> ExperimentReport:
    apps = apps or runner.apps()
    table = Table(
        [
            "app", "object",
            "actual rank", "actual %",
            "sample rank", "sample %",
            "search rank", "search %",
            "paper actual %",
        ],
        title="Table 1: results for sampling and 10-way search",
    )
    values: dict = {}
    for app in apps:
        actual = runner.baseline(app).actual
        sample = runner.with_sampling(app).measured
        search = runner.with_search(app, n=10).measured

        names = [s.name for s in actual.top(top_k)]
        for prof in (sample, search):
            for s in prof.top(top_k):
                if s.name not in names:
                    names.append(s.name)
        for name in names:
            paper = PAPER_TABLE1.get(app, {}).get(name)
            table.add_row(
                [
                    app,
                    name,
                    actual.rank_of(name) or "-",
                    fmt_pct(actual.share_of(name)) if actual.rank_of(name) else "-",
                    sample.rank_of(name) or "-",
                    fmt_pct(sample.share_of(name)) if sample.rank_of(name) else "-",
                    search.rank_of(name) or "-",
                    fmt_pct(search.share_of(name)) if search.rank_of(name) else "-",
                    paper[1] if paper else "-",
                ]
            )
        table.add_separator()
        values[app] = {
            "actual": actual.as_dict(),
            "sample": sample.as_dict(),
            "search": search.as_dict(),
            "sample_rank_agreement": rank_agreement(actual, sample, k=5),
            "search_rank_agreement": rank_agreement(actual, search, k=5),
            "sample_max_error": max_share_error(actual, sample),
            "search_max_error": max_share_error(actual, search),
            "sampling_period": sample.meta.get("period"),
            "search_iterations": search.meta.get("iterations"),
        }
    notes = [
        "sampling period scaled to ~1 sample per (total_misses/2000) misses "
        "(the paper's 1-in-50,000 at SPEC scale)",
        "search percentages from the post-search estimation pass, as in the paper",
    ]
    return ExperimentReport(
        experiment="table1", table=render_table(table), values=values, notes=notes
    )
