"""Experiment runner: shared configuration, baseline caching, scaling.

The paper's runs cover billions of cycles; ours are scaled down (see
DESIGN.md section 2), so measurement parameters that the paper quotes as
absolute values are derived here from each application's *baseline* run:

* the Table-1 sampling period ("1 in 50,000") becomes
  ``total_misses // target_samples`` so the sample count stays in the
  paper's regime;
* the search interval becomes ``total_cycles // intervals_per_run`` so a
  run holds a paper-like number of search iterations;
* Figure 3/4 sampling periods stay *absolute* (1k, 10k, 100k, 1M-miss
  equivalents scaled by one global factor), because overhead per cycle
  depends only on the miss rate and the period, not on run length.

Baselines are cached: every instrumented configuration of an application
reuses the same uninstrumented reference measurements.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache import CacheConfig
from repro.core.sampling import PeriodSchedule, SamplingProfiler
from repro.core.search import NWaySearch
from repro.hpm.interrupts import CostModel
from repro.sim.engine import RunResult, Simulator
from repro.workloads.registry import make_workload, workload_names


@dataclass
class RunnerConfig:
    """Knobs shared by every experiment."""

    cache: CacheConfig = None
    seed: int = 1234
    #: Target number of samples for accuracy experiments (Table 1).
    target_samples: int = 2000
    #: Search iterations a run should be able to hold.
    intervals_per_run: int = 45
    #: Scale factor applied to the paper's absolute sampling periods in
    #: the overhead experiments (1k/10k/100k/1M misses). 1.0 keeps the
    #: paper's literal values.
    period_scale: float = 1.0
    #: Workload size knobs forwarded to each factory (quick mode shrinks).
    workload_kwargs: dict = None

    def __post_init__(self) -> None:
        if self.cache is None:
            self.cache = CacheConfig()
        if self.workload_kwargs is None:
            self.workload_kwargs = {}


class ExperimentRunner:
    """Runs applications under the paper's measurement configurations."""

    def __init__(
        self,
        config: RunnerConfig | None = None,
        quick: bool = False,
    ) -> None:
        self.config = config or RunnerConfig()
        self.quick = quick
        self._baselines: dict[str, RunResult] = {}
        self.simulator = Simulator(
            cache_config=self.config.cache,
            n_region_counters=10,
            cost_model=CostModel(),
            seed=self.config.seed,
        )

    # ------------------------------------------------------------ workloads

    def apps(self) -> list[str]:
        return workload_names()

    def make(self, app: str):
        """A fresh workload instance (streams are single-use generators)."""
        kwargs = dict(self.config.workload_kwargs)
        if self.quick:
            kwargs.update(_QUICK_KWARGS.get(app, {}))
        return make_workload(app, seed=self.config.seed, **kwargs)

    # ------------------------------------------------------------- baseline

    def baseline(self, app: str, series_bucket_cycles: int | None = None) -> RunResult:
        """Uninstrumented run (cached unless a time series is requested)."""
        if series_bucket_cycles is not None:
            return self.simulator.run(
                self.make(app), series_bucket_cycles=series_bucket_cycles
            )
        if app not in self._baselines:
            self._baselines[app] = self.simulator.run(self.make(app))
        return self._baselines[app]

    # ----------------------------------------------------- derived settings

    def scaled_sampling_period(self, app: str) -> int:
        """The '1 in 50,000 equivalent' period for accuracy experiments."""
        misses = self.baseline(app).stats.app_misses
        return max(16, misses // self.config.target_samples)

    def search_interval(self, app: str) -> int:
        """Search timer interval sized to the application's run length."""
        cycles = self.baseline(app).stats.app_cycles
        return max(10_000, cycles // self.config.intervals_per_run)

    def overhead_periods(self) -> list[int]:
        """The paper's Figure 3/4 sampling periods (possibly rescaled)."""
        return [
            max(16, int(p * self.config.period_scale))
            for p in (1_000, 10_000, 100_000, 1_000_000)
        ]

    # ------------------------------------------------------------ tool runs

    def with_sampling(
        self,
        app: str,
        period: int | None = None,
        schedule: PeriodSchedule | str = PeriodSchedule.FIXED,
        max_refs: int | None = None,
    ) -> RunResult:
        period = period or self.scaled_sampling_period(app)
        tool = SamplingProfiler(
            period=period, schedule=schedule, seed=self.config.seed
        )
        return self.simulator.run(self.make(app), tool=tool, max_refs=max_refs)

    def with_search(
        self,
        app: str,
        n: int = 10,
        interval_cycles: int | None = None,
        max_refs: int | None = None,
        **search_kwargs,
    ) -> RunResult:
        interval = interval_cycles or self.search_interval(app)
        tool = NWaySearch(n=n, interval_cycles=interval, **search_kwargs)
        return self.simulator.run(self.make(app), tool=tool, max_refs=max_refs)


#: Reduced-size workload parameters for fast test runs.
_QUICK_KWARGS: dict[str, dict] = {
    "tomcatv": {"n_steps": 4, "rows_per_step": 16},
    "swim": {"n_steps": 4, "lines_per_array_per_step": 1600},
    "su2cor": {"total_lines": 160_000, "slices_per_era": 24},
    "mgrid": {"n_vcycles": 4, "fine_lines": 9_000},
    "applu": {"n_iterations": 7, "jacobian_lines": 4_500},
    "compress": {"input_lines": 30_000},
    "ijpeg": {"image_lines": 20_000},
}
