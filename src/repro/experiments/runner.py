"""Experiment runner: shared configuration, result caching, scaling.

The paper's runs cover billions of cycles; ours are scaled down (see
DESIGN.md section 2), so measurement parameters that the paper quotes as
absolute values are derived here from each application's *baseline* run:

* the Table-1 sampling period ("1 in 50,000") becomes
  ``total_misses // target_samples`` so the sample count stays in the
  paper's regime;
* the search interval becomes ``total_cycles // intervals_per_run`` so a
  run holds a paper-like number of search iterations;
* Figure 3/4 sampling periods stay *absolute* (1k, 10k, 100k, 1M-miss
  equivalents scaled by one global factor), because overhead per cycle
  depends only on the miss rate and the period, not on run length.

Every run the runner performs is described by a declarative
:class:`~repro.experiments.parallel.TaskSpec` and executed through a
two-level result cache: an in-process memo (so baselines and repeated
cells are computed once per runner, as before) and, when a cache
directory is configured, the on-disk
:class:`~repro.experiments.cache_store.ResultCache` shared across
invocations. :meth:`warm` fans the standard experiment grid out over
worker processes to populate both.
"""

from __future__ import annotations

import dataclasses
import os
import time
from dataclasses import dataclass

from repro.cache import CacheConfig
from repro.core.sampling import PeriodSchedule
from repro.experiments.cache_store import Manifest, ResultCache
from repro.experiments.parallel import (
    CheckpointPolicy,
    ParallelRunner,
    SimSpec,
    TaskSpec,
    ToolSpec,
    execute_task,
)
from repro.hpm.interrupts import CostModel
from repro.sim.engine import RunResult, Simulator
from repro.workloads.registry import make_workload, workload_names

#: Experiments whose cells :meth:`ExperimentRunner.warm` knows how to
#: pre-compute (the accuracy tables, the overhead/perturbation grid and
#: the MRC sweep's exact verification cells).
WARMABLE_EXPERIMENTS = ("table1", "table2", "fig3", "fig4", "fig5", "mrc")


@dataclass
class RunnerConfig:
    """Knobs shared by every experiment."""

    cache: CacheConfig = None
    seed: int = 1234
    #: Target number of samples for accuracy experiments (Table 1).
    target_samples: int = 2000
    #: Search iterations a run should be able to hold.
    intervals_per_run: int = 45
    #: Scale factor applied to the paper's absolute sampling periods in
    #: the overhead experiments (1k/10k/100k/1M misses). 1.0 keeps the
    #: paper's literal values.
    period_scale: float = 1.0
    #: Workload size knobs forwarded to each factory (quick mode shrinks).
    workload_kwargs: dict = None
    #: Cache kernel backend override ("reference"/"array"/"auto"); None
    #: keeps the cache config's own selection. Backends are bit-identical,
    #: but the choice is folded into ``cache`` so every TaskSpec key
    #: carries it.
    backend: str = None
    #: Lower workloads to precompiled reference streams before running
    #: (repro.workloads.compile); bit-identical speed knob, carried into
    #: task keys via SimSpec. The stream cache shares the runner's
    #: ``cache_dir``.
    compile_streams: bool = False
    #: Mechanism decorator stack applied to the cache (a spec tuple or a
    #: compact string like ``"vc+sb"`` — see repro.cache.config). Unlike
    #: ``backend`` this *changes simulated behaviour*; it is folded into
    #: ``cache`` so every TaskSpec key carries it. None keeps the cache
    #: config's own ``mechanisms``.
    mechanisms: "str | tuple | None" = None

    def __post_init__(self) -> None:
        if self.cache is None:
            self.cache = CacheConfig()
        if self.backend is not None:
            self.cache = dataclasses.replace(self.cache, backend=self.backend)
        if self.mechanisms is not None:
            self.cache = dataclasses.replace(
                self.cache, mechanisms=self.mechanisms
            )
        if self.workload_kwargs is None:
            self.workload_kwargs = {}


class ExperimentRunner:
    """Runs applications under the paper's measurement configurations.

    ``jobs`` sets the default worker count for :meth:`warm`;
    ``cache_dir`` (a path or an existing :class:`ResultCache`) enables
    the persistent result cache, so repeated invocations of the same
    grid are served from disk instead of re-simulating.
    """

    def __init__(
        self,
        config: RunnerConfig | None = None,
        quick: bool = False,
        jobs: int = 1,
        cache_dir: "str | os.PathLike | ResultCache | None" = None,
        resume: bool = False,
        checkpoint_every_refs: int | None = None,
    ) -> None:
        self.config = config or RunnerConfig()
        self.quick = quick
        self.jobs = max(1, jobs)
        if isinstance(cache_dir, ResultCache):
            self.result_cache: ResultCache | None = cache_dir
        elif cache_dir is not None:
            self.result_cache = ResultCache(cache_dir)
        else:
            self.result_cache = None
        #: Mid-run checkpointing (EXPERIMENTS.md "Resuming interrupted
        #: grids"): requires the persistent cache, whose directory also
        #: hosts the checkpoint files.
        self.checkpoints: CheckpointPolicy | None = None
        if resume:
            if self.result_cache is None:
                raise ValueError(
                    "resume=True requires cache_dir (checkpoints live "
                    "under the result-cache directory)"
                )
            kwargs = (
                {"every_refs": checkpoint_every_refs}
                if checkpoint_every_refs is not None
                else {}
            )
            self.checkpoints = CheckpointPolicy(
                self.result_cache.root / "checkpoints", **kwargs
            )
        # "is not None", not truthiness: ResultCache defines __len__, so a
        # fresh (empty) cache directory is falsy.
        self.manifest = Manifest(
            path=self.result_cache.manifest_path
            if self.result_cache is not None
            else None
        )
        #: In-process memo: task key -> result, so baselines and repeated
        #: cells are simulated once per runner regardless of disk caching.
        self._memo: dict[str, RunResult] = {}
        #: Compiled-stream cache root (shares the result-cache directory;
        #: None keeps compilation per-process when no cache is configured).
        self.stream_cache_dir = (
            str(self.result_cache.root)
            if self.result_cache is not None
            else None
        )
        self.sim_spec = SimSpec(
            cache=self.config.cache,
            n_region_counters=10,
            cost_model=CostModel(),
            compile_streams=self.config.compile_streams,
        )
        self.simulator = Simulator(
            cache_config=self.config.cache,
            n_region_counters=10,
            cost_model=CostModel(),
            seed=self.config.seed,
            compile_streams=self.config.compile_streams,
            stream_cache_dir=self.stream_cache_dir,
        )

    # ------------------------------------------------------------ workloads

    def apps(self) -> list[str]:
        return workload_names()

    def workload_kwargs(self, app: str) -> dict:
        """The (quick-adjusted) construction kwargs for one application."""
        kwargs = dict(self.config.workload_kwargs)
        if self.quick:
            kwargs.update(_QUICK_KWARGS.get(app, {}))
        return kwargs

    def make(self, app: str):
        """A fresh workload instance (streams are single-use generators)."""
        return make_workload(
            app, seed=self.config.seed, **self.workload_kwargs(app)
        )

    # ------------------------------------------------------------ task layer

    def task(
        self,
        app: str,
        tool: ToolSpec | None = None,
        max_refs: int | None = None,
        series_bucket_cycles: int | None = None,
        label: str = "",
    ) -> TaskSpec:
        """The :class:`TaskSpec` for one cell of this runner's grid."""
        return TaskSpec(
            workload=app,
            workload_kwargs=self.workload_kwargs(app),
            seed=self.config.seed,
            tool=tool,
            max_refs=max_refs,
            series_bucket_cycles=series_bucket_cycles,
            sim=self.sim_spec,
            label=label,
        )

    def mrc_task(
        self, app: str, size: int | None = None, max_refs: int | None = None
    ) -> TaskSpec:
        """A verification cell for the MRC sweep: this runner's cache
        geometry resized to ``size`` bytes, no instrumentation tool.

        The cell is an ordinary :class:`TaskSpec` — same seed, same
        workload kwargs, the resized cache folded into the ``sim`` spec —
        so it shares the result cache with every other experiment that
        lands on the same configuration.
        """
        cache = self.config.cache
        if size is not None:
            cache = dataclasses.replace(cache, size=size)
        return TaskSpec(
            workload=app,
            workload_kwargs=self.workload_kwargs(app),
            seed=self.config.seed,
            max_refs=max_refs,
            sim=dataclasses.replace(self.sim_spec, cache=cache),
            label=f"{app}/mrc-verify({cache.size // 1024}K)",
        )

    def run_task(self, spec: TaskSpec) -> RunResult:
        """Execute one cell through the memo and the result cache."""
        key = spec.key()
        if key in self._memo:
            return self._memo[key]
        if self.result_cache is not None:
            cached = self.result_cache.get(key)
            if cached is not None:
                self._memo[key] = cached
                self.manifest.record(
                    task=spec.describe(),
                    workload=spec.workload,
                    seed=spec.seed,
                    key=key,
                    cached=True,
                    wall_s=0.0,
                )
                return cached
        t0 = time.perf_counter()
        result = execute_task(spec, self.checkpoints, self.stream_cache_dir)
        wall = time.perf_counter() - t0
        self._memo[key] = result
        if self.result_cache is not None:
            self.result_cache.put(key, result)
        self.manifest.record(
            task=spec.describe(),
            workload=spec.workload,
            seed=spec.seed,
            key=key,
            cached=False,
            wall_s=wall,
        )
        return result

    # ------------------------------------------------------------- baseline

    def baseline(self, app: str, series_bucket_cycles: int | None = None) -> RunResult:
        """Uninstrumented run (memoised, including time-series variants)."""
        return self.run_task(
            self.task(
                app,
                series_bucket_cycles=series_bucket_cycles,
                label=f"{app}/baseline"
                + (f"+series({series_bucket_cycles})" if series_bucket_cycles else ""),
            )
        )

    # ----------------------------------------------------- derived settings

    def scaled_sampling_period(self, app: str) -> int:
        """The '1 in 50,000 equivalent' period for accuracy experiments."""
        misses = self.baseline(app).stats.app_misses
        return max(16, misses // self.config.target_samples)

    def search_interval(self, app: str) -> int:
        """Search timer interval sized to the application's run length."""
        cycles = self.baseline(app).stats.app_cycles
        return max(10_000, cycles // self.config.intervals_per_run)

    def overhead_periods(self) -> list[int]:
        """The paper's Figure 3/4 sampling periods (possibly rescaled)."""
        return [
            max(16, int(p * self.config.period_scale))
            for p in (1_000, 10_000, 100_000, 1_000_000)
        ]

    # ------------------------------------------------------------ tool runs

    def _sampling_task(
        self,
        app: str,
        period: int | None = None,
        schedule: PeriodSchedule | str = PeriodSchedule.FIXED,
        max_refs: int | None = None,
    ) -> TaskSpec:
        period = period or self.scaled_sampling_period(app)
        schedule = PeriodSchedule(schedule)
        tool = ToolSpec(
            "sampling",
            {"period": period, "schedule": schedule.value, "seed": self.config.seed},
        )
        return self.task(
            app,
            tool=tool,
            max_refs=max_refs,
            label=f"{app}/sample(1/{period},{schedule.value})",
        )

    def _search_task(
        self,
        app: str,
        n: int = 10,
        interval_cycles: int | None = None,
        max_refs: int | None = None,
        **search_kwargs,
    ) -> TaskSpec:
        interval = interval_cycles or self.search_interval(app)
        tool = ToolSpec(
            "search", {"n": n, "interval_cycles": interval, **search_kwargs}
        )
        return self.task(
            app, tool=tool, max_refs=max_refs, label=f"{app}/search({n}-way)"
        )

    def with_sampling(
        self,
        app: str,
        period: int | None = None,
        schedule: PeriodSchedule | str = PeriodSchedule.FIXED,
        max_refs: int | None = None,
    ) -> RunResult:
        return self.run_task(
            self._sampling_task(app, period=period, schedule=schedule, max_refs=max_refs)
        )

    def with_search(
        self,
        app: str,
        n: int = 10,
        interval_cycles: int | None = None,
        max_refs: int | None = None,
        **search_kwargs,
    ) -> RunResult:
        return self.run_task(
            self._search_task(
                app,
                n=n,
                interval_cycles=interval_cycles,
                max_refs=max_refs,
                **search_kwargs,
            )
        )

    # ------------------------------------------------------------- parallel

    def _cells_for(self, experiment: str, apps: list[str]) -> list[TaskSpec]:
        """The grid cells one experiment driver will request.

        Baselines must already be available — the cells' periods and
        intervals are derived from them, which is exactly why warming is
        two-phase.
        """
        cells: list[TaskSpec] = []
        if experiment == "table1":
            for app in apps:
                cells.append(self._sampling_task(app))
                cells.append(self._search_task(app, n=10))
        elif experiment == "table2":
            for app in apps:
                cells.append(self._search_task(app, n=2))
                cells.append(self._search_task(app, n=10))
        elif experiment in ("fig3", "fig4"):
            for app in apps:
                max_refs = self.baseline(app).stats.app_refs
                cells.append(self._search_task(app, n=10, max_refs=max_refs))
                for period in self.overhead_periods():
                    cells.append(
                        self._sampling_task(app, period=period, max_refs=max_refs)
                    )
        elif experiment == "mrc":
            if self.config.cache.mechanisms:
                # Decorated stacks bypass the MRC model entirely (the
                # driver raises); warming would raise here too.
                return cells
            # Deterministic for a fixed runner config: the sampled MRC
            # pass picks the same highest-curvature cells warm() and the
            # driver will both request.
            from repro.experiments.mrc import verification_cells

            for app in apps:
                cells.extend(
                    spec for _, spec in verification_cells(self, app)
                )
        elif experiment == "fig5":
            base = self.baseline("applu")
            bucket = max(1, base.stats.app_cycles // 48)
            cells.append(
                self.task(
                    "applu",
                    series_bucket_cycles=bucket,
                    label=f"applu/baseline+series({bucket})",
                )
            )
        return cells

    def warm(
        self,
        apps: list[str] | None = None,
        experiments: list[str] | None = None,
        jobs: int | None = None,
    ) -> Manifest:
        """Pre-compute the experiment grid with parallel workers.

        Phase 1 runs every application baseline concurrently; phase 2
        derives the instrumented cells (whose periods/intervals depend on
        the baselines) and fans them out. Drivers executed afterwards
        find every cell in the cache, so ``warm()`` + serial drivers is
        equivalent to — and bit-identical with — fully serial execution.
        """
        apps = apps or self.apps()
        experiments = [
            e for e in (experiments or WARMABLE_EXPERIMENTS)
            if e in WARMABLE_EXPERIMENTS
        ]
        jobs = max(1, jobs or self.jobs)
        pool = ParallelRunner(
            jobs=jobs,
            cache=self.result_cache,
            manifest=self.manifest,
            checkpoints=self.checkpoints,
            stream_cache_dir=self.stream_cache_dir,
        )

        base_specs = [self.task(app, label=f"{app}/baseline") for app in apps]
        fresh = [s for s in base_specs if s.key() not in self._memo]
        for spec, result in zip(fresh, pool.run(fresh)):
            self._memo[spec.key()] = result

        cells: list[TaskSpec] = []
        seen: set[str] = set(self._memo)
        for experiment in experiments:
            for spec in self._cells_for(experiment, apps):
                key = spec.key()
                if key not in seen:
                    seen.add(key)
                    cells.append(spec)
        for spec, result in zip(cells, pool.run(cells)):
            self._memo[spec.key()] = result
        return self.manifest


#: Reduced-size workload parameters for fast test runs.
_QUICK_KWARGS: dict[str, dict] = {
    "tomcatv": {"n_steps": 4, "rows_per_step": 16},
    "swim": {"n_steps": 4, "lines_per_array_per_step": 1600},
    "su2cor": {"total_lines": 160_000, "slices_per_era": 24},
    "mgrid": {"n_vcycles": 4, "fine_lines": 9_000},
    "applu": {"n_iterations": 7, "jacobian_lines": 4_500},
    "compress": {"input_lines": 30_000},
    "ijpeg": {"image_lines": 20_000},
}
