"""Experiment E11 (extension) — cache-geometry robustness sweep.

The paper evaluates one cache (2 MB set-associative). A tool's users
will run it against whatever geometry their machine has, so this sweep
re-runs the profiling question across sizes and associativities and
checks the answer is stable: the top objects and their approximate
shares should survive geometry changes (absolute miss counts will not,
and need not).
"""

from __future__ import annotations

from repro.cache import CacheConfig
from repro.core.sampling import PeriodSchedule, SamplingProfiler
from repro.experiments.records import ExperimentReport
from repro.experiments.runner import ExperimentRunner
from repro.sim.engine import Simulator
from repro.util.format import Table, render_table
from repro.util.units import fmt_bytes, fmt_pct


def run_geometry_sweep(
    runner: ExperimentRunner,
    app: str = "su2cor",
    sizes: list[int] | None = None,
    assocs: list[int] | None = None,
) -> ExperimentReport:
    sizes = sizes or [64 * 1024, 256 * 1024, 1 << 20]
    assocs = assocs or [1, 4, 16]
    table = Table(
        ["geometry", "misses", "top object", "top actual %", "top sampled %"],
        title=f"Extension: geometry robustness sweep ({app})",
    )
    values: dict = {}
    reference_top: str | None = None
    for size in sizes:
        for assoc in assocs:
            cfg = CacheConfig(size=size, assoc=assoc)
            sim = Simulator(cache_config=cfg, seed=runner.config.seed)
            base = sim.run(runner.make(app))
            period = max(
                16, base.stats.app_misses // runner.config.target_samples
            )
            sampled = sim.run(
                runner.make(app),
                tool=SamplingProfiler(
                    period=period,
                    schedule=PeriodSchedule.PRIME,
                    seed=runner.config.seed,
                ),
            )
            top = base.actual.names()[0]
            reference_top = reference_top or top
            key = f"{fmt_bytes(size)}/{assoc}way"
            table.add_row(
                [
                    key,
                    base.stats.app_misses,
                    top,
                    fmt_pct(base.actual.share_of(top)),
                    fmt_pct(sampled.measured.share_of(top)),
                ]
            )
            values[key] = {
                "misses": base.stats.app_misses,
                "top": top,
                "top_share": base.actual.share_of(top),
                "top_sampled": sampled.measured.share_of(top),
            }
    stable = all(v["top"] == reference_top for v in values.values())
    values["stable_top"] = stable
    values["reference_top"] = reference_top
    notes = [
        f"top object {'stable' if stable else 'UNSTABLE'} across "
        f"{len(sizes)}x{len(assocs)} geometries "
        f"(reference: {reference_top})",
        "expected: the dominant object and its sampled share survive any "
        "reasonable geometry; only absolute miss counts move",
    ]
    return ExperimentReport(
        experiment="ext-sweep", table=render_table(table), values=values, notes=notes
    )
