"""Experiment E10 (extension) — miss-ratio curves for the workloads.

Not in the paper, but the natural companion analysis: the reuse-distance
profile of each application's reference stream predicts the miss ratio
of every fully-associative LRU cache size at once, locating each app on
the capacity curve (and explaining the miss-rate bands of section 3.2:
ijpeg/compress live left of their working-set knee, the FP codes far to
its right).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reuse import miss_ratio_curve
from repro.experiments.records import ExperimentReport
from repro.experiments.runner import ExperimentRunner
from repro.util.format import Table, render_table
from repro.util.units import fmt_bytes


def run_mrc(
    runner: ExperimentRunner,
    apps: list[str] | None = None,
    sizes: list[int] | None = None,
    sample_refs: int = 400_000,
) -> ExperimentReport:
    apps = apps or ["mgrid", "compress", "ijpeg"]
    sizes = sizes or [64 * 1024, 256 * 1024, 1 << 20, 4 << 20]
    table = Table(
        ["app", "refs sampled"] + [fmt_bytes(s) for s in sizes],
        title="Extension: predicted miss ratio vs cache size (LRU MRC)",
    )
    values: dict = {"sizes": sizes}
    for app in apps:
        wl = runner.make(app)
        chunks = []
        total = 0
        for block in wl.blocks():
            chunks.append(block.addrs)
            total += len(block.addrs)
            if total >= sample_refs:
                break
        stream = np.concatenate(chunks)[:sample_refs]
        curve = miss_ratio_curve(stream, sizes, runner.config.cache.line_size)
        table.add_row(
            [app, len(stream)] + [f"{curve[s]:.4f}" for s in sizes]
        )
        values[app] = {s: curve[s] for s in sizes}
    notes = [
        "fully-associative LRU prediction from one reuse-distance pass; "
        "expected shape: miss ratios fall monotonically with size, the "
        "low-miss-rate apps (ijpeg, compress) sit far below the FP codes "
        "at every size, and each app's knee marks its working set",
    ]
    return ExperimentReport(
        experiment="ext-mrc", table=render_table(table), values=values, notes=notes
    )
