"""Experiment E12 — one-pass MRC sweep with exact verification cells.

The old extension experiment predicted fully-associative miss ratios
from a reuse-distance pass; this driver runs the full
:mod:`repro.cache.mrc` engine instead: one pass (SHARDS-sampled by
default, exact on request) yields the whole size sweep for the runner's
cache geometry — associativity correction included — and the exact
simulator is spent only on the few cells where the predicted curve
bends hardest (:func:`repro.cache.mrc.select_verification_sizes`).
Verification cells flow through the runner's task layer, so they are
cached, warmable (``ExperimentRunner.warm(experiments=["mrc"])``) and
bit-identical with any other grid cell at the same configuration.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cache.mrc import MrcResult, build_mrc, select_verification_sizes
from repro.experiments.records import ExperimentReport
from repro.util.format import Table, render_table
from repro.util.units import fmt_bytes

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.parallel import TaskSpec
    from repro.experiments.runner import ExperimentRunner

#: The default sweep: nine sizes spanning 16 KiB to 4 MiB (>= 8 cells,
#: straddling every quick workload's knee and the paper's 2 MB point).
DEFAULT_SIZES = [1 << b for b in range(14, 23)]

#: References each pass (and each verification simulation) consumes.
DEFAULT_SAMPLE_REFS = 400_000

#: SHARDS rate for the default sampled sweep.
DEFAULT_RATE = 0.1

#: Exact-simulator cells spent per application.
DEFAULT_VERIFY_CELLS = 2


def _require_undecorated(runner: "ExperimentRunner") -> None:
    """Refuse mechanism-decorated cache configs.

    The MRC engine's stack-distance histogram and binomial associativity
    correction (``repro.cache.mrc.model``) model an undecorated
    set-associative cache; victim/miss caches and stream buffers rescue
    misses in ways no reuse-distance argument captures, so a decorated
    stack silently *bypasses* the correction rather than degrading it.
    Mechanism sweeps have their own exact-simulation driver
    (``repro mechanisms`` — see ``experiments/mechanisms.py``).
    """
    from repro.errors import CacheConfigError

    mechanisms = runner.config.cache.mechanisms
    if mechanisms:
        stack = "+".join(m.describe() for m in mechanisms)
        raise CacheConfigError(
            "the MRC engine models an undecorated set-associative cache; "
            f"mechanism-decorated stacks ({stack}) bypass the binomial "
            "associativity correction — use `repro mechanisms` instead"
        )


def mrc_pass(
    runner: "ExperimentRunner",
    app: str,
    sample_refs: int = DEFAULT_SAMPLE_REFS,
    mode: str = "shards",
    sample_rate: float = DEFAULT_RATE,
) -> MrcResult:
    """One MRC pass for ``app`` under the runner's seed and line size.

    Compiles the reference stream through the runner's stream cache when
    the workload allows it; heap-churning workloads fall back to the
    generator path.
    """
    _require_undecorated(runner)
    workload = runner.make(app)
    compiled = None
    if getattr(type(workload), "compiled_stream_safe", True):
        from repro.workloads.compile import compiled_stream_for

        compiled = compiled_stream_for(workload, runner.stream_cache_dir)
    return build_mrc(
        workload,
        compiled=compiled,
        mode=mode,
        sample_rate=sample_rate,
        seed=runner.config.seed,
        max_refs=sample_refs,
        line_size=runner.config.cache.line_size,
    )


def verification_cells(
    runner: "ExperimentRunner",
    app: str,
    sizes: "list[int] | None" = None,
    sample_refs: int = DEFAULT_SAMPLE_REFS,
    mode: str = "shards",
    sample_rate: float = DEFAULT_RATE,
    verify_cells: int = DEFAULT_VERIFY_CELLS,
) -> "list[tuple[int, TaskSpec]]":
    """The exact-simulator cells the sweep will verify against.

    Deterministic for a given runner configuration — ``warm()`` calls
    this to pre-compute the very cells :func:`run_mrc` will request.
    """
    sizes = sizes or DEFAULT_SIZES
    result = mrc_pass(runner, app, sample_refs, mode, sample_rate)
    curve = result.curve(sizes, assoc=runner.config.cache.assoc)
    chosen = select_verification_sizes(curve, verify_cells)
    return [
        (size, runner.mrc_task(app, size=size, max_refs=sample_refs))
        for size in chosen
    ]


def run_mrc(
    runner: "ExperimentRunner",
    apps: "list[str] | None" = None,
    sizes: "list[int] | None" = None,
    sample_refs: int = DEFAULT_SAMPLE_REFS,
    mode: str = "shards",
    sample_rate: float = DEFAULT_RATE,
    verify_cells: int = DEFAULT_VERIFY_CELLS,
) -> ExperimentReport:
    apps = apps or ["mgrid", "compress", "ijpeg"]
    sizes = sizes or DEFAULT_SIZES
    assoc = runner.config.cache.assoc
    table = Table(
        ["app", "refs"] + [fmt_bytes(s) for s in sizes],
        title=(
            f"E12: one-pass MRC sweep ({mode}, {assoc}-way corrected), "
            "* = simulator-verified cell"
        ),
    )
    values: dict = {"sizes": sizes, "mode": mode, "assoc": assoc, "verify": {}}
    worst_err = 0.0
    for app in apps:
        result = mrc_pass(runner, app, sample_refs, mode, sample_rate)
        curve = result.curve(sizes, assoc=assoc)
        values[app] = dict(curve)
        chosen = select_verification_sizes(curve, verify_cells)
        checks: dict[int, dict[str, float]] = {}
        for size in chosen:
            run = runner.run_task(
                runner.mrc_task(app, size=size, max_refs=sample_refs)
            )
            simulated = (
                run.stats.app_misses / run.stats.app_refs
                if run.stats.app_refs
                else 0.0
            )
            checks[size] = {"predicted": curve[size], "simulated": simulated}
            worst_err = max(worst_err, abs(curve[size] - simulated))
        values["verify"][app] = checks
        table.add_row(
            [app, result.n_refs]
            + [
                f"{curve[s]:.4f}" + ("*" if s in checks else "")
                for s in sizes
            ]
        )
    notes = [
        f"one {mode} pass per app predicts all {len(sizes)} sizes; the "
        f"exact simulator runs only the {verify_cells} highest-curvature "
        "cells per app (marked *)",
        "verification: worst |predicted - simulated| miss-ratio gap "
        f"across all checked cells = {worst_err:.4f}",
    ]
    return ExperimentReport(
        experiment="mrc", table=render_table(table), values=values, notes=notes
    )
