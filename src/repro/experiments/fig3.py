"""Experiment E3 — Figure 3: increase in cache misses due to instrumentation.

Each application runs uninstrumented, under the 10-way search, and under
sampling at the paper's period ladder (1-in-1,000 ... 1-in-1,000,000
misses). Every run executes the same number of application references
("the same number of application instructions" in the paper); the metric
is the percentage increase in total cache misses over the baseline,
which combines the instrumentation's own misses and the application
misses its cache pollution causes.
"""

from __future__ import annotations

from repro.experiments.records import PAPER_FIG3_NOTES, ExperimentReport
from repro.experiments.runner import ExperimentRunner
from repro.util.charts import hbar_chart
from repro.util.format import Table, render_table


def run_fig3(
    runner: ExperimentRunner,
    apps: list[str] | None = None,
) -> ExperimentReport:
    apps = apps or runner.apps()
    periods = runner.overhead_periods()
    headers = ["app", "baseline misses", "search"] + [
        f"sample(1/{p})" for p in periods
    ]
    table = Table(headers, title="Figure 3: % increase in cache misses (log scale in paper)")
    values: dict = {}
    for app in apps:
        base = runner.baseline(app)
        max_refs = base.stats.app_refs
        row: list[object] = [app, base.stats.app_misses]
        app_values: dict = {"baseline_misses": base.stats.app_misses}

        search = runner.with_search(app, n=10, max_refs=max_refs)
        increase = search.stats.miss_increase_vs(base.stats)
        row.append(f"{100 * increase:.4f}%")
        app_values["search"] = increase

        for period in periods:
            run = runner.with_sampling(app, period=period, max_refs=max_refs)
            increase = run.stats.miss_increase_vs(base.stats)
            row.append(f"{100 * increase:.4f}%")
            app_values[f"sample_{period}"] = increase
        table.add_row(row)
        values[app] = app_values
    chart = hbar_chart(
        apps,
        {
            key: [100 * values[app].get(key, 0.0) for app in apps]
            for key in ["search"] + [f"sample_{p}" for p in periods]
        },
        log=True,
        unit="%",
        title="Figure 3 (chart): % increase in cache misses",
    )
    return ExperimentReport(
        experiment="fig3",
        table=render_table(table) + "\n\n" + chart,
        values=values,
        notes=["paper-reported shape: " + "; ".join(PAPER_FIG3_NOTES)],
    )
