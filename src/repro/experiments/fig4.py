"""Experiment E4 — Figure 4 and section 3.3: instrumentation cost.

The same configuration matrix as Figure 3, but the metric is slowdown:
instrumentation cycles (handler execution + the 8,800-cycle interrupt
delivery) over application cycles, for the same number of application
references. Also reports the section 3.3 diagnostics: mean cycles per
interrupt and interrupts per billion cycles.

Scaling note: our runs are ~10^8 virtual cycles, not the paper's tens of
billions, so the search's *fixed* number of iterations amortises over far
less work and its percentage slowdown is inflated relative to the paper;
the per-interrupt cost and interrupt-rate columns are the
scale-independent quantities to compare (the paper's own framing in
section 3.3).
"""

from __future__ import annotations

from repro.experiments.records import PAPER_FIG4_NOTES, ExperimentReport
from repro.experiments.runner import ExperimentRunner
from repro.util.charts import hbar_chart
from repro.util.format import Table, render_table


def run_fig4(
    runner: ExperimentRunner,
    apps: list[str] | None = None,
) -> ExperimentReport:
    apps = apps or runner.apps()
    periods = runner.overhead_periods()
    headers = ["app", "metric", "search"] + [f"sample(1/{p})" for p in periods]
    table = Table(headers, title="Figure 4: % slowdown due to instrumentation")
    values: dict = {}
    for app in apps:
        base = runner.baseline(app)
        max_refs = base.stats.app_refs
        runs = {"search": runner.with_search(app, n=10, max_refs=max_refs)}
        for period in periods:
            runs[f"sample_{period}"] = runner.with_sampling(
                app, period=period, max_refs=max_refs
            )

        slow_row: list[object] = [app, "slowdown %"]
        cyc_row: list[object] = ["", "cycles/interrupt"]
        rate_row: list[object] = ["", "interrupts/Gcycle"]
        extrap_row: list[object] = ["", "slowdown @ paper scale"]
        app_values: dict = {}
        for key, run in runs.items():
            stats = run.stats
            slow_row.append(f"{100 * stats.slowdown:.4f}%")
            cyc_row.append(f"{stats.interrupts.mean_cycles():,.0f}")
            rate_row.append(f"{stats.interrupts_per_gcycle():,.1f}")
            # What the same tool would cost on a paper-length (tens of
            # Gcycles) run: sampling interrupt count scales with run
            # length, so its %% slowdown is scale-free; the search runs a
            # *fixed* number of iterations regardless of run length, so
            # its cost amortises toward zero.
            if key == "search":
                extrap = stats.interrupts.total_cycles / 25e9
            else:
                extrap = stats.slowdown
            extrap_row.append(f"{100 * extrap:.4f}%")
            app_values[key] = {
                "slowdown": stats.slowdown,
                "slowdown_paper_scale": (
                    stats.interrupts.total_cycles / 25e9
                    if key == "search"
                    else stats.slowdown
                ),
                "cycles_per_interrupt": stats.interrupts.mean_cycles(),
                "interrupts_per_gcycle": stats.interrupts_per_gcycle(),
                "n_interrupts": len(stats.interrupts),
            }
        table.add_row(slow_row)
        table.add_row(cyc_row)
        table.add_row(rate_row)
        table.add_row(extrap_row)
        table.add_separator()
        values[app] = app_values
    chart = hbar_chart(
        apps,
        {
            key: [100 * values[app][key]["slowdown"] for app in apps]
            for key in ["search"] + [f"sample_{p}" for p in periods]
        },
        log=True,
        unit="%",
        title="Figure 4 (chart): % slowdown",
    )
    return ExperimentReport(
        experiment="fig4",
        table=render_table(table) + "\n\n" + chart,
        values=values,
        notes=["paper-reported shape: " + "; ".join(PAPER_FIG4_NOTES)],
    )
