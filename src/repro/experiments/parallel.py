"""Parallel experiment execution over a declarative task grid.

The paper's evaluation is a grid of *independent* simulation runs —
workloads x sampling periods x search configurations — so instead of
executing cells serially inside one process, this module describes each
cell as a :class:`TaskSpec` (workload + kwargs, simulator knobs, tool
knobs, seed) and fans the grid out over ``ProcessPoolExecutor`` workers.
Because every cell is a pure function of its spec, parallel and serial
execution produce bit-identical results, and specs double as cache keys
for the on-disk :class:`~repro.experiments.cache_store.ResultCache`.

Per-task seeds for replicated grids are derived deterministically from
``(config hash, workload, task index)`` so a grid is reproducible
regardless of how many workers execute it or in what order cells finish.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import tempfile
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path

from repro.cache import CacheConfig
from repro.core.adaptive import AdaptiveSamplingProfiler
from repro.core.sampling import SamplingProfiler
from repro.core.search import NWaySearch
from repro.errors import SimulationError
from repro.experiments.cache_store import (
    Manifest,
    ResultCache,
    code_version_tag,
    stable_hash,
)
from repro.hpm.interrupts import CostModel
from repro.sim.engine import RunResult, Simulator
from repro.sim.session import (
    SNAPSHOT_VERSION,
    MultiCoreSession,
    SessionSnapshot,
    SimulationSession,
)
from repro.workloads.compile import StreamCompileError, compiled_stream_for
from repro.workloads.registry import make_workload

__all__ = [
    "SimSpec",
    "MultiCoreSpec",
    "ToolSpec",
    "TaskSpec",
    "CheckpointPolicy",
    "ParallelRunner",
    "execute_task",
    "derive_task_seed",
    "expand_grid",
    "strip_result",
]


# ------------------------------------------------------------------ specs

@dataclass
class MultiCoreSpec:
    """Declarative multi-core run: co-runners sharing one LLC.

    Attached to :attr:`SimSpec.multicore`. The task's ``workload`` is
    core 0; ``co_runners`` name the workloads of cores 1..N-1 (with
    optional per-co-runner constructor kwargs). The shared LLC geometry
    is ``SimSpec.cache`` and the per-core private L1 is ``SimSpec.l1``.
    ``ratios`` weights the round-robin interleaver (one entry per core,
    including core 0; None means one chunk each per turn).

    Hashing: :class:`SimSpec` is hashed field-by-field by
    :func:`~repro.experiments.cache_store.canonical`, which recurses
    into nested dataclasses — so every field here (co-runner set, their
    kwargs, the schedule) reaches the result-cache key automatically,
    and changing any of them can never serve a stale cached result.
    """

    co_runners: tuple = ()
    #: Constructor kwargs per co-runner (dicts, parallel to
    #: ``co_runners``; missing trailing entries default to {}).
    co_runner_kwargs: tuple = ()
    ratios: tuple | None = None

    def __post_init__(self) -> None:
        self.co_runners = tuple(self.co_runners)
        kwargs = tuple(dict(k) for k in self.co_runner_kwargs)
        if len(kwargs) > len(self.co_runners):
            raise SimulationError(
                f"{len(kwargs)} co_runner_kwargs for "
                f"{len(self.co_runners)} co_runners"
            )
        kwargs += tuple({} for _ in range(len(self.co_runners) - len(kwargs)))
        self.co_runner_kwargs = kwargs
        if self.ratios is not None:
            self.ratios = tuple(int(r) for r in self.ratios)
            if len(self.ratios) != self.n_cores:
                raise SimulationError(
                    f"{self.n_cores} cores but {len(self.ratios)} ratios "
                    "(ratios cover every core, including core 0)"
                )

    @property
    def n_cores(self) -> int:
        return 1 + len(self.co_runners)


@dataclass
class SimSpec:
    """Declarative :class:`~repro.sim.engine.Simulator` configuration.

    The cache kernel backend rides along in ``cache.backend`` (and
    ``l1.backend``): :func:`~repro.experiments.cache_store.canonical`
    hashes dataclasses field-by-field, so backend choice is part of every
    task's cache key even though backends are bit-identical — a cached
    result therefore always records which kernel produced it.
    """

    cache: CacheConfig = field(default_factory=CacheConfig)
    n_region_counters: int = 10
    multiplexed_counters: bool = False
    cost_model: CostModel = field(default_factory=CostModel)
    chunk_size: int = 1 << 15
    l1: CacheConfig | None = None
    prefetch_next_line: bool = False
    #: Lower workloads to precompiled reference streams before running
    #: (repro.workloads.compile). Bit-identical to the generator path,
    #: but — like ``backend`` — folded into every task key so a cached
    #: result records how it was produced. The on-disk stream cache
    #: location is a runtime concern (ParallelRunner/ExperimentRunner
    #: pass it alongside, outside the key).
    compile_streams: bool = False
    #: Co-runner matrix: when set, the task runs as a
    #: :class:`~repro.sim.session.MultiCoreSession` (the task's workload
    #: on core 0, the spec's co-runners beside it, ``cache`` as the
    #: shared LLC and ``l1`` as each core's private cache). Hashed into
    #: the task key like every other field.
    multicore: "MultiCoreSpec | None" = None

    def build(self, seed: int | None) -> Simulator:
        if self.multicore is not None:
            raise SimulationError(
                "multi-core specs run through MultiCoreSession "
                "(execute_task dispatches on sim.multicore), not Simulator"
            )
        return Simulator(
            cache_config=self.cache,
            n_region_counters=self.n_region_counters,
            multiplexed_counters=self.multiplexed_counters,
            cost_model=self.cost_model,
            seed=seed,
            chunk_size=self.chunk_size,
            l1_config=self.l1,
            prefetch_next_line=self.prefetch_next_line,
            compile_streams=self.compile_streams,
        )


#: Populated once at import time (RPL704): a worker must see the exact
#: registry the parent saw before the fork, never a partially-imported
#: module graph assembled concurrently inside each worker.
_TOOL_FACTORIES = {
    "sampling": SamplingProfiler,
    "search": NWaySearch,
    "adaptive": AdaptiveSamplingProfiler,
}


def _tool_factories() -> dict:
    return _TOOL_FACTORIES


@dataclass
class ToolSpec:
    """Declarative instrumentation-tool configuration.

    ``kind`` selects the factory ("sampling", "search" or "adaptive");
    ``kwargs`` are passed to its constructor verbatim. Keeping tools as
    data (not instances) is what lets a worker process rebuild the tool
    and lets the cache key cover its exact configuration.
    """

    kind: str
    kwargs: dict = field(default_factory=dict)

    def build(self):
        factories = _tool_factories()
        try:
            factory = factories[self.kind]
        except KeyError:
            raise SimulationError(
                f"unknown tool kind {self.kind!r}; "
                f"available: {', '.join(factories)}"
            ) from None
        return factory(**self.kwargs)


#: TaskSpec fields deliberately excluded from the result-cache key.
#: Only display/bookkeeping fields belong here — anything that changes
#: simulated behaviour MUST be hashed, and both reprolint (RPL201) and
#: the runtime guard in :meth:`TaskSpec.key` cross-check this set
#: against the dataclass fields.
_KEY_EXEMPT_FIELDS = frozenset({"label"})


@dataclass
class TaskSpec:
    """One grid cell: everything needed to reproduce a single run."""

    workload: str
    workload_kwargs: dict = field(default_factory=dict)
    seed: int | None = None
    tool: ToolSpec | None = None
    max_refs: int | None = None
    series_bucket_cycles: int | None = None
    sim: SimSpec = field(default_factory=SimSpec)
    #: Display label for manifests/progress; not part of the cache key.
    label: str = ""

    def key(self) -> str:
        """Stable content hash identifying this cell's result.

        Refuses to hash a spec whose dataclass fields have drifted from
        the payload below: a field that is neither hashed nor listed in
        ``_KEY_EXEMPT_FIELDS`` would silently serve stale cached results
        for every new value it takes.
        """
        payload = {
            "workload": self.workload,
            "workload_kwargs": self.workload_kwargs,
            "seed": self.seed,
            "tool": None
            if self.tool is None
            else {"kind": self.tool.kind, "kwargs": self.tool.kwargs},
            "max_refs": self.max_refs,
            "series_bucket_cycles": self.series_bucket_cycles,
            "sim": self.sim,
            "version": code_version_tag(),
        }
        unhashed = (
            {f.name for f in dataclasses.fields(self)}
            - payload.keys()
            - _KEY_EXEMPT_FIELDS
        )
        if unhashed:
            raise SimulationError(
                f"TaskSpec field(s) {sorted(unhashed)} are not part of the "
                "result-cache key; add them to the key() payload or, if "
                "they provably never affect results, to _KEY_EXEMPT_FIELDS"
            )
        return stable_hash(payload)

    def describe(self) -> str:
        if self.label:
            return self.label
        tool = "baseline" if self.tool is None else self.tool.kind
        return f"{self.workload}/{tool}"


def derive_task_seed(config_hash: str, workload: str, index: int) -> int:
    """Deterministic per-task seed from (config hash, workload, index).

    Stable across processes, Python versions and worker scheduling, so a
    replicated grid always runs the same per-cell seeds.
    """
    digest = hashlib.sha256(
        f"{config_hash}|{workload}|{index}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") % (2**31 - 1)


def expand_grid(
    workloads: list[tuple[str, dict]],
    tools: list[ToolSpec | None],
    sim: SimSpec | None = None,
    replicas: int = 1,
    seed: int | None = None,
) -> list[TaskSpec]:
    """The full workload x tool (x replica) grid as task specs.

    When ``seed`` is None, each cell gets a deterministic seed derived
    from the grid configuration hash, its workload and its cell index;
    passing an explicit ``seed`` pins every cell to it (the paper-grid
    convention, where the seed is part of the experiment definition).
    """
    sim = sim or SimSpec()
    config_hash = stable_hash(
        {
            "workloads": [[name, kwargs] for name, kwargs in workloads],
            "tools": [
                None if t is None else {"kind": t.kind, "kwargs": t.kwargs}
                for t in tools
            ],
            "sim": sim,
            "replicas": replicas,
        }
    )
    specs = []
    index = 0
    for name, kwargs in workloads:
        for tool in tools:
            for _ in range(replicas):
                task_seed = (
                    seed
                    if seed is not None
                    else derive_task_seed(config_hash, name, index)
                )
                specs.append(
                    TaskSpec(
                        workload=name,
                        workload_kwargs=dict(kwargs),
                        seed=task_seed,
                        tool=dataclasses.replace(tool) if tool else None,
                        sim=sim,
                    )
                )
                index += 1
    return specs


# ------------------------------------------------------------ checkpoints

@dataclass
class CheckpointPolicy:
    """Where and how often workers persist mid-run session snapshots.

    One checkpoint file per grid cell, named by the cell's result-cache
    key, so checkpoint identity inherits everything the result key
    covers — spec contents *and* the code version tag (which itself
    covers ``sim/session.py``, so a snapshot-format change can never be
    resumed by incompatible code). Each file additionally embeds the key,
    tag and :data:`~repro.sim.session.SNAPSHOT_VERSION` and is silently
    discarded on any mismatch or corruption: a stale checkpoint degrades
    to recomputation, never to a wrong result.
    """

    root: Path
    #: Application references simulated between checkpoint writes.
    every_refs: int = 1 << 21

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        if self.every_refs <= 0:
            raise SimulationError("every_refs must be positive")

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.ckpt"

    def save(self, key: str, snapshot: SessionSnapshot) -> Path:
        """Persist one snapshot atomically (rename-into-place)."""
        payload = {
            "task_key": key,
            "code_version": code_version_tag(),
            "snapshot_version": SNAPSHOT_VERSION,
            "snapshot": snapshot,
        }
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            Path(tmp).unlink(missing_ok=True)
            raise
        return path

    def load(self, key: str) -> SessionSnapshot | None:
        """The resumable snapshot for ``key``, or None (stale/corrupt
        files are deleted so they are only ever probed once)."""
        path = self.path_for(key)
        try:
            with path.open("rb") as fh:
                payload = pickle.load(fh)
        except FileNotFoundError:
            return None
        except Exception:
            path.unlink(missing_ok=True)
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("task_key") != key
            or payload.get("code_version") != code_version_tag()
            or payload.get("snapshot_version") != SNAPSHOT_VERSION
            or not isinstance(payload.get("snapshot"), SessionSnapshot)
        ):
            path.unlink(missing_ok=True)
            return None
        return payload["snapshot"]

    def discard(self, key: str) -> None:
        self.path_for(key).unlink(missing_ok=True)


# -------------------------------------------------------------- execution

def strip_result(result: RunResult) -> RunResult:
    """A cacheable copy of ``result``: drop the live ground-truth and
    tool objects (they hold simulator internals), keep every field the
    experiment drivers read (stats, actual/measured profiles, series,
    contention). Multi-core aggregates are stripped recursively — each
    per-core result in ``cores`` holds its own ground truth and tools."""
    stripped = dataclasses.replace(
        result, ground_truth=None, tool=None, tools=None
    )
    if stripped.cores is not None:
        stripped.cores = [strip_result(r) for r in stripped.cores]
    return stripped


def execute_task(
    spec: TaskSpec,
    checkpoint: CheckpointPolicy | None = None,
    stream_cache_dir: str | None = None,
) -> RunResult:
    """Run one grid cell to completion (pure function of the spec).

    With a :class:`CheckpointPolicy`, the run resumes from the cell's
    checkpoint when a valid one exists (a preempted or crashed worker
    left it behind), writes fresh checkpoints every ``every_refs``
    simulated references, and removes the file once the cell completes —
    results are bit-identical either way. ``stream_cache_dir`` hosts the
    compiled-stream cache when ``spec.sim.compile_streams`` is on; it is
    machine-local and deliberately outside the task key.

    Specs with ``sim.multicore`` run the workload and its co-runners
    through a :class:`~repro.sim.session.MultiCoreSession` instead of a
    :class:`~repro.sim.engine.Simulator` — same checkpoint/resume and
    stream-compilation contract, one aggregate result with per-core
    results (and contention profiles) in ``result.cores``.
    """
    if spec.sim.multicore is not None:
        return _execute_multicore(spec, checkpoint, stream_cache_dir)
    workload = make_workload(spec.workload, seed=spec.seed, **spec.workload_kwargs)
    compiled = None
    if spec.sim.compile_streams:
        try:
            compiled = compiled_stream_for(workload, stream_cache_dir)
        except StreamCompileError:
            compiled = None
    session: SimulationSession | None = None
    key = spec.key() if checkpoint is not None else None
    if checkpoint is not None:
        snapshot = checkpoint.load(key)
        if snapshot is not None:
            try:
                session = SimulationSession.restore(
                    snapshot, workload, compiled=compiled
                )
            except SimulationError:
                checkpoint.discard(key)
                session = None
    if session is None:
        simulator = spec.sim.build(spec.seed)
        tool = spec.tool.build() if spec.tool is not None else None
        session = simulator.start_session(
            workload,
            tool=tool,
            series_bucket_cycles=spec.series_bucket_cycles,
            max_refs=spec.max_refs,
            compiled=compiled,
        )
    if checkpoint is not None:
        session.run(
            checkpoint_every_refs=checkpoint.every_refs,
            on_checkpoint=lambda snap: checkpoint.save(key, snap),
        )
    else:
        session.run()
    result = session.finalize()
    if checkpoint is not None:
        checkpoint.discard(key)
    return strip_result(result)


def _execute_multicore(
    spec: TaskSpec,
    checkpoint: CheckpointPolicy | None = None,
    stream_cache_dir: str | None = None,
) -> RunResult:
    """Multi-core arm of :func:`execute_task` (see its docstring).

    Every core's workload is built with the task seed — co-runner
    determinism comes from the spec, not from per-core seed plumbing.
    Compiled streams are compiled per workload *unshifted* (so the
    stream cache is shared with single-core runs of the same workload);
    :meth:`MultiCoreSession.start` applies the per-core relocation.
    """
    mc = spec.sim.multicore
    assert mc is not None
    if spec.sim.prefetch_next_line:
        raise SimulationError(
            "multi-core sessions do not support prefetch_next_line; "
            "drop it from the SimSpec or run single-core"
        )
    workloads = [
        make_workload(spec.workload, seed=spec.seed, **spec.workload_kwargs)
    ]
    for name, kwargs in zip(mc.co_runners, mc.co_runner_kwargs):
        workloads.append(make_workload(name, seed=spec.seed, **kwargs))
    compiled: list | None = None
    if spec.sim.compile_streams:
        compiled = []
        for workload in workloads:
            try:
                compiled.append(compiled_stream_for(workload, stream_cache_dir))
            except StreamCompileError:
                compiled.append(None)
    tool = spec.tool.build() if spec.tool is not None else None

    session: MultiCoreSession | None = None
    key = spec.key() if checkpoint is not None else None
    if checkpoint is not None:
        snapshot = checkpoint.load(key)
        if snapshot is not None:
            try:
                session = MultiCoreSession.restore(
                    snapshot, workloads, compiled=compiled
                )
            except SimulationError:
                checkpoint.discard(key)
                session = None
    if session is None:
        session = MultiCoreSession.start(
            workloads,
            llc_config=spec.sim.cache,
            l1_config=spec.sim.l1,
            backend=None,
            seed=spec.seed,
            n_region_counters=spec.sim.n_region_counters,
            multiplexed_counters=spec.sim.multiplexed_counters,
            cost_model=spec.sim.cost_model,
            chunk_size=spec.sim.chunk_size,
            series_bucket_cycles=spec.series_bucket_cycles,
            max_refs=spec.max_refs,
            ratios=mc.ratios,
            compiled=compiled,
        )
        if tool is not None:
            session.attach(tool)
    if checkpoint is not None:
        session.run(
            checkpoint_every_refs=checkpoint.every_refs,
            on_checkpoint=lambda snap: checkpoint.save(key, snap),
        )
    else:
        session.run()
    result = session.finalize()
    if checkpoint is not None:
        checkpoint.discard(key)
    return strip_result(result)


def _timed_execute(
    spec: TaskSpec,
    checkpoint: CheckpointPolicy | None = None,
    stream_cache_dir: str | None = None,
) -> tuple[RunResult, float]:
    """Worker entry point: execute and report wall-clock seconds."""
    t0 = time.perf_counter()
    result = execute_task(spec, checkpoint, stream_cache_dir)
    return result, time.perf_counter() - t0


class ParallelRunner:
    """Executes task grids across processes, through the result cache.

    * Cells already in the cache are served from disk (recorded as hits
      in the manifest) without touching the pool.
    * Remaining cells are deduplicated by key — a grid that names the
      same cell twice simulates it once — and fanned out over up to
      ``jobs`` worker processes (``jobs=1`` executes inline, which is
      also the fallback when only one cell is pending).
    * Results come back in input order, bit-identical to serial
      execution, and every cell is appended to the manifest.
    """

    def __init__(
        self,
        jobs: int | None = None,
        cache: ResultCache | None = None,
        manifest: Manifest | None = None,
        checkpoints: CheckpointPolicy | None = None,
        stream_cache_dir: "str | os.PathLike | None" = None,
    ) -> None:
        self.jobs = max(1, jobs if jobs is not None else (os.cpu_count() or 1))
        self.cache = cache
        self.manifest = manifest if manifest is not None else Manifest()
        #: When set, workers checkpoint mid-run and resume preempted cells.
        self.checkpoints = checkpoints
        #: Compiled-stream cache root handed to workers (used only by
        #: specs with ``sim.compile_streams=True``).
        self.stream_cache_dir = (
            str(stream_cache_dir) if stream_cache_dir is not None else None
        )

    def run(self, specs: list[TaskSpec]) -> list[RunResult]:
        results: list[RunResult | None] = [None] * len(specs)
        pending: dict[str, list[int]] = {}
        for i, spec in enumerate(specs):
            key = spec.key()
            if key in pending:
                pending[key].append(i)
                continue
            cached = self.cache.get(key) if self.cache is not None else None
            if cached is not None:
                results[i] = cached
                self._log(spec, key, cached=True, wall_s=0.0)
            else:
                pending[key] = [i]

        unique = [(key, specs[idxs[0]]) for key, idxs in pending.items()]
        if self.jobs > 1 and len(unique) > 1:
            self._run_pool(unique, pending, results)
        else:
            for key, spec in unique:
                result, wall = _timed_execute(
                    spec, self.checkpoints, self.stream_cache_dir
                )
                self._finish(key, spec, result, wall, pending, results)
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------ internal

    def _run_pool(self, unique, pending, results) -> None:
        workers = min(self.jobs, len(unique))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(
                    _timed_execute, spec, self.checkpoints, self.stream_cache_dir
                ): (key, spec)
                for key, spec in unique
            }
            outstanding = set(futures)
            while outstanding:
                done, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
                for future in done:
                    key, spec = futures[future]
                    result, wall = future.result()
                    self._finish(key, spec, result, wall, pending, results)

    def _finish(self, key, spec, result, wall_s, pending, results) -> None:
        if self.cache is not None:
            self.cache.put(key, result)
        for idx in pending[key]:
            results[idx] = result
        self._log(spec, key, cached=False, wall_s=wall_s)

    def _log(self, spec: TaskSpec, key: str, *, cached: bool, wall_s: float):
        self.manifest.record(
            task=spec.describe(),
            workload=spec.workload,
            seed=spec.seed,
            key=key,
            cached=cached,
            wall_s=wall_s,
        )
