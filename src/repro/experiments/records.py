"""Paper-reported values, for side-by-side comparison in reports.

Values transcribed from the paper's Table 1, Table 2 and the prose of
sections 3.1-3.4. Only used for reporting/validation — nothing in the
measurement pipeline reads these.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ExperimentReport:
    """The output of one experiment driver."""

    experiment: str
    table: str                      #: rendered paper-style table
    values: dict = field(default_factory=dict)  #: raw measured values
    notes: list[str] = field(default_factory=list)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        body = [f"== {self.experiment} ==", self.table]
        body += [f"note: {n}" for n in self.notes]
        return "\n".join(body)


#: Table 1 — per application: object -> (actual_rank, actual_pct,
#: sample_rank, sample_pct, search_rank, search_pct); None = not reported.
PAPER_TABLE1: dict[str, dict[str, tuple]] = {
    "tomcatv": {
        "RY": (1, 22.5, 2, 17.6, 1, 22.5),
        "RX": (2, 22.5, 1, 37.1, 2, 22.5),
        "AA": (3, 15.0, 5, 10.1, 3, 15.1),
        "DD": (4, 10.0, 3, 15.0, 5, 10.1),
        "X": (5, 10.0, 6, 9.8, 7, 9.9),
        "Y": (6, 10.0, 7, 0.2, 6, 9.9),
        "D": (7, 10.0, 4, 10.2, 4, 10.1),
    },
    "swim": {
        "CU": (1, 7.7, 3, 8.2, 3, 7.7),
        "H": (2, 7.7, 4, 8.1, None, None),
        "P": (3, 7.7, 1, 8.4, None, None),
        "V": (4, 7.7, 2, 8.3, 1, 7.7),
        "U": (5, 7.7, 5, 7.8, 2, 7.7),
        "CV": (6, 7.7, 13, 6.7, 4, 7.7),
        "Z": (7, 7.7, 12, 6.8, 5, 7.7),
    },
    "su2cor": {
        "U": (1, 57.1, 1, 57.5, 1, 56.8),
        "R": (2, 6.9, 3, 6.8, 2, 7.2),
        "S": (3, 6.6, 2, 7.2, 3, 6.8),
        "W2-intact": (4, 3.9, 4, 4.1, 4, 3.8),
        "W2-sweep": (5, 3.7, 5, 3.9, None, None),
        "B": (6, 2.3, 7, 2.0, 5, 2.3),
    },
    "mgrid": {
        "U": (1, 40.8, 1, 40.7, 1, 40.8),
        "R": (2, 40.4, 2, 39.8, 2, 40.6),
        "V": (3, 18.8, 3, 19.5, 3, 18.6),
    },
    "applu": {
        "a": (1, 22.9, 2, 23.0, 1, 22.7),
        "b": (2, 22.9, 3, 19.9, 2, 22.6),
        "c": (3, 22.6, 1, 25.8, 3, 22.4),
        "d": (4, 17.4, 4, 16.7, 4, 17.4),
        "rsd": (5, 6.9, 5, 7.7, 5, 7.2),
    },
    "compress": {
        "orig_text_buffer": (1, 63.0, 1, 67.4, 1, 63.6),
        "comp_text_buffer": (2, 35.6, 2, 30.2, 2, 35.9),
        "htab": (3, 1.3, 3, 2.3, None, None),
        "codetab": (4, 0.2, None, None, None, None),
    },
    "ijpeg": {
        "0x141020000": (1, 84.7, 1, 95.8, 1, 85.2),
        "jpeg_compressed_data": (2, 12.5, 2, 4.2, 2, 12.7),
        "0x14101e000": (3, 0.5, None, None, 3, 0.0),
        "std_chrominance_quant_tbl": (4, 0.0, None, None, None, None),
    },
}

#: Table 2 — two-way search results: object -> (rank, pct); None pct means
#: the object was found but its post-search estimate read ~0 (su2cor's R).
PAPER_TABLE2_TWO_WAY: dict[str, dict[str, tuple]] = {
    "tomcatv": {"RY": (2, 22.4), "RX": (3, 22.4), "AA": (1, 22.4)},
    "swim": {"CU": (1, 7.8), "VOLD": (2, 7.6)},
    "su2cor": {"R": (1, 0.0)},  # the failure case: U missed entirely
    "mgrid": {"U": (1, 40.6), "R": (2, 40.3)},
    "applu": {"b": (1, 22.7), "c": (2, 22.4)},
    "compress": {"orig_text_buffer": (1, 63.6), "comp_text_buffer": (2, 36.0)},
    "ijpeg": {"0x141020000": (1, 84.9), "jpeg_compressed_data": (2, 12.6)},
}

#: Section 3.2/Figure 3 qualitative record.
PAPER_FIG3_NOTES = [
    "All perturbations near-negligible except ijpeg (lowest miss rate).",
    "Worst non-ijpeg: compress under 10-way search, ~0.14% extra misses.",
    "ijpeg under 10-way search: ~2.4% extra misses.",
    "Miss rates: ijpeg 144/Mcyc < compress 361 < mgrid 6,827 < others.",
    "For mgrid/applu/compress sampling, extra misses *rise* as sampling "
    "gets rarer (instrumentation data evicted between samples) until "
    "~1-in-1M where the effect vanishes.",
]

#: Section 3.3/Figure 4 qualitative record.
PAPER_FIG4_NOTES = [
    "Sampling 1-in-1,000 costs up to ~16% (tomcatv); 1-in-10,000 <= ~1.6%.",
    "Interrupt delivery ~8,800 cycles; sampling ~9,000 cycles/interrupt.",
    "Search: 26,000-64,000 cycles/interrupt but only 1.6-4.1 interrupts "
    "per billion cycles (sampling 1-in-10,000: 13-1,727 per billion).",
    "Search beats sampling even at 1-in-100,000 except compress/ijpeg.",
]
