"""Experiment drivers: one module per paper table/figure.

Each driver takes an :class:`ExperimentRunner` (which caches baseline
runs), executes the measurement configurations the paper used, and
returns an :class:`ExperimentReport` holding both a rendered table and
the raw values, so benchmarks can print the paper-style artifact and
tests can assert on the shapes (who wins, by what factor, where the
crossovers fall).
"""

from repro.experiments.records import (
    PAPER_FIG3_NOTES,
    PAPER_FIG4_NOTES,
    PAPER_TABLE1,
    PAPER_TABLE2_TWO_WAY,
    ExperimentReport,
)
from repro.experiments.cache_store import Manifest, ResultCache
from repro.experiments.parallel import (
    CheckpointPolicy,
    MultiCoreSpec,
    ParallelRunner,
    SimSpec,
    TaskSpec,
    ToolSpec,
    derive_task_seed,
    expand_grid,
)
from repro.experiments.runner import ExperimentRunner
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig2 import run_fig2
from repro.experiments.resonance import run_resonance
from repro.experiments.ablations import (
    run_alignment_ablation,
    run_multiplex_ablation,
    run_phase_heuristic_ablation,
    run_policy_ablation,
)
from repro.experiments.mrc import run_mrc
from repro.experiments.mechanisms import MECHANISM_CHOICES, run_mechanisms
from repro.experiments.multicore import run_multicore
from repro.experiments.sweep import run_geometry_sweep
from repro.experiments.extensions import (
    run_continuation,
    run_hierarchy,
    run_prefetch_ablation,
    run_skid_ablation,
)

__all__ = [
    "ExperimentRunner",
    "ExperimentReport",
    "CheckpointPolicy",
    "ParallelRunner",
    "ResultCache",
    "Manifest",
    "TaskSpec",
    "ToolSpec",
    "SimSpec",
    "MultiCoreSpec",
    "derive_task_seed",
    "expand_grid",
    "PAPER_TABLE1",
    "PAPER_TABLE2_TWO_WAY",
    "PAPER_FIG3_NOTES",
    "PAPER_FIG4_NOTES",
    "run_table1",
    "run_table2",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_fig2",
    "run_resonance",
    "run_alignment_ablation",
    "run_phase_heuristic_ablation",
    "run_multiplex_ablation",
    "run_policy_ablation",
    "run_skid_ablation",
    "run_continuation",
    "run_hierarchy",
    "run_prefetch_ablation",
    "run_mrc",
    "run_mechanisms",
    "MECHANISM_CHOICES",
    "run_multicore",
    "run_geometry_sweep",
]
