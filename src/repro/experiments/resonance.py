"""Experiment E6 — section 3.1: sampling-period resonance on tomcatv.

tomcatv's residual sweep alternates RX and RY misses one-for-one, so a
sampling period commensurate with that pattern (any even period) lands
samples disproportionately on one of the pair: the paper measured RX at
37.1% vs RY 17.6% (actual: 22.5% each) with a period of 50,000, and a
~0.3% worst-case error after switching to the nearby prime 50,111.

This driver samples tomcatv with an even period, with the next prime
above it, and with pseudo-random periods, and reports the worst share
error of each schedule.
"""

from __future__ import annotations

from repro.core.report import max_share_error
from repro.core.sampling import PeriodSchedule
from repro.experiments.records import ExperimentReport
from repro.experiments.runner import ExperimentRunner
from repro.util.format import Table, render_table
from repro.util.primes import next_prime
from repro.util.units import fmt_pct


def run_resonance(
    runner: ExperimentRunner,
    app: str = "tomcatv",
    period: int | None = None,
) -> ExperimentReport:
    actual = runner.baseline(app).actual
    if period is None:
        period = runner.scaled_sampling_period(app)
        if period % 2:
            period += 1  # force an even (resonant) period

    schedules = [
        ("even/fixed", PeriodSchedule.FIXED, period),
        (f"prime({next_prime(period - 1)})", PeriodSchedule.PRIME, period),
        ("pseudo-random", PeriodSchedule.RANDOM, period),
    ]
    table = Table(
        ["schedule", "period", "RX %", "RY %", "actual RX/RY %", "max error %"],
        title=f"Section 3.1: sampling resonance on {app}",
    )
    values: dict = {"period": period, "actual": actual.as_dict()}
    for label, schedule, p in schedules:
        run = runner.with_sampling(app, period=p, schedule=schedule)
        measured = run.measured
        err = max_share_error(actual, measured)
        table.add_row(
            [
                label,
                p,
                fmt_pct(measured.share_of("RX")),
                fmt_pct(measured.share_of("RY")),
                f"{fmt_pct(actual.share_of('RX'))}/{fmt_pct(actual.share_of('RY'))}",
                fmt_pct(err),
            ]
        )
        values[label] = {
            "measured": measured.as_dict(),
            "max_error": err,
            "samples": measured.meta.get("samples"),
        }
    notes = [
        "paper: period 50,000 -> RX 37.1% vs RY 17.6% (each actually 22.5%); "
        "prime 50,111 -> max error ~0.3%",
        "expected shape: fixed even period splits the RX/RY pair asymmetrically; "
        "prime and random periods estimate both near 22.5%",
    ]
    return ExperimentReport(
        experiment="resonance", table=render_table(table), values=values, notes=notes
    )
