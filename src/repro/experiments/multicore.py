"""Experiment E14 — multi-core contention: co-runner matrix x shared LLC.

The paper isolates per-object miss bottlenecks on one processor; the
natural multiprocessor question (its §5 future-work direction) is *which
of those misses are yours and which are your neighbour's fault*. This
driver runs co-runner pairs through :class:`~repro.sim.session.MultiCoreSession`
— private L1s over one shared LLC, deterministic round-robin
interleaving — across a shared-LLC size sweep, and reports each core's
shared-level misses split into *self* (the solo shadow model also
misses) and *contention* (induced by co-runners), attributed per memory
object through the core's own ground-truth object map.

Every cell is an ordinary :class:`~repro.experiments.parallel.TaskSpec`
whose ``sim.multicore`` spec (co-runner set, their kwargs, schedule
ratios) is hashed into the content-addressed cache key alongside the
shared-LLC geometry, so cells fan out through the
:class:`ParallelRunner`, land in the persistent result cache, and are
bit-identical however they execute.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING

from repro.experiments.parallel import MultiCoreSpec
from repro.experiments.records import ExperimentReport
from repro.util.format import Table, render_table
from repro.util.units import fmt_bytes, fmt_count, fmt_pct

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.parallel import TaskSpec
    from repro.experiments.runner import ExperimentRunner
    from repro.sim.engine import RunResult

#: Default co-runner pool: a conflict-heavy stencil, a multigrid walker
#: and a sequential integer code — contention looks different against
#: each (the matrix pairs them all, self-pairings included).
DEFAULT_APPS = ["tomcatv", "mgrid", "compress"]

#: Private-L1 capacity as a fraction of the shared LLC (power of two so
#: the derived geometry always validates).
L1_FRACTION = 8


def multicore_task(
    runner: "ExperimentRunner",
    apps: "list[str]",
    size: int | None = None,
    ratios: "tuple | None" = None,
) -> "TaskSpec":
    """One co-runner cell: ``apps[0]`` on core 0, the rest beside it.

    The runner's cache geometry becomes the shared LLC (resized to
    ``size`` bytes for the sweep) and a same-shape private L1 at
    ``1/L1_FRACTION`` of its capacity fronts each core. The full
    multi-core spec rides in ``sim.multicore``, so the cell's cache key
    covers the co-runner set, their construction kwargs and the
    interleaver schedule.
    """
    llc = runner.config.cache.resized(
        size if size is not None else runner.config.cache.size
    )
    l1 = llc.resized(max(llc.line_size * llc.assoc, llc.size // L1_FRACTION))
    spec = MultiCoreSpec(
        co_runners=tuple(apps[1:]),
        co_runner_kwargs=tuple(runner.workload_kwargs(app) for app in apps[1:]),
        ratios=ratios,
    )
    return dataclasses.replace(
        runner.task(apps[0]),
        sim=dataclasses.replace(
            runner.sim_spec, cache=llc, l1=l1, multicore=spec
        ),
        label=f"mc({'+'.join(apps)})/{llc.size // 1024}K",
    )


def _run_grid(
    runner: "ExperimentRunner", cells: "list[TaskSpec]"
) -> "dict[str, RunResult]":
    """Execute cells (parallel when the runner has workers), key -> result."""
    from repro.experiments.mechanisms import _run_grid as shared_run_grid

    return shared_run_grid(runner, cells)


def run_multicore(
    runner: "ExperimentRunner",
    apps: "list[str] | None" = None,
    sizes: "list[int] | None" = None,
    ratios: "tuple | None" = None,
    top_k: int = 3,
) -> ExperimentReport:
    """The co-runner matrix x shared-LLC-size grid with per-object
    contention attribution."""
    apps = apps or DEFAULT_APPS
    sizes = sizes or [runner.config.cache.size // 2, runner.config.cache.size]
    pairs = [
        (a, b) for i, a in enumerate(apps) for b in apps[i:]
    ]

    cells: "list[TaskSpec]" = []
    grid: dict = {}
    for pair in pairs:
        for size in sizes:
            spec = multicore_task(runner, list(pair), size=size, ratios=ratios)
            grid[(pair, size)] = spec
            cells.append(spec)
    results = _run_grid(runner, cells)

    table = Table(
        [
            "pair", "LLC", "core", "refs", "LLC misses",
            "self", "contention", "cont %", "rescued",
        ],
        title="E14: shared-LLC contention split (self vs co-runner-induced)",
    )
    values: dict = {"sizes": sizes, "apps": apps, "pairs": {}}
    for pair in pairs:
        pair_name = "+".join(pair)
        per_pair: dict = {}
        for size in sizes:
            result = results[grid[(pair, size)].key()]
            per_size: dict = {"cores": []}
            for core in result.cores or []:
                profile = core.contention
                ledger = profile.ledger
                per_size["cores"].append(
                    {
                        "core_id": core.core_id,
                        "workload": core.workload_name,
                        "app_refs": core.stats.app_refs,
                        "shared_misses": ledger.classified_misses,
                        "self": ledger.self_misses,
                        "contention": ledger.contention_misses,
                        "rescued": ledger.rescued_misses,
                        "contention_share": profile.contention_share,
                        "self_by_object": dict(profile.self_by_object),
                        "contention_by_object": dict(
                            profile.contention_by_object
                        ),
                    }
                )
                table.add_row(
                    [
                        pair_name,
                        fmt_bytes(size),
                        f"c{core.core_id}:{core.workload_name}",
                        fmt_count(core.stats.app_refs),
                        fmt_count(ledger.classified_misses),
                        fmt_count(ledger.self_misses),
                        fmt_count(ledger.contention_misses),
                        fmt_pct(profile.contention_share),
                        fmt_count(ledger.rescued_misses),
                    ]
                )
            per_pair[size] = per_size
        table.add_separator()
        values["pairs"][pair_name] = per_pair

    # Per-object contention at the largest swept LLC: which of the
    # paper's memory objects each core actually loses to its co-runner.
    primary = sizes[-1]
    obj_table = Table(
        ["pair", "core", "object", "self misses", "contention misses"],
        title=(
            "E14 attribution: contention-induced misses per object at "
            f"{fmt_bytes(primary)}"
        ),
    )
    for pair in pairs:
        pair_name = "+".join(pair)
        result = results[grid[(pair, primary)].key()]
        for core in result.cores or []:
            profile = core.contention
            for name, count in profile.top_contended(top_k):
                obj_table.add_row(
                    [
                        pair_name,
                        f"c{core.core_id}:{core.workload_name}",
                        name,
                        fmt_count(profile.self_by_object.get(name, 0)),
                        fmt_count(count),
                    ]
                )
        obj_table.add_separator()

    notes = [
        "self = the solo shadow LLC (same geometry/seed, this core's "
        "post-L1 stream alone) also misses; contention = it would have "
        "hit — the miss is induced by co-runner evictions",
        "self + contention equals each core's observed shared-level "
        "misses exactly (sanitizer-enforced conservation; "
        "REPRO_SANITIZE=1 checks it at every commit)",
        "object names are namespace-qualified per core (c0:/c1:), so "
        "self-pairings keep both instances' footprints distinct",
        "1-core cells of this grid are bit-identical to single-core "
        "sessions (DESIGN.md section 13's degenerate-case contract)",
    ]
    return ExperimentReport(
        experiment="multicore",
        table=render_table(table) + "\n\n" + render_table(obj_table),
        values=values,
        notes=notes,
    )
