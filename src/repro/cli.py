"""Command-line interface: ``python -m repro <experiment>``.

Regenerates any of the paper's artifacts from the terminal::

    python -m repro table1
    python -m repro fig4 --apps tomcatv ijpeg
    python -m repro resonance --quick
    python -m repro all --quick --jobs 4 --cache-dir .repro-cache
    python -m repro cache --cache-dir .repro-cache          # inspect
    python -m repro cache --cache-dir .repro-cache --clear  # wipe
    python -m repro lint src/                               # reprolint

``--quick`` runs reduced-size workloads (the same knobs the test suite
uses); the default sizes match EXPERIMENTS.md. ``--jobs N`` pre-computes
the experiment grid over N worker processes (results are bit-identical
to serial execution), and ``--cache-dir`` persists every cell on disk so
repeated invocations are served from the cache; cells are keyed by
workload, configuration, seed and a source-code version tag, so edits to
the simulation code invalidate stale entries automatically.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.cache import KERNEL_BACKENDS
from repro.experiments import (
    MECHANISM_CHOICES,
    ExperimentRunner,
    run_mechanisms,
    run_continuation,
    run_hierarchy,
    run_prefetch_ablation,
    run_geometry_sweep,
    run_mrc,
    run_multicore,
    run_skid_ablation,
    run_alignment_ablation,
    run_fig2,
    run_fig3,
    run_fig4,
    run_fig5,
    run_multiplex_ablation,
    run_phase_heuristic_ablation,
    run_policy_ablation,
    run_resonance,
    run_table1,
    run_table2,
)

_EXPERIMENTS = {
    "table1": lambda runner, apps: run_table1(runner, apps),
    "table2": lambda runner, apps: run_table2(runner, apps),
    "fig2": lambda runner, apps: run_fig2(runner),
    "fig3": lambda runner, apps: run_fig3(runner, apps),
    "fig4": lambda runner, apps: run_fig4(runner, apps),
    "fig5": lambda runner, apps: run_fig5(runner),
    "resonance": lambda runner, apps: run_resonance(runner),
    "ablation-alignment": lambda runner, apps: run_alignment_ablation(runner),
    "ablation-phase": lambda runner, apps: run_phase_heuristic_ablation(runner),
    "ablation-multiplex": lambda runner, apps: run_multiplex_ablation(runner),
    "ablation-policy": lambda runner, apps: run_policy_ablation(runner),
    "ext-skid": lambda runner, apps: run_skid_ablation(runner),
    "ext-continuation": lambda runner, apps: run_continuation(runner),
    "ext-hierarchy": lambda runner, apps: run_hierarchy(runner),
    "ext-prefetch": lambda runner, apps: run_prefetch_ablation(runner),
    "mrc": lambda runner, apps: run_mrc(runner, apps),
    # Back-compat alias from when the MRC sweep was an extension driver.
    "ext-mrc": lambda runner, apps: run_mrc(runner, apps),
    "ext-sweep": lambda runner, apps: run_geometry_sweep(runner),
    "mechanisms": lambda runner, apps: run_mechanisms(runner, apps),
    "multicore": lambda runner, apps: run_multicore(runner, apps),
}

#: Experiments excluded from ``repro all`` — aliases and extension grids
#: that run their own fan-out rather than the warmable paper grid.
_NOT_IN_ALL = ("ext-mrc", "mechanisms", "multicore")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate tables/figures from Buck & Hollingsworth (SC 2000).",
    )
    parser.add_argument(
        "experiment",
        choices=[*_EXPERIMENTS, "all", "profile", "cache"],
        help="which artifact to regenerate, 'profile' to profile one app, "
        "or 'cache' to inspect/clear the result cache; 'repro lint' runs "
        "the reprolint static checks and 'repro trace' imports/inspects "
        "address traces (own options, see 'repro lint/trace --help')",
    )
    parser.add_argument(
        "--apps",
        nargs="+",
        default=None,
        help="restrict to these applications (default: all seven); for "
        "'profile', the single application to profile",
    )
    parser.add_argument(
        "--tool",
        choices=["sampling", "search", "adaptive"],
        default="sampling",
        help="profile subcommand: which measurement technique to use",
    )
    parser.add_argument(
        "--quick", action="store_true", help="reduced workload sizes (faster)"
    )
    parser.add_argument(
        "--backend",
        choices=list(KERNEL_BACKENDS),
        default=None,
        help="cache kernel backend (default: the config's 'reference'); "
        "backends are bit-identical, 'array' is the fast path and 'auto' "
        "picks per run from observed miss density",
    )
    parser.add_argument(
        "--mechanism",
        choices=list(MECHANISM_CHOICES),
        default=None,
        help="decorate the simulated cache with a mechanism stack "
        "(victim cache, miss cache, stream buffers; 'vc+sb' wraps "
        "both). Applies to any exact-simulation experiment, e.g. "
        "'repro table1 --mechanism vc'; for 'repro mechanisms' it "
        "restricts the sweep to that single stack. The MRC engine "
        "refuses decorated configs",
    )
    parser.add_argument(
        "--compile-streams",
        action="store_true",
        help="lower workloads to precompiled reference streams before "
        "running (bit-identical, much faster for uninstrumented runs; "
        "streams are cached under --cache-dir when given)",
    )
    parser.add_argument("--seed", type=int, default=1234)
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes used to pre-compute the experiment grid "
        "(results are bit-identical to --jobs 1)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="directory for the persistent result cache (enables caching; "
        "required by the 'cache' subcommand)",
    )
    parser.add_argument(
        "--clear",
        action="store_true",
        help="cache subcommand: remove every cached result",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="checkpoint simulations mid-run and resume interrupted cells "
        "on the next invocation (requires --cache-dir; see EXPERIMENTS.md)",
    )
    parser.add_argument(
        "--live",
        action="store_true",
        help="profile subcommand: stream live miss-rate / interrupt-rate "
        "metrics while the profiled run executes",
    )
    parser.add_argument(
        "--co-runner",
        nargs="+",
        default=None,
        metavar="APP",
        help="profile subcommand: run these applications on additional "
        "cores beside the profiled app (private L1s, one shared LLC) and "
        "stream per-core miss/contention rates live",
    )
    return parser


def _build_profile_tool(runner: ExperimentRunner, app: str, tool_name: str):
    """A live tool instance for the profile subcommand's technique."""
    from repro.core.adaptive import AdaptiveSamplingProfiler
    from repro.core.sampling import SamplingProfiler
    from repro.core.search import NWaySearch

    if tool_name == "search":
        return NWaySearch(n=10, interval_cycles=runner.search_interval(app))
    if tool_name == "adaptive":
        return AdaptiveSamplingProfiler(
            initial_period=runner.scaled_sampling_period(app),
            target_overhead=0.01,
            seed=runner.config.seed,
        )
    return SamplingProfiler(
        period=runner.scaled_sampling_period(app),
        schedule="prime",
        seed=runner.config.seed,
    )


def _live_profile(runner: ExperimentRunner, app: str, tool_name: str):
    """Drive one profiled run through a session with streaming observers."""
    from repro.sim import InterruptRateObserver, MissRateObserver, ProgressObserver

    bucket = max(1, runner.baseline(app).stats.app_cycles // 24)
    miss_rate = MissRateObserver(bucket_cycles=bucket)
    irq_rate = InterruptRateObserver()

    def report(refs: int, cycle: int) -> None:
        rates = miss_rate.rates()
        latest = rates[-1][1] if rates else 0.0
        print(
            f"  [live] {refs:>12,} refs @ cycle {cycle:>14,}  "
            f"miss-rate {latest:6.2%}  interrupts {irq_rate.total}"
        )

    progress = ProgressObserver(every_refs=1 << 18, on_progress=report)
    session = runner.simulator.start_session(
        runner.make(app),
        tool=_build_profile_tool(runner, app, tool_name),
        observers=[miss_rate, irq_rate, progress],
    )
    while session.step():
        pass
    result = session.finalize()
    rates = miss_rate.rates()
    stride = max(1, len(rates) // 24)
    print(
        "  [live] miss-rate trajectory: "
        + " ".join(f"{rate:.2%}" for _, rate in rates[::stride])
    )
    return result


def _profile_multicore(runner: ExperimentRunner, app: str, co_runners: list[str]):
    """Profile an app beside co-runners on a shared LLC, live per core."""
    from repro.experiments.multicore import L1_FRACTION
    from repro.sim import CoreRateObserver, ProgressObserver
    from repro.sim.session import MultiCoreSession

    workloads = [runner.make(name) for name in [app, *co_runners]]
    llc = runner.config.cache
    l1 = llc.resized(max(llc.line_size * llc.assoc, llc.size // L1_FRACTION))
    rates = CoreRateObserver()

    def report(refs: int, cycle: int) -> None:
        cores = ", ".join(
            f"c{core} {miss:6.2%} miss ({cont:.1%} cont)"
            for core, _, miss, cont in rates.rows()
        )
        print(f"  [live] {refs:>12,} refs @ cycle {cycle:>14,}  {cores}")

    progress = ProgressObserver(every_refs=1 << 18, on_progress=report)
    session = MultiCoreSession.start(
        workloads,
        llc_config=llc,
        l1_config=l1,
        seed=runner.config.seed,
        observers=[rates, progress],
    )
    session.run()
    result = session.finalize()
    print(f"\nshared-LLC profile: {result.workload_name}")
    for core in result.cores or []:
        profile = core.contention
        ledger = profile.ledger
        print(
            f"  core {core.core_id} ({core.workload_name}): "
            f"{core.stats.app_refs:,} refs, "
            f"{ledger.classified_misses:,} LLC misses = "
            f"{ledger.self_misses:,} self + "
            f"{ledger.contention_misses:,} contention "
            f"({profile.contention_share:.1%})"
        )
        for name, count in profile.top_contended(3):
            print(f"      {name}: {count:,} contention misses")
    return result


def _profile_app(
    runner: ExperimentRunner, app: str, tool_name: str, live: bool = False
) -> None:
    """The `profile` subcommand: one app, one technique, full report."""
    from repro.core.report import comparison_table

    base = runner.baseline(app)
    if live:
        run = _live_profile(runner, app, tool_name)
    elif tool_name == "search":
        run = runner.with_search(app, n=10)
    elif tool_name == "adaptive":
        run = runner.simulator.run(
            runner.make(app), tool=_build_profile_tool(runner, app, tool_name)
        )
    else:
        run = runner.with_sampling(app, schedule="prime")
    print(comparison_table(base.actual, [run.measured], title=f"profile: {app}"))
    stats = run.stats
    print(
        f"\noverhead: {stats.slowdown:.3%} "
        f"({len(stats.interrupts)} interrupts, "
        f"{stats.interrupts.mean_cycles():,.0f} cycles each); "
        f"perturbation: {stats.miss_increase_vs(base.stats):+.4%} misses"
    )


def _cache_command(args) -> int:
    """The `cache` subcommand: inspect or clear the result cache."""
    from repro.experiments.cache_store import ResultCache

    if args.cache_dir is None:
        print("cache: --cache-dir is required", file=sys.stderr)
        return 2
    cache = ResultCache(args.cache_dir)
    if args.clear:
        removed = cache.clear()
        print(f"cleared {removed} cached results from {cache.root}")
        return 0
    print(cache.describe())
    for entry in cache.entries():
        print(f"  {entry.key[:16]}…  {entry.size_bytes:>8} bytes")
    if cache.manifest_path.exists():
        from repro.experiments.cache_store import Manifest

        records = Manifest.load(cache.manifest_path)
        hits = sum(1 for r in records if r["cached"])
        print(
            f"manifest: {len(records)} task records, {hits} hits, "
            f"{len(records) - hits} misses"
        )
    return 0


def _trace_main(argv: list[str]) -> int:
    """The `trace` verb: import/inspect address traces in any format.

    Formats are content-sniffed (see ``workloads.trace``): canonical
    ``.npz`` archives, gzip'd archives, and plain or gzip'd text traces
    (one ``R|W <address>`` per line, ``#`` comments).
    """
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="Import or inspect address traces (format auto-detected).",
    )
    sub = parser.add_subparsers(dest="verb", required=True)
    p_import = sub.add_parser(
        "import", help="convert any supported trace to the canonical .npz"
    )
    p_import.add_argument("source", help="trace to convert (any format)")
    p_import.add_argument("dest", help="output path (.npz appended if missing)")
    p_info = sub.add_parser(
        "info", help="sniff the format, summarise blocks, suggest a layout"
    )
    p_info.add_argument("source", help="trace to inspect (any format)")
    args = parser.parse_args(argv)

    from repro.errors import TraceError
    from repro.workloads.trace import (
        derive_layout,
        import_trace,
        load_any_trace,
        sniff_trace_format,
    )

    try:
        if args.verb == "import":
            out = import_trace(args.source, args.dest)
            blocks = load_any_trace(out)
            refs = sum(len(b.addrs) for b in blocks)
            print(
                f"imported {args.source} ({sniff_trace_format(args.source)}) "
                f"-> {out}: {len(blocks)} blocks, {refs:,} references"
            )
            return 0
        blocks = load_any_trace(args.source)
        refs = sum(len(b.addrs) for b in blocks)
        writes = sum(
            int(b.writes.sum()) for b in blocks if b.writes is not None
        )
        lo = min(int(b.addrs.min()) for b in blocks)
        hi = max(int(b.addrs.max()) for b in blocks)
        print(f"format:  {sniff_trace_format(args.source)}")
        print(f"blocks:  {len(blocks)}")
        print(f"refs:    {refs:,} ({writes:,} writes)")
        print(f"range:   {lo:#x} .. {hi:#x}")
        print("layout (derived, largest clusters first by address):")
        for name, (base, size) in derive_layout(blocks).items():
            print(f"  {name}: base={base:#x} size={size:,}")
        return 0
    except TraceError as exc:
        print(f"trace: {exc}", file=sys.stderr)
        return 2


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "lint":
        # The linter owns its own argument namespace (paths, --select,
        # --format); delegate before the experiment parser sees it.
        from repro.lint.cli import main as lint_main

        return lint_main(argv[1:])
    if argv and argv[0] == "trace":
        # Same delegation pattern as lint: the trace importer's arguments
        # (source/dest positionals) don't fit the experiment parser.
        return _trace_main(argv[1:])
    args = build_parser().parse_args(argv)
    from repro.experiments.runner import RunnerConfig

    if args.experiment == "cache":
        return _cache_command(args)

    if args.resume and not args.cache_dir:
        print("--resume requires --cache-dir", file=sys.stderr)
        return 2
    runner = ExperimentRunner(
        RunnerConfig(
            seed=args.seed,
            backend=args.backend,
            compile_streams=args.compile_streams,
            # The mechanisms sweep builds its own per-cell stacks, and the
            # shared-LLC sessions refuse decorated configs; runner-level
            # decoration would only skew their baselines.
            mechanisms=(
                args.mechanism
                if args.experiment not in ("mechanisms", "multicore")
                else None
            ),
        ),
        quick=args.quick,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        resume=args.resume,
    )
    if args.experiment == "profile":
        apps = args.apps or ["tomcatv"]
        for app in apps:
            if args.co_runner:
                _profile_multicore(runner, app, args.co_runner)
            else:
                _profile_app(runner, app, args.tool, live=args.live)
        return 0
    names = (
        [n for n in _EXPERIMENTS if n not in _NOT_IN_ALL]
        if args.experiment == "all"
        else [args.experiment]
    )
    if (args.jobs > 1 or args.cache_dir) and names not in (
        ["mechanisms"],
        ["multicore"],
    ):
        t0 = time.time()
        runner.warm(apps=args.apps, experiments=names, jobs=args.jobs)
        print(
            f"[grid: {runner.manifest.summary()}; "
            f"warmed in {time.time() - t0:.1f}s with {args.jobs} jobs]\n"
        )
    for name in names:
        t0 = time.time()
        if name == "mechanisms" and args.mechanism:
            report = run_mechanisms(
                runner, args.apps, mechanisms=[args.mechanism]
            )
        else:
            report = _EXPERIMENTS[name](runner, args.apps)
        print(report)
        print(f"[{name} in {time.time() - t0:.1f}s]\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
