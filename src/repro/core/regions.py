"""Search regions: object-aligned address ranges with measurement state.

The n-way search's unit of work is a region of the address space being
measured by one conditional miss counter. This module owns the two pieces
of region logic the paper calls out explicitly:

* **Object-aligned splitting** — "adjust the extents of the regions each
  time they are split so that objects do not span region boundaries"
  (section 2.2); an array straddling a split might otherwise not cause
  enough misses in either half to attract the search.
* **Measurement state** — single-object regions stay in the priority
  queue and are re-measured; their results are *averaged* over
  iterations, "allowing the objects to be ranked with increasing
  accuracy". Regions recently in the top ranks survive zero-miss
  intervals (the phase heuristic of section 3.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SearchError
from repro.memory.object_map import ObjectMap
from repro.memory.objects import MemoryObject
from repro.util.intervals import Interval, interval_len


@dataclass(eq=False)
class RegionState:
    """One region under measurement. Hash/eq by identity: regions are
    created once (at split time) and flow between the measurement set and
    the priority queue as the same object."""

    interval: Interval
    #: Objects overlapping the region at creation time.
    n_objects: int
    #: The single contained object, when ``n_objects == 1``.
    obj: MemoryObject | None = None
    #: Shares measured in each interval in which the region had misses.
    share_history: list[float] = field(default_factory=list)
    #: Consecutive zero-miss intervals survived via the phase heuristic.
    zero_streak: int = 0
    #: Whether this region (or its parent) was recently ranked in the top
    #: n/2 — the condition for surviving a zero-miss interval.
    was_top: bool = False
    #: Generation (search iteration) at which the region was created.
    created_iteration: int = 0

    @property
    def single_object(self) -> bool:
        return self.n_objects == 1

    @property
    def mean_share(self) -> float:
        """Average measured share; the search's ranking estimate."""
        if not self.share_history:
            return 0.0
        return sum(self.share_history) / len(self.share_history)

    @property
    def n_measurements(self) -> int:
        return len(self.share_history)

    def record_share(self, share: float) -> None:
        self.share_history.append(share)
        self.zero_streak = 0

    def describe(self) -> str:
        label = self.obj.name if self.obj is not None else f"{self.n_objects} objs"
        return (
            f"[{self.interval.lo:#x},{self.interval.hi:#x}) "
            f"{label} share~{self.mean_share:.4f}"
        )


def region_for(
    object_map: ObjectMap, interval: Interval, iteration: int = 0
) -> RegionState | None:
    """Build a region over ``interval``; None if it contains no objects.

    A single-object region is *narrowed to the object's extent* so that
    later re-measurements count exactly the object's misses — the paper's
    final estimates are taken "with each cache miss counter set to cover
    exactly the area of one of the found objects".
    """
    objs = object_map.objects_overlapping(interval)
    if not objs:
        return None
    if len(objs) == 1:
        obj = objs[0]
        clipped = Interval(max(interval.lo, obj.base), min(interval.hi, obj.end))
        return RegionState(
            interval=clipped, n_objects=1, obj=obj, created_iteration=iteration
        )
    return RegionState(
        interval=interval, n_objects=len(objs), created_iteration=iteration
    )


def split_region(
    object_map: ObjectMap,
    region: RegionState,
    iteration: int = 0,
    aligned: bool = True,
) -> list[RegionState]:
    """Split a multi-object region in half, snapping to object boundaries.

    The split point is the legal boundary (an object start or end) nearest
    the midpoint, so no object spans the cut. Children containing no
    objects are dropped (they can never cause attributable misses).
    Raises :class:`SearchError` on a single-object region — the search
    must re-measure those instead.

    ``aligned=False`` cuts at the raw midpoint regardless of object
    extents — the naive behaviour whose failure mode section 2.2
    describes (an array spanning the cut "may not cause enough cache
    misses in any single region to attract the search to it"). Provided
    for the alignment ablation bench.
    """
    if region.single_object:
        raise SearchError(f"cannot split single-object region {region.describe()}")
    iv = region.interval
    midpoint = (iv.lo + iv.hi) // 2
    if not aligned:
        cut = midpoint
        if not (iv.lo < cut < iv.hi):
            child = region_for(object_map, iv, iteration)
            return [child] if child is not None else []
        children = []
        for child_iv in (Interval(iv.lo, cut), Interval(cut, iv.hi)):
            child = region_for(object_map, child_iv, iteration)
            if child is not None:
                child.was_top = region.was_top
                children.append(child)
        return children
    boundaries = object_map.boundaries_in(iv)
    if not boundaries:
        # No legal internal cut: treat as unsplittable (one object spans
        # the whole region, or the region covers one object plus empty
        # space that region_for() will clip away).
        child = region_for(object_map, iv, iteration)
        return [child] if child is not None else []
    cut = min(boundaries, key=lambda b: abs(b - midpoint))
    children = []
    for child_iv in (Interval(iv.lo, cut), Interval(cut, iv.hi)):
        child = region_for(object_map, child_iv, iteration)
        if child is not None:
            # Children of a refined (top-ranked) region inherit phase
            # protection: their addresses were recently hot.
            child.was_top = region.was_top
            children.append(child)
    return children


def initial_regions(
    object_map: ObjectMap, whole: Interval, n: int
) -> list[RegionState]:
    """Divide the address space into (up to) n object-populated regions.

    "At the beginning of the search, the address space is divided into n
    areas, each assigned to a miss counter." Cuts are snapped to the
    nearest legal object boundary; empty areas are dropped immediately
    (their counters would read zero forever).
    """
    if n < 2:
        raise SearchError(f"n-way search needs n >= 2, got {n}")
    if interval_len(whole) == 0:
        raise SearchError("empty address space")
    raw_cuts = [whole.lo + (interval_len(whole) * i) // n for i in range(1, n)]
    boundaries = object_map.boundaries_in(whole)
    cuts: list[int] = []
    for raw in raw_cuts:
        if boundaries:
            snapped = min(boundaries, key=lambda b: abs(b - raw))
        else:
            snapped = raw
        if snapped not in cuts and whole.lo < snapped < whole.hi:
            cuts.append(snapped)
    cuts.sort()
    edges = [whole.lo, *cuts, whole.hi]
    regions: list[RegionState] = []
    for lo, hi in zip(edges, edges[1:]):
        region = region_for(object_map, Interval(lo, hi))
        if region is not None:
            regions.append(region)
    if not regions:
        raise SearchError("no memory objects inside the searched address space")
    return regions
