"""Cache-miss address sampling (paper section 2.1).

The overflow counter is armed to interrupt after a period's worth of
misses; the handler reads the last-miss-address register, walks the object
map to find the containing memory object, and bumps that object's count.
After the run, objects are ranked by sample counts and each object's share
of samples estimates its share of all cache misses.

Period schedules reproduce the section 3.1 finding: a round-number fixed
period can resonate with an application's access pattern (tomcatv's RX/RY
arrays), while a nearby *prime* period — or a pseudo-random one — breaks
the resonance.
"""

from __future__ import annotations

import enum
import zlib

import numpy as np

from repro.cache.attribution import MissSeries
from repro.core.profile import DataProfile, ObjectShare
from repro.errors import CounterError
from repro.memory.objects import MemoryObject
from repro.sim.instrumentation import (
    HandlerResult,
    InstrumentationTool,
    ToolContext,
    _RefPattern,
)
from repro.util.primes import next_prime
from repro.util.rng import make_rng

#: Name under which samples landing outside every known object accumulate.
UNMAPPED = "<unmapped>"


class PeriodSchedule(enum.Enum):
    """How the sampling period evolves between interrupts."""

    FIXED = "fixed"    #: the given period, every time
    PRIME = "prime"    #: the next prime >= the given period, every time
    RANDOM = "random"  #: uniform in [period/2, 3*period/2), redrawn each time


class SamplingProfiler(InstrumentationTool):
    """Miss-address sampling profiler.

    ``period`` is the number of cache misses between samples (the paper
    evaluates 1,000 to 1,000,000; scaled runs use proportionally smaller
    values). ``schedule`` selects resonance behaviour per section 3.1.
    """

    name = "sampling"

    def __init__(
        self,
        period: int,
        schedule: PeriodSchedule | str = PeriodSchedule.FIXED,
        seed: int | None = None,
        skid: int = 0,
        timeline_bucket_cycles: int | None = None,
    ) -> None:
        super().__init__()
        if period <= 0:
            raise CounterError(f"sampling period must be positive, got {period}")
        if skid < 0:
            raise CounterError(f"skid must be non-negative, got {skid}")
        self.base_period = period
        #: Interrupt skid in misses: on real hardware the reported address
        #: often lags the triggering miss by several events (section 2.1
        #: notes out-of-order execution makes precise attribution hard);
        #: skid=0 models a precise facility like the Itanium register the
        #: paper assumes. The skid ablation measures accuracy degradation.
        self.skid = skid
        self.schedule = PeriodSchedule(schedule)
        self._rng = make_rng(seed)
        self._prime_period = next_prime(period - 1)  # smallest prime >= period
        self.samples: dict[str, int] = {}
        self._objects: dict[str, MemoryObject] = {}
        self.total_samples = 0
        #: Optional time-resolved sample record: a per-bucket per-object
        #: sample count (section 3.5 discusses how phases interact with
        #: sampling; this is the measured-side analogue of the ground
        #: truth's Figure-5 series, and feeds
        #: :func:`repro.analysis.phases.detect_phases`).
        self.timeline: MissSeries | None = (
            MissSeries(bucket_cycles=timeline_bucket_cycles)
            if timeline_bucket_cycles
            else None
        )
        self._map_struct: _RefPattern | None = None
        self._counts_struct: _RefPattern | None = None

    # ------------------------------------------------------------- schedule

    def next_period(self) -> int:
        if self.schedule is PeriodSchedule.FIXED:
            return self.base_period
        if self.schedule is PeriodSchedule.PRIME:
            return self._prime_period
        lo = max(1, self.base_period // 2)
        hi = max(lo + 1, self.base_period + self.base_period // 2)
        return int(self._rng.integers(lo, hi))

    # ------------------------------------------------------------ lifecycle

    def attach(self, ctx: ToolContext) -> HandlerResult:
        # The handler's working set: the object-extent map it searches and
        # the per-object count table it updates. Sized from the live object
        # population; these allocations live in the instrumentation segment
        # so their cache traffic is accounted separately.
        n_objects = max(len(ctx.object_map), 16)
        map_obj = ctx.alloc_instr("sampler.object_map", n_objects * 16)
        counts_obj = ctx.alloc_instr("sampler.counts", n_objects * 8)
        self._map_struct = _RefPattern(map_obj.base, map_obj.size)
        self._counts_struct = _RefPattern(counts_obj.base, counts_obj.size)
        return HandlerResult(rearm_overflow=self.next_period())

    def on_miss_overflow(self, cycle: int) -> HandlerResult:
        ctx = self.ctx
        addr = (
            ctx.monitor.last_miss_addr
            if self.skid == 0
            else ctx.monitor.miss_addr_with_skid(self.skid)
        )
        if addr is None:  # pragma: no cover - defensive; engine guarantees it
            return HandlerResult(rearm_overflow=self.next_period())
        obj = ctx.object_map.lookup(addr)
        probes = ctx.object_map.consume_probe_count()
        name = obj.name if obj is not None else UNMAPPED
        self.samples[name] = self.samples.get(name, 0) + 1
        if obj is not None:
            self._objects[name] = obj
        self.total_samples += 1
        if self.timeline is not None:
            self.timeline.add(name, int(cycle) // self.timeline.bucket_cycles, 1)

        handler_cycles = ctx.cost_model.sampler_handler_cycles(probes)
        # Handler memory behaviour: the binary-search probes into the map
        # array plus the read-modify-write of the object's count slot.
        probe_refs = self._map_struct.binary_search_path(addr, probes)
        # crc32, not hash(): the slot index must be reproducible across
        # processes (PYTHONHASHSEED randomises str hashes per process,
        # which would make the handler's cache footprint — and therefore
        # measured results — differ from run to run).
        count_slot = self._counts_struct.touch(
            [(zlib.crc32(name.encode()) & 0xFFFF) * 8]
        )
        mem_refs = np.concatenate([probe_refs, count_slot, count_slot])
        return HandlerResult(
            handler_cycles=handler_cycles,
            mem_refs=mem_refs,
            rearm_overflow=self.next_period(),
        )

    # --------------------------------------------------------------- results

    def profile(self) -> DataProfile:
        total = self.total_samples
        shares = [
            ObjectShare(
                name=name,
                count=count,
                share=(count / total) if total else 0.0,
                obj=self._objects.get(name),
            )
            for name, count in self.samples.items()
        ]
        return DataProfile(
            source=f"sample(1/{self.base_period},{self.schedule.value})",
            shares=shares,
            total_misses=total,
            meta={
                "period": self.base_period,
                "schedule": self.schedule.value,
                "skid": self.skid,
                "effective_period": self.next_period()
                if self.schedule is not PeriodSchedule.RANDOM
                else None,
                "samples": total,
            },
        )
