"""The paper's contribution: data-centric cache profiling techniques.

Two techniques attribute cache misses to source-level data structures
using simulated hardware-performance-monitor features:

* :class:`SamplingProfiler` — cache-miss address sampling (paper §2.1),
* :class:`NWaySearch` — n-way counter search with priority-queue
  backtracking (paper §2.2), plus :class:`GreedySearch`, the
  no-priority-queue variant whose failure mode Figure 2 illustrates.

Results are :class:`DataProfile` objects; :mod:`repro.core.report`
renders paper-style comparison tables and accuracy metrics.
"""

from repro.core.profile import DataProfile, ObjectShare
from repro.core.sampling import PeriodSchedule, SamplingProfiler
from repro.core.regions import RegionState, initial_regions, split_region
from repro.core.search import NWaySearch, SearchPhase
from repro.core.greedy_search import GreedySearch
from repro.core.adaptive import AdaptiveSamplingProfiler
from repro.core.aggregate import aggregate_by, aggregate_heap_by_site
from repro.core.report import (
    comparison_table,
    max_share_error,
    rank_agreement,
    spearman_rank_correlation,
)

__all__ = [
    "DataProfile",
    "ObjectShare",
    "SamplingProfiler",
    "PeriodSchedule",
    "RegionState",
    "initial_regions",
    "split_region",
    "NWaySearch",
    "SearchPhase",
    "GreedySearch",
    "AdaptiveSamplingProfiler",
    "aggregate_by",
    "aggregate_heap_by_site",
    "comparison_table",
    "rank_agreement",
    "max_share_error",
    "spearman_rank_correlation",
]
