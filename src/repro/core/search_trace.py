"""Search iteration traces and the Figure-1-style convergence view.

The paper's Figure 1 illustrates the search narrowing from whole-address-
space regions down to a single hot object. :class:`NWaySearch` records an
:class:`IterationRecord` per timer interrupt (what was measured, what each
counter read, what was selected or concluded); this module renders that
trace as an ASCII convergence diagram — each iteration a row, each
measured region a span across the searched address range, shaded by its
measured share — so a user can literally watch the search close in.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.intervals import Interval

_SHADES = " ░▒▓█"


@dataclass
class MeasuredRegion:
    """One region's measurement within one iteration."""

    interval: Interval
    share: float
    single_object: bool
    label: str  #: object name for single-object regions, else "n objs"


@dataclass
class IterationRecord:
    """Everything one search iteration saw and decided."""

    iteration: int
    phase: str
    total_misses: int
    regions: list[MeasuredRegion] = field(default_factory=list)
    note: str = ""


def render_trace(
    records: list[IterationRecord],
    span: Interval | None = None,
    width: int = 72,
) -> str:
    """Render iteration records as a convergence diagram.

    The horizontal axis is the searched address span (auto-fitted to the
    regions ever measured, which excludes the huge empty gaps between
    segments); each row paints the iteration's measured regions with a
    shade proportional to their measured share of misses.
    """
    if not records:
        return "(no search iterations recorded)"
    if span is None:
        los = [r.interval.lo for rec in records for r in rec.regions]
        his = [r.interval.hi for rec in records for r in rec.regions]
        if not los:
            return "(no regions measured)"
        span = Interval(min(los), max(his))
    extent = max(1, span.hi - span.lo)

    lines = [
        f"search convergence over [{span.lo:#x}, {span.hi:#x}) "
        f"({extent / 1024:.0f} KiB searched)"
    ]
    for rec in records:
        row = [" "] * width
        for region in rec.regions:
            lo = max(0, int((region.interval.lo - span.lo) / extent * width))
            hi = min(width, max(lo + 1, int(
                (region.interval.hi - span.lo) / extent * width
            )))
            shade = _SHADES[min(len(_SHADES) - 1, int(region.share * (len(_SHADES) - 1) + 0.999))] \
                if region.share > 0 else _SHADES[0]
            for x in range(lo, hi):
                row[x] = shade
        label = f"#{rec.iteration:>2} {rec.phase:<10}"
        suffix = f" {rec.note}" if rec.note else ""
        lines.append(f"{label} |{''.join(row)}|{suffix}")
    lines.append(
        "shade = region's share of that interval's misses "
        f"({_SHADES[1]}<25% {_SHADES[2]}<50% {_SHADES[3]}<75% {_SHADES[4]}>=75%)"
    )
    return "\n".join(lines)


def trace_summary(records: list[IterationRecord]) -> str:
    """A compact per-iteration text log (for reports and debugging)."""
    lines = []
    for rec in records:
        tops = sorted(rec.regions, key=lambda r: -r.share)[:3]
        best = ", ".join(
            f"{r.label}={r.share:.0%}" for r in tops if r.share > 0
        )
        lines.append(
            f"iter {rec.iteration:>3} [{rec.phase}] "
            f"{len(rec.regions)} regions, {rec.total_misses:,} misses"
            + (f": {best}" if best else "")
            + (f" ({rec.note})" if rec.note else "")
        )
    return "\n".join(lines)
