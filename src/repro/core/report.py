"""Comparing profiles: paper-style tables and accuracy metrics."""

from __future__ import annotations

from repro.core.profile import DataProfile
from repro.util.format import Table, render_table
from repro.util.units import fmt_pct


def comparison_table(
    actual: DataProfile,
    measured: list[DataProfile],
    k: int = 5,
    min_share: float = 0.0001,
    title: str | None = None,
) -> str:
    """Render a Table-1-style comparison: actual vs each measured profile.

    Rows are the top-k objects by *actual* misses plus any extra objects a
    technique ranked in its own top-k; per the paper, objects causing less
    than 0.01% of misses are excluded.
    """
    names = [s.name for s in actual.top(k, min_share)]
    for profile in measured:
        for s in profile.top(k, min_share):
            if s.name not in names:
                names.append(s.name)

    headers = ["object", "actual rank", "actual %"]
    for profile in measured:
        headers += [f"{profile.source} rank", f"{profile.source} %"]
    table = Table(headers, title=title)
    for name in names:
        row: list[object] = [
            name,
            actual.rank_of(name) or "-",
            fmt_pct(actual.share_of(name)) if actual.rank_of(name) else "-",
        ]
        for profile in measured:
            rank = profile.rank_of(name)
            row += [rank or "-", fmt_pct(profile.share_of(name)) if rank else "-"]
        table.add_row(row)
    return render_table(table)


def rank_agreement(
    actual: DataProfile,
    measured: DataProfile,
    k: int = 5,
    tolerance: float = 0.02,
) -> float:
    """Fraction of the actual top-k the technique ranked consistently.

    Objects whose actual shares are near-tied are *rank-interchangeable*:
    consecutive objects (in actual order) whose shares differ by less
    than ``tolerance`` form one tie block, transitively — so a chain of
    near-equal shares (swim's thirteen 7.7% arrays) may appear in any
    order without penalty. This is the paper's caveat made precise: both
    algorithms order objects correctly "except when the difference in
    total cache misses caused by two or more objects was small (generally
    less than 2%)". A measured position "agrees" when the object placed
    there belongs to the same tie block as the object actually ranked
    there; objects a technique did not report (the search returns only
    n-1 objects) are excluded rather than penalised.
    """
    top = actual.top(k)
    if not top:
        return 1.0
    reported = [s for s in top if measured.rank_of(s.name) is not None]
    if not reported:
        return 0.0
    # Rank among reported objects only, so a technique that legitimately
    # reports a subset is judged on the order of what it did report.
    actual_order = [s.name for s in sorted(reported, key=lambda s: -s.share)]
    measured_order = sorted(
        (s.name for s in reported), key=lambda nm: measured.rank_of(nm)
    )
    # Assign each object to its tie block: a new block starts where the
    # share gap to the previous (better-ranked) object reaches tolerance.
    block: dict[str, int] = {}
    current = 0
    for i, name in enumerate(actual_order):
        if i and (
            actual.share_of(actual_order[i - 1]) - actual.share_of(name)
            >= tolerance
        ):
            current += 1
        block[name] = current
    agree = sum(
        1
        for pos, name in enumerate(measured_order)
        if block[name] == block[actual_order[pos]]
    )
    return agree / len(reported)


def max_share_error(actual: DataProfile, measured: DataProfile, k: int = 7) -> float:
    """Largest |measured - actual| share over the actual top-k objects.

    This is the section 3.1 accuracy metric: tomcatv's resonant run shows
    a ~14.6% error on RX; the prime-period run shows ~0.3%.
    """
    worst = 0.0
    for s in actual.top(k):
        if measured.rank_of(s.name) is None:
            continue
        worst = max(worst, abs(measured.share_of(s.name) - s.share))
    return worst


def spearman_rank_correlation(
    actual: DataProfile, measured: DataProfile, k: int = 10
) -> float:
    """Spearman rho between actual and measured ranks of commonly-seen
    objects (1.0 = identical ordering). Returns 1.0 when fewer than two
    objects are comparable."""
    names = [s.name for s in actual.top(k) if measured.rank_of(s.name) is not None]
    n = len(names)
    if n < 2:
        return 1.0
    actual_rank = {name: i for i, name in enumerate(names)}
    measured_sorted = sorted(names, key=lambda nm: measured.rank_of(nm))
    measured_rank = {name: i for i, name in enumerate(measured_sorted)}
    d2 = sum((actual_rank[nm] - measured_rank[nm]) ** 2 for nm in names)
    return 1.0 - (6.0 * d2) / (n * (n * n - 1))
