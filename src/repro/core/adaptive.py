"""Adaptive sampling period — the paper's future-work extension (section 5).

"Currently, the algorithms depend on certain arbitrarily chosen
parameters, such as sampling frequency ... We plan to investigate how
these values could be adjusted automatically by the algorithms in order to
achieve greater accuracy and efficiency."

:class:`AdaptiveSamplingProfiler` implements that loop for sampling: the
handler tracks its own cost (interrupt count times per-interrupt cycles)
against elapsed virtual time and steers the period toward a target
overhead fraction — doubling the period when overhead runs hot, shrinking
it geometrically (never below a floor) when there is headroom, so the
profiler collects as many samples as the overhead budget allows.
"""

from __future__ import annotations

from repro.core.sampling import PeriodSchedule, SamplingProfiler
from repro.errors import CounterError
from repro.sim.instrumentation import HandlerResult


class AdaptiveSamplingProfiler(SamplingProfiler):
    """Sampling profiler that auto-tunes its period to an overhead target."""

    name = "adaptive-sampling"

    def __init__(
        self,
        initial_period: int,
        target_overhead: float = 0.01,
        adjust_every: int = 32,
        min_period: int = 64,
        max_period: int | None = None,
        seed: int | None = None,
    ) -> None:
        if not 0.0 < target_overhead < 1.0:
            raise CounterError(
                f"target_overhead must be in (0,1), got {target_overhead}"
            )
        if adjust_every <= 0:
            raise CounterError("adjust_every must be positive")
        super().__init__(
            period=initial_period, schedule=PeriodSchedule.PRIME, seed=seed
        )
        self.target_overhead = target_overhead
        self.adjust_every = adjust_every
        self.min_period = min_period
        self.max_period = max_period or initial_period * 1024
        self.period_history: list[int] = [self.base_period]
        self._interrupts_seen = 0
        self._instr_cycles_est = 0

    def on_miss_overflow(self, cycle: int) -> HandlerResult:
        result = super().on_miss_overflow(cycle)
        self._interrupts_seen += 1
        self._instr_cycles_est += (
            self.ctx.cost_model.interrupt_delivery_cycles + result.handler_cycles
        )
        if self._interrupts_seen % self.adjust_every == 0 and cycle > 0:
            overhead = self._instr_cycles_est / cycle
            if overhead > self.target_overhead * 1.25:
                # Scale the growth with the overshoot so a wildly-too-hot
                # period converges in a few adjustments, not dozens.
                factor = min(16.0, max(2.0, overhead / self.target_overhead))
                self._set_period(int(self.base_period * factor))
            elif overhead < self.target_overhead * 0.5:
                self._set_period(max(self.min_period, self.base_period * 2 // 3))
            # Re-arm with the (possibly new) period.
            result = HandlerResult(
                handler_cycles=result.handler_cycles,
                mem_refs=result.mem_refs,
                rearm_overflow=self.next_period(),
            )
        return result

    def _set_period(self, period: int) -> None:
        period = int(min(max(period, self.min_period), self.max_period))
        if period != self.base_period:
            self.base_period = period
            from repro.util.primes import next_prime

            self._prime_period = next_prime(period - 1)
            self.period_history.append(period)

    def profile(self):
        prof = super().profile()
        prof.meta["period_history"] = list(self.period_history)
        prof.meta["final_period"] = self.base_period
        prof.meta["target_overhead"] = self.target_overhead
        return prof
