"""The n-way counter search for memory bottlenecks (paper section 2.2).

The search assigns each of n base/bounds-qualified miss counters to a
region of the address space, lets the application run for a timer
interval, then:

1. converts each counter into the region's percentage of total misses
   (an extra unqualified counter provides the denominator),
2. pushes every measured region into a **priority queue** ranked by that
   percentage — the queue is what lets the search back-track to a region
   measured several iterations ago (Figure 2's failure without it),
3. pops the best regions and splits each at an object-aligned midpoint to
   form the next measurement set; popped single-object regions cannot be
   split, so they are re-measured and their percentages **averaged**
   across iterations,
4. applies the **phase heuristic** (section 3.5): a region recently in
   the top ranks that shows zero misses this interval is retained for a
   few iterations, and each retention stretches future intervals so one
   interval spans multiple phases,
5. terminates when the top n-1 queue entries are single objects (or the
   unsearched share falls below a threshold), then runs a final
   **estimation phase** with each counter set to exactly one found
   object's extent — the percentages the paper reports come from these
   post-search measurements, which is why su2cor's 2-way search can
   report 0.0% for an array whose access pattern changed after it was
   found.

**Continuation** (``continuation_rounds > 0``) implements the fix the
paper's conclusion proposes for the search's limited result count: "this
may be correctable by returning to search previously discarded areas
after the ones causing the most cache misses have been examined fully".
After each estimation batch, the found objects are retired from the
queue and the search resumes over what remains, so an n-way search can
report more than n-1 objects across batches.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.core.profile import DataProfile, ObjectShare
from repro.core.regions import RegionState, initial_regions, split_region
from repro.core.search_trace import IterationRecord, MeasuredRegion
from repro.datastructs.heap_pq import MaxPriorityQueue
from repro.errors import SearchError
from repro.memory.objects import MemoryObject
from repro.sim.instrumentation import (
    HandlerResult,
    InstrumentationTool,
    ToolContext,
    _RefPattern,
)
from repro.util.intervals import Interval


class SearchPhase(enum.Enum):
    SEARCHING = "searching"
    ESTIMATING = "estimating"
    DONE = "done"


class NWaySearch(InstrumentationTool):
    """N-way search instrumentation tool.

    Parameters
    ----------
    n:
        Number of region counters to use (the paper evaluates 2 and 10).
        Must not exceed the monitor's counter bank.
    interval_cycles:
        Initial timer interval between search iterations, in virtual
        cycles. The phase heuristic may grow it up to ``max_interval_cycles``.
    zero_keep_max:
        How many consecutive zero-miss intervals a recently-top region
        survives before being discarded.
    interval_growth:
        Multiplier applied to the interval each time a zero-miss region is
        retained ("the duration of future sample intervals is increased").
    unsearched_threshold:
        Terminate early once the non-single-object share of the queue
        falls below this fraction ("if the percentage of cache misses
        within unsearched regions drops below a selectable threshold").
    estimate_rounds:
        Number of post-search intervals over which final per-object
        percentages are measured.
    backtracking:
        True for the paper's priority-queue algorithm. False gives the
        greedy variant (each iteration considers only the regions measured
        in that interval and discards the rest), whose failure mode
        Figure 2 illustrates; see :class:`repro.core.greedy_search.GreedySearch`.
    align_splits:
        True for the paper's object-aligned splits; False cuts at raw
        midpoints (the section 2.2 failure mode, for the ablation bench).
    continuation_rounds:
        Extra search->estimate batches after the first (the paper's
        section 6 proposal). 0 reproduces the published algorithm.
    """

    name = "nway-search"

    def __init__(
        self,
        n: int = 10,
        interval_cycles: int = 400_000,
        zero_keep_max: int = 3,
        interval_growth: float = 1.5,
        max_interval_cycles: int | None = None,
        unsearched_threshold: float = 0.005,
        estimate_rounds: int = 8,
        backtracking: bool = True,
        align_splits: bool = True,
        max_results: int | None = None,
        continuation_rounds: int = 0,
    ) -> None:
        super().__init__()
        if n < 2:
            raise SearchError(f"n-way search needs n >= 2, got {n}")
        if interval_cycles <= 0:
            raise SearchError("interval_cycles must be positive")
        if continuation_rounds < 0:
            raise SearchError("continuation_rounds must be non-negative")
        self.n = n
        self.interval_cycles = interval_cycles
        self.initial_interval_cycles = interval_cycles
        self.zero_keep_max = zero_keep_max
        self.interval_growth = interval_growth
        self.max_interval_cycles = max_interval_cycles or interval_cycles * 64
        self.unsearched_threshold = unsearched_threshold
        self.estimate_rounds = estimate_rounds
        self.backtracking = backtracking
        self.align_splits = align_splits
        #: Up to how many objects to report per batch; the paper's
        #: algorithm yields n-1 ("an n-way search will return n-1 objects").
        self.max_results = max_results or (n - 1)
        self.continuation_rounds = continuation_rounds

        self.phase = SearchPhase.SEARCHING
        self.queue = MaxPriorityQueue()
        self.current_set: list[RegionState] = []
        #: Regions in the estimation batch currently being measured.
        self.found: list[RegionState] = []
        #: Finished per-object measurements: (object, est_count, est_total,
        #: search-time mean share, n search measurements).
        self.results: list[tuple[MemoryObject, int, int, float, int]] = []
        self.iterations = 0
        self.restarts = 0
        self.batches_completed = 0
        self._continuations_left = continuation_rounds
        self._excluded_uids: set[int] = set()
        self._estimate_counts: list[int] = []
        self._estimate_total = 0
        self._estimate_rounds_left = 0
        self._whole: Interval | None = None
        self._queue_struct: _RefPattern | None = None
        self._table_struct: _RefPattern | None = None
        #: Per-interrupt measurement log; render with
        #: :func:`repro.core.search_trace.render_trace` (Figure-1 style).
        self.trace: list[IterationRecord] = []

    # ------------------------------------------------------------- lifecycle

    def attach(self, ctx: ToolContext) -> HandlerResult:
        bank = ctx.monitor.regions
        if self.n > len(bank):
            raise SearchError(
                f"{self.n}-way search needs {self.n} region counters, "
                f"monitor has {len(bank)}"
            )
        self._whole = ctx.address_space.application_extent()
        self.current_set = initial_regions(ctx.object_map, self._whole, self.n)
        bank.program([r.interval for r in self.current_set])
        ctx.monitor.global_counter.clear()
        queue_obj = ctx.alloc_instr("search.queue", 4096)
        table_obj = ctx.alloc_instr("search.regions", 4096)
        self._queue_struct = _RefPattern(queue_obj.base, queue_obj.size)
        self._table_struct = _RefPattern(table_obj.base, table_obj.size)
        return HandlerResult(next_timer_in=self.interval_cycles)

    # ---------------------------------------------------------------- timer

    def on_timer(self, cycle: int) -> HandlerResult:
        if self.phase is SearchPhase.SEARCHING:
            return self._search_iteration()
        if self.phase is SearchPhase.ESTIMATING:
            return self._estimate_iteration()
        return HandlerResult(done=True)

    # ------------------------------------------------------ search iteration

    def _search_iteration(self) -> HandlerResult:
        ctx = self.ctx
        bank = ctx.monitor.regions
        counts = bank.read_all()
        total = ctx.monitor.global_counter.read_and_clear()
        self.iterations += 1
        counter_io = len(counts) + 1

        if not self.backtracking:
            # Greedy variant: only this interval's measurements compete;
            # previously measured regions are forgotten.
            self.queue = MaxPriorityQueue()

        self.trace.append(
            IterationRecord(
                iteration=self.iterations,
                phase="searching",
                total_misses=total,
                regions=[
                    MeasuredRegion(
                        interval=region.interval,
                        share=(count / total) if total > 0 else 0.0,
                        single_object=region.single_object,
                        label=region.obj.name
                        if region.obj is not None
                        else f"{region.n_objects} objs",
                    )
                    for region, count in zip(self.current_set, counts)
                ],
            )
        )

        zero_kept = False
        for region, count in zip(self.current_set, counts):
            if total > 0 and count > 0:
                region.record_share(count / total)
                self.queue.push(region, region.mean_share)
            elif region.was_top and region.zero_streak < self.zero_keep_max:
                region.zero_streak += 1
                zero_kept = True
                # Retained with its previous rank (mean of past shares).
                self.queue.push(region, region.mean_share)
            # else: discarded immediately, as the paper specifies.

        if zero_kept:
            self.interval_cycles = min(
                int(self.interval_cycles * self.interval_growth),
                self.max_interval_cycles,
            )

        # ------------------------------------------------------- termination
        top = self.queue.peek_top(self.n - 1)
        all_single = bool(top) and all(r.single_object for r, _ in top)
        nonsingle_share = sum(
            priority for region, priority in self.queue.items()
            if not region.single_object
        )
        have_single = any(r.single_object for r, _ in self.queue.items())
        if all_single or (have_single and nonsingle_share < self.unsearched_threshold):
            self.trace[-1].note = "-> estimation"
            return self._begin_estimation(counter_io)

        # --------------------------------------------------------- selection
        next_set, splits, boundary_scans = self._select_from_queue()
        if not next_set:
            # Every region died (e.g. an all-zero interval with no protected
            # regions). Restart the search from scratch rather than stall.
            self.trace[-1].note = "restart"
            self.restarts += 1
            next_set = [
                r
                for r in initial_regions(ctx.object_map, self._whole, self.n)
                if not (r.single_object and r.obj.uid in self._excluded_uids)
            ]
            if not next_set:
                self.phase = SearchPhase.DONE
                return HandlerResult(done=True)

        self.current_set = next_set
        bank.program([r.interval for r in next_set])
        ctx.monitor.global_counter.clear()

        queue_ops = self.queue.reset_op_count()
        handler_cycles = ctx.cost_model.search_handler_cycles(
            queue_ops=queue_ops,
            splits=splits,
            boundary_scans=boundary_scans,
            counter_io=counter_io + len(next_set),
        )
        mem_refs = self._handler_refs(queue_ops, len(next_set))
        return HandlerResult(
            handler_cycles=handler_cycles,
            mem_refs=mem_refs,
            next_timer_in=self.interval_cycles,
        )

    def _select_from_queue(self) -> tuple[list[RegionState], int, int]:
        """Pop the best regions and split them into the next measurement
        set, consuming up to n counters (shared by the search iteration
        and the continuation restart)."""
        ctx = self.ctx
        next_set: list[RegionState] = []
        budget = self.n
        splits = 0
        boundary_scans = 0
        while budget > 0 and len(self.queue):
            region, _ = self.queue.pop()
            region.was_top = True
            if region.single_object:
                if region.obj.uid in self._excluded_uids:
                    continue  # already reported in an earlier batch
                next_set.append(region)
                budget -= 1
            elif budget < 2:
                next_set.append(region)  # re-measure unsplit
                budget -= 1
            else:
                children = split_region(
                    ctx.object_map, region, self.iterations, aligned=self.align_splits
                )
                splits += 1
                boundary_scans += region.n_objects
                taken = 0
                for child in children:
                    if child.single_object and child.obj.uid in self._excluded_uids:
                        continue
                    next_set.append(child)
                    taken += 1
                budget -= max(1, taken)
        return next_set, splits, boundary_scans

    # ---------------------------------------------------------- estimation

    def _current_singles(self) -> list[RegionState]:
        """Single-object regions in the queue, best first, deduplicated by
        object and excluding objects already reported."""
        singles: list[RegionState] = []
        seen = set(self._excluded_uids)
        for region, _ in self.queue.items():
            if region.single_object and region.obj.uid not in seen:
                seen.add(region.obj.uid)
                singles.append(region)
        return singles

    def _begin_estimation(self, counter_io: int) -> HandlerResult:
        ctx = self.ctx
        singles = self._current_singles()
        self.found = singles[: self.max_results]
        if not self.found:
            self.phase = SearchPhase.DONE
            return HandlerResult(done=True)
        # Retire the batch from the queue so a continuation round searches
        # only what remains.
        for region in self.found:
            if region in self.queue:
                self.queue.remove(region)

        bank = ctx.monitor.regions
        bank.program([r.interval for r in self.found])
        ctx.monitor.global_counter.clear()
        self._estimate_counts = [0] * len(self.found)
        self._estimate_total = 0
        self._estimate_rounds_left = self.estimate_rounds
        self.phase = SearchPhase.ESTIMATING
        handler_cycles = ctx.cost_model.search_handler_cycles(
            queue_ops=self.queue.reset_op_count(),
            splits=0,
            boundary_scans=0,
            counter_io=counter_io + len(self.found),
        )
        return HandlerResult(
            handler_cycles=handler_cycles,
            mem_refs=self._handler_refs(8, len(self.found)),
            next_timer_in=self.interval_cycles,
        )

    def _estimate_iteration(self) -> HandlerResult:
        ctx = self.ctx
        bank = ctx.monitor.regions
        counts = bank.read_all()
        total = ctx.monitor.global_counter.read_and_clear()
        for i, count in enumerate(counts):
            self._estimate_counts[i] += count
        self._estimate_total += total
        self.trace.append(
            IterationRecord(
                iteration=self.iterations,
                phase="estimating",
                total_misses=total,
                regions=[
                    MeasuredRegion(
                        interval=region.interval,
                        share=(count / total) if total > 0 else 0.0,
                        single_object=True,
                        label=region.obj.name,
                    )
                    for region, count in zip(self.found, counts)
                ],
            )
        )
        bank.clear_all()
        self._estimate_rounds_left -= 1
        handler_cycles = ctx.cost_model.search_handler_cycles(
            queue_ops=0, splits=0, boundary_scans=0, counter_io=len(counts) + 1
        )
        if self._estimate_rounds_left > 0:
            return HandlerResult(
                handler_cycles=handler_cycles,
                mem_refs=self._handler_refs(4, len(counts)),
                next_timer_in=self.interval_cycles,
            )
        return self._finish_batch(handler_cycles)

    def _finish_batch(self, handler_cycles: int) -> HandlerResult:
        """Record the finished estimation batch; continue or stop."""
        for region, count in zip(self.found, self._estimate_counts):
            self.results.append(
                (
                    region.obj,
                    count,
                    self._estimate_total,
                    region.mean_share,
                    region.n_measurements,
                )
            )
            self._excluded_uids.add(region.obj.uid)
        self.batches_completed += 1
        self.found = []
        self._estimate_counts = []
        self._estimate_total = 0

        if self._continuations_left > 0 and len(self.queue):
            # Section 6: return to the previously set-aside areas.
            self._continuations_left -= 1
            next_set, _, _ = self._select_from_queue()
            if next_set:
                self.current_set = next_set
                self.ctx.monitor.regions.program([r.interval for r in next_set])
                self.ctx.monitor.global_counter.clear()
                self.phase = SearchPhase.SEARCHING
                return HandlerResult(
                    handler_cycles=handler_cycles,
                    mem_refs=self._handler_refs(8, len(next_set)),
                    next_timer_in=self.interval_cycles,
                )
        self.phase = SearchPhase.DONE
        return HandlerResult(handler_cycles=handler_cycles, done=True)

    def on_run_end(self, cycle: int) -> None:
        # The stream ended mid-search or mid-estimation; bank whatever has
        # been measured so partial results are still reported.
        if self.phase is SearchPhase.ESTIMATING and self._estimate_total > 0:
            for region, count in zip(self.found, self._estimate_counts):
                self.results.append(
                    (
                        region.obj,
                        count,
                        self._estimate_total,
                        region.mean_share,
                        region.n_measurements,
                    )
                )
                self._excluded_uids.add(region.obj.uid)
            self.found = []
        elif self.phase is SearchPhase.SEARCHING:
            self.found = self._current_singles()[: self.max_results]

    # ----------------------------------------------------------- accounting

    def _handler_refs(self, queue_ops: int, table_entries: int) -> np.ndarray:
        """Memory the handler touches: queue slots plus region-table rows."""
        queue_offsets = [(i * 24) for i in range(max(1, min(queue_ops, 128)))]
        table_offsets = [(i * 48) for i in range(max(1, min(table_entries, 64)))]
        return np.concatenate(
            [
                self._queue_struct.touch(queue_offsets),
                self._table_struct.touch(table_offsets),
            ]
        )

    # --------------------------------------------------------------- results

    def profile(self) -> DataProfile:
        shares: list[ObjectShare] = []
        estimated = bool(self.results)
        for obj, count, total, mean_share, _n_meas in self.results:
            shares.append(
                ObjectShare(
                    name=obj.name,
                    count=count,
                    share=(count / total) if total > 0 else mean_share,
                    obj=obj,
                )
            )
        # Regions found but never estimated (run ended mid-search): report
        # their search-time mean shares.
        reported = {s.obj.uid for s in shares if s.obj is not None}
        for region in self.found:
            if region.obj is not None and region.obj.uid not in reported:
                shares.append(
                    ObjectShare(
                        name=region.obj.name,
                        count=region.n_measurements,
                        share=region.mean_share,
                        obj=region.obj,
                    )
                )
        label = "search" if self.backtracking else "greedy-search"
        return DataProfile(
            source=f"{label}({self.n}-way)",
            shares=shares,
            total_misses=sum(count for _, count, _, _, _ in self.results),
            meta={
                "n": self.n,
                "iterations": self.iterations,
                "restarts": self.restarts,
                "phase": self.phase.value,
                "estimated": estimated,
                "batches": self.batches_completed,
                "final_interval_cycles": self.interval_cycles,
                "search_shares": {
                    obj.name: mean for obj, _, _, mean, _ in self.results
                },
            },
        )
