"""Aggregating related objects — the paper's future-work extension.

Section 5 proposes "aggregating data for all instances of the same local
variable, and for related blocks of dynamically allocated memory (for
instance, the nodes of a tree)". Stack locals already aggregate by
construction (every instance shares the ``function:variable`` name, see
:mod:`repro.memory.stack`); this module supplies the heap-side
aggregation: folding a profile's per-block shares by allocation site, or
by any caller-supplied key.
"""

from __future__ import annotations

from typing import Callable

from repro.core.profile import DataProfile, ObjectShare
from repro.memory.objects import MemoryObject, ObjectKind


def aggregate_by(
    profile: DataProfile, key: Callable[[ObjectShare], str]
) -> DataProfile:
    """Fold a profile's entries whose ``key`` matches into one entry.

    Shares and counts add; the representative object of each group is the
    member with the largest share (reports keep a concrete exemplar to
    point the programmer at).
    """
    grouped: dict[str, list[ObjectShare]] = {}
    for share in profile.shares:
        grouped.setdefault(key(share), []).append(share)
    shares = []
    for name, members in grouped.items():
        best = max(members, key=lambda s: s.share)
        shares.append(
            ObjectShare(
                name=name,
                count=sum(m.count for m in members),
                share=sum(m.share for m in members),
                obj=best.obj,
            )
        )
    return DataProfile(
        source=f"{profile.source}+aggregated",
        shares=shares,
        total_misses=profile.total_misses,
        meta={**profile.meta, "aggregated": True},
    )


def _site_key(share: ObjectShare) -> str:
    obj: MemoryObject | None = share.obj
    if obj is not None and obj.kind is ObjectKind.HEAP and obj.alloc_site:
        return f"heap@{obj.alloc_site}"
    return share.name


def aggregate_heap_by_site(profile: DataProfile) -> DataProfile:
    """Group heap blocks by allocation site (non-heap entries pass through).

    This answers the paper's "nodes of a tree" scenario: a linked structure
    of thousands of small blocks shows up as one line item per allocating
    call site instead of thousands of hex addresses.
    """
    return aggregate_by(profile, _site_key)
