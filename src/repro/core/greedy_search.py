"""Greedy search without the priority queue — Figure 2's failure mode.

An early version of the paper's search "without the priority queue for
previously examined regions, failed to find the top object because the
coarser granularity made the [search] more likely to discard important
regions": once a region is passed over, it is gone, so a region whose
*aggregate* misses are high can permanently shadow a sibling containing
the single hottest object (Figure 2's array E).

:class:`GreedySearch` is exactly :class:`NWaySearch` with backtracking
disabled: each iteration ranks only the regions measured in that interval
and discards the rest. The ``fig2`` benchmark pits the two against each
other on the paper's illustrated layout.
"""

from __future__ import annotations

from repro.core.search import NWaySearch


class GreedySearch(NWaySearch):
    """N-way search that never backtracks (no priority queue memory)."""

    name = "greedy-search"

    def __init__(self, n: int = 2, **kwargs) -> None:
        kwargs["backtracking"] = False
        super().__init__(n=n, **kwargs)
