"""Data-centric profiles: ranked per-object miss shares.

A :class:`DataProfile` is the common output format of ground truth
("Actual" in the paper's tables), the sampling profiler, and the n-way
search, so experiment code can compare the three uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memory.objects import MemoryObject
from repro.util.format import Table, render_table
from repro.util.units import fmt_pct


@dataclass(frozen=True)
class ObjectShare:
    """One object's share of the profiled cache misses."""

    name: str
    count: int            #: raw measurement (misses, samples, or counter sum)
    share: float          #: estimated fraction of all cache misses
    obj: MemoryObject | None = None

    @property
    def pct(self) -> float:
        return 100.0 * self.share


@dataclass
class DataProfile:
    """A ranked list of object shares from one measurement source."""

    source: str
    shares: list[ObjectShare] = field(default_factory=list)
    total_misses: int = 0
    #: Free-form measurement metadata (period, iterations, ...).
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Keep shares ranked: descending share, then name for determinism.
        self.shares = sorted(self.shares, key=lambda s: (-s.share, s.name))

    def __len__(self) -> int:
        return len(self.shares)

    def top(self, k: int, min_share: float = 0.0001) -> list[ObjectShare]:
        """The top-k objects, excluding those below ``min_share``.

        The paper's tables exclude "objects causing less than 0.01% of the
        total misses", hence the default threshold.
        """
        return [s for s in self.shares if s.share >= min_share][:k]

    def rank_of(self, name: str) -> int | None:
        """1-based rank of an object, or None if it was not measured."""
        for i, share in enumerate(self.shares):
            if share.name == name:
                return i + 1
        return None

    def share_of(self, name: str) -> float:
        for share in self.shares:
            if share.name == name:
                return share.share
        return 0.0

    def names(self) -> list[str]:
        return [s.name for s in self.shares]

    def table(self, k: int = 10) -> str:
        """Render the top-k as a small report table."""
        t = Table(["rank", "object", "%", "count"], title=f"profile: {self.source}")
        for i, s in enumerate(self.top(k), start=1):
            t.add_row([i, s.name, fmt_pct(s.share), s.count])
        return render_table(t)

    def as_dict(self) -> dict[str, float]:
        """name -> share mapping (for comparisons and serialisation)."""
        return {s.name: s.share for s in self.shares}
