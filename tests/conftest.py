"""Shared fixtures for the repro test suite.

``REPRO_BACKEND=array`` (or ``reference``) reruns the suite with the
shared fixtures on that cache kernel backend — the CI matrix uses this to
prove the whole pipeline, golden outputs included, is backend-agnostic.
Tests that pin a backend explicitly (the differential harness, the unit
tests of one kernel) are unaffected.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.cache import CacheConfig, SetAssociativeCache
from repro.memory import AddressSpace, HeapAllocator, ObjectMap, SymbolTable
from repro.sim.engine import Simulator

#: Backend override for shared fixtures; None = the configs' default.
ENV_BACKEND = os.environ.get("REPRO_BACKEND") or None


@pytest.fixture
def aspace() -> AddressSpace:
    return AddressSpace()


@pytest.fixture
def small_cfg() -> CacheConfig:
    """A small cache so tests can exercise capacity effects cheaply."""
    return CacheConfig(size=16 * 1024, line_size=64, assoc=4)


@pytest.fixture
def small_cache(small_cfg) -> SetAssociativeCache:
    return SetAssociativeCache(small_cfg, backend=ENV_BACKEND)


@pytest.fixture
def sim() -> Simulator:
    return Simulator(
        CacheConfig(size=64 * 1024, assoc=4), seed=7, backend=ENV_BACKEND
    )


@pytest.fixture
def populated_map(aspace):
    """An object map with three globals and two heap blocks."""
    symbols = SymbolTable(aspace.data)
    a = symbols.declare("A", 4096)
    b = symbols.declare("B", 8192)
    c = symbols.declare("C", 4096, pad_after=65536)
    omap = ObjectMap()
    omap.add_globals([a, b, c])
    omap.freeze_globals()
    heap = HeapAllocator(aspace.heap)
    heap.add_observer(omap.observe_alloc)
    h1 = heap.malloc(16384)
    h2 = heap.malloc(4096)
    return omap, {"A": a, "B": b, "C": c, "h1": h1, "h2": h2}, heap


def lines(obj, n, line=64, start=0):
    """Line-stride addresses over an object (test helper)."""
    base = obj.base + start * line
    return np.arange(base, base + n * line, line, dtype=np.uint64)


@pytest.fixture(scope="session")
def quick_runner():
    """A shared quick-mode experiment runner (baselines cached)."""
    from repro.experiments.runner import ExperimentRunner, RunnerConfig

    return ExperimentRunner(
        RunnerConfig(seed=99, backend=ENV_BACKEND), quick=True
    )
